#!/usr/bin/env python3
"""TeraSort on a 16-node cluster: out-of-core, totally ordered output.

Demonstrates the paper's most data-intensive benchmark: a sampled range
partitioner gives total order across partitions, intermediate data spills
through the partition cache, and the job needs no reduce function.

    python examples/terasort_cluster.py
"""

from repro.apps import TeraSortApp
from repro.apps.datagen import teragen
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.storage.records import NO_COMPRESSION


def main() -> None:
    n_records = 100_000          # 10 MB of 100-byte records
    data = teragen(n_records, seed=13)
    app = TeraSortApp.from_input(data, sample_every=499)

    config = JobConfig(
        chunk_size=192 * 1024,
        output_replication=1,            # as the paper configures TS
        compression=NO_COMPRESSION,      # random data is incompressible
        cache_threshold=1 * 1024 * 1024,  # force out-of-core merging
    )
    result = run_glasswing(app, {"teragen": data},
                           das4_cluster(nodes=16), config)

    out = list(result.output_pairs())
    keys = [k for k, _ in out]
    assert len(out) == n_records, "records lost or duplicated!"
    assert keys == sorted(keys), "output is not totally ordered!"
    print(f"sorted {n_records} records on 16 nodes in "
          f"{result.job_time:.3f} simulated seconds")
    print(f"  map+shuffle {result.map_time:.3f}s, merge delay "
          f"{result.merge_delay:.3f}s, output write {result.reduce_time:.3f}s")
    print(f"  {result.stats['network_bytes'] / 1e6:.1f} MB crossed the "
          "network during the shuffle")
    print("total order verified across all partitions.")

    # Compare with a single fat node: horizontal scaling in action.
    single = run_glasswing(app, {"teragen": data}, das4_cluster(nodes=1),
                           config)
    print(f"\n1 node: {single.job_time:.3f}s -> 16 nodes: "
          f"{result.job_time:.3f}s "
          f"(speedup {single.job_time / result.job_time:.1f}x)")


if __name__ == "__main__":
    main()
