#!/usr/bin/env python3
"""Observability end to end: traces, reports, critical paths.

Runs a 4-node wordcount, then turns the run's span timeline into the
three artefacts the obs package offers:

1. a Chrome trace-event file — load it in chrome://tracing or
   https://ui.perfetto.dev to see one lane per node, one thread row per
   pipeline stage;
2. a :class:`PipelineReport` — dominant stage, overlap factor, and the
   critical-path attribution of the map phase's elapsed time;
3. the structured job report (``result.to_report()``), comparing double
   vs single buffering: the overlap factor collapsing towards 1.0 is
   the §III-D payoff made measurable.

    python examples/trace_explain.py
"""

import json
import tempfile
from pathlib import Path

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.obs import PipelineReport, write_chrome_trace

APP = WordCountApp()
INPUTS = {"corpus": wiki_text(2 * 1024 * 1024, seed=11)}


def run(buffering: int):
    config = JobConfig(chunk_size=128 * 1024, buffering=buffering)
    return run_glasswing(APP, INPUTS, das4_cluster(nodes=4), config)


def main() -> None:
    double = run(buffering=2)
    single = run(buffering=1)

    # -- 1. Chrome trace -------------------------------------------------
    out = Path(tempfile.gettempdir()) / "wordcount.trace.json"
    write_chrome_trace(double.timeline, str(out))
    n_events = len(json.loads(out.read_text())["traceEvents"])
    print(f"trace: {out} ({n_events} events) — open in ui.perfetto.dev")

    # -- 2. pipeline analysis --------------------------------------------
    print()
    print(PipelineReport(double.timeline, phase="map").explain())

    # -- 3. job report: buffering ablation -------------------------------
    print()
    for label, result in (("double", double), ("single", single)):
        phase = result.to_report()["phases"]["map"]
        print(f"{label} buffering: map elapsed {phase['elapsed']:.4f} s, "
              f"overlap factor {phase['overlap_factor']:.2f}x, "
              f"dominant stage {phase['dominant_stage']}")
    d = double.to_report()["phases"]["map"]["overlap_factor"]
    s = single.to_report()["phases"]["map"]["overlap_factor"]
    assert d > s, "double buffering should overlap more than single"
    print("double buffering overlaps the stages; single serialises them.")


if __name__ == "__main__":
    main()
