#!/usr/bin/env python3
"""Iterative K-Means: Lloyd rounds on the DAG engine until convergence.

The paper runs a single Lloyd iteration; this example runs the real
iterative algorithm — each iteration is one stage execution on a shared
DAG session (the point file is served from the cross-round cache after
round one; see docs/dag.md), its reduced centers broadcast into the
next round — and prints per-iteration shifts and times.

    python examples/iterative_kmeans.py
"""

import numpy as np

from repro.apps.drivers import kmeans_iterate
from repro.core import JobConfig
from repro.hw.presets import das4_cluster


def main() -> None:
    rng = np.random.default_rng(3)
    # Three gaussian blobs the algorithm must discover.
    blobs = [rng.normal(center, 2.0, size=(4_000, 2)).astype(np.float32)
             for center in ((10.0, 10.0), (60.0, 20.0), (30.0, 70.0))]
    points = np.vstack(blobs)
    rng.shuffle(points)
    initial = rng.uniform(0, 80, size=(3, 2)).astype(np.float32)

    run = kmeans_iterate(
        {"points": points.tobytes()}, initial,
        das4_cluster(nodes=4),
        JobConfig(chunk_size=64 * 1024, storage="local"),
        max_iterations=15, tolerance=1e-2)

    print(f"converged after {run.iterations} iterations "
          f"({run.total_time:.3f} simulated seconds total)")
    for i, (shift, res) in enumerate(zip(run.shifts, run.results)):
        print(f"  iter {i}: max center shift {shift:8.4f}  "
              f"job {res.job_time:.4f}s")
    print("final centers:")
    for center in sorted(run.centers.tolist()):
        print(f"  ({center[0]:6.2f}, {center[1]:6.2f})")


if __name__ == "__main__":
    main()
