#!/usr/bin/env python3
"""Tuning the Glasswing pipeline: the Configuration API at work.

Sweeps the knobs the paper's evaluation studies — buffering level, output
collector, combiner, partitioner threads and partitions per node — on a
WordCount job and prints what each does to the pipeline, so you can see
how a job is tuned "to find the best fit" (§III-D).

    python examples/tuning_pipeline.py
"""

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster


def run(name: str, config: JobConfig, inputs) -> None:
    res = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=1),
                        config)
    bd = res.metrics.breakdown("map", "node0")
    print(f"{name:<34} job {res.job_time:7.3f}s | kernel {bd['kernel']:.3f} "
          f"partition {bd['output']:.3f} merge-delay {res.merge_delay:.3f}")


def main() -> None:
    inputs = {"corpus": wiki_text(8 * 1024 * 1024, seed=23)}
    base = JobConfig(chunk_size=128 * 1024, storage="local",
                     cache_threshold=2 * 1024 * 1024)

    print("--- buffering level (§III-D) ---")
    for level in (1, 2, 3):
        run(f"buffering={level}", base.with_(buffering=level), inputs)

    print("\n--- output collector (§III-F, Table II) ---")
    run("hash table + combiner", base, inputs)
    run("hash table, no combiner", base.with_(use_combiner=False), inputs)
    run("shared buffer pool", base.with_(collector="buffer",
                                         use_combiner=False), inputs)

    print("\n--- partitioner threads N (Fig 4a) ---")
    for n in (1, 4, 16):
        run(f"partitioner_threads={n}",
            base.with_(partitioner_threads=n, use_combiner=False), inputs)

    print("\n--- partitions per node P (Fig 4b) ---")
    for p in (1, 4, 16):
        run(f"partitions_per_node={p}",
            base.with_(partitions_per_node=p, use_combiner=False), inputs)

    print("\n--- reduce kernel geometry (Fig 5) ---")
    for ck, kpt in ((1, 1), (256, 1), (4096, 4)):
        run(f"concurrent_keys={ck}, keys/thread={kpt}",
            base.with_(concurrent_keys=ck, keys_per_thread=kpt), inputs)


if __name__ == "__main__":
    main()
