#!/usr/bin/env python3
"""Fault tolerance end to end (§III-E).

Walks the full fault model on a 4-node wordcount: map-task crashes with
re-execution, a whole-node crash with the shuffle-recovery wave, and a
straggler raced by a speculative duplicate.  Every run's output is
verified identical to the fault-free reference — the headline guarantee.

    python examples/fault_tolerance.py
"""

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.reference import canonical_output, run_reference
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultInjector, FaultPlan, NodeCrash
from repro.hw.presets import das4_cluster

APP = WordCountApp()
INPUTS = {"corpus": wiki_text(2 * 1024 * 1024, seed=29)}
CONFIG = JobConfig(chunk_size=128 * 1024, input_replication=4)


def run(faults=None, config=CONFIG):
    return run_glasswing(APP, INPUTS, das4_cluster(nodes=4), config,
                         faults=faults)


def verify(result, reference) -> None:
    assert canonical_output(list(result.output_pairs())) == reference
    print("    output identical to the fault-free reference.")


def main() -> None:
    reference = run_reference(APP, INPUTS)
    clean = run()
    print(f"clean run: {clean.job_time:.4f} simulated seconds")

    # -- 1. map-task crashes + re-execution -----------------------------
    faults = FaultInjector(fail_counts={0: 1, 3: 1, 7: 3},
                           progress_at_failure=0.6)
    failed = run(faults=faults)
    print(f"\n[1] {faults.total_failures} map-task crashes: "
          f"{failed.job_time:.4f} s "
          f"(+{failed.job_time - clean.job_time:.4f} s, "
          f"{faults.wasted_seconds:.4f} s of kernel work discarded)")
    for f in faults.failures:
        print(f"    crash: split {f.split_index} attempt {f.attempt} "
              f"on {f.node} at t={f.at:.4f}")
    verify(failed, reference)

    # -- 2. node crash + shuffle recovery --------------------------------
    plan = FaultPlan(node_crashes=(NodeCrash(node=2,
                                             at=clean.map_time / 2),))
    crashed = run(faults=plan)
    m = crashed.metrics
    print(f"\n[2] node 2 dies mid-map: {crashed.job_time:.4f} s "
          f"({crashed.job_time / clean.job_time:.2f}x clean)")
    print(f"    survivors re-pushed {crashed.stats['repushed_runs']} durable "
          f"runs and re-executed {crashed.stats['reexecuted_splits']} splits "
          f"in a {m.recovery_time:.4f} s recovery wave")
    verify(crashed, reference)

    # -- 3. straggler + speculative duplicate ----------------------------
    straggler = lambda: FaultPlan(stragglers={5: 8.0})
    slow = run(faults=straggler())
    spec = run(faults=straggler(),
               config=CONFIG.with_(speculative_execution=True))
    m = spec.metrics
    print(f"\n[3] split 5 straggles 8x: {slow.job_time:.4f} s; with "
          f"speculation {spec.job_time:.4f} s "
          f"({m.speculative_wins}/{m.speculative_launches} races won, "
          f"{m.wasted_seconds:.4f} s wasted on losing copies)")
    verify(spec, reference)


if __name__ == "__main__":
    main()
