#!/usr/bin/env python3
"""Task failures and re-execution (§III-E).

Injects crashes into map tasks and shows the pipeline recovering: partial
kernel work is discarded, the split is re-read from replicated storage
and re-executed, and the final output is still exactly correct.

    python examples/fault_tolerance.py
"""

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.reference import canonical_output, run_reference
from repro.core import JobConfig, run_glasswing
from repro.core.faults import FaultInjector
from repro.hw.presets import das4_cluster


def main() -> None:
    inputs = {"corpus": wiki_text(2 * 1024 * 1024, seed=29)}
    cluster = das4_cluster(nodes=4)
    config = JobConfig(chunk_size=128 * 1024)

    clean = run_glasswing(WordCountApp(), inputs, cluster, config)
    print(f"clean run: {clean.job_time:.4f} simulated seconds")

    # Splits 0 and 3 crash once, split 7 crashes three times in a row.
    faults = FaultInjector(fail_counts={0: 1, 3: 1, 7: 3},
                           progress_at_failure=0.6)
    failed = run_glasswing(WordCountApp(), inputs, cluster, config,
                           faults=faults)
    print(f"with {faults.total_failures} injected task failures: "
          f"{failed.job_time:.4f} s "
          f"(+{failed.job_time - clean.job_time:.4f} s, "
          f"{faults.wasted_seconds:.4f} s of kernel work discarded)")
    for f in faults.failures:
        print(f"  crash: split {f.split_index} attempt {f.attempt} "
              f"on {f.node} at t={f.at:.4f}")

    reference = run_reference(WordCountApp(), inputs)
    assert canonical_output(list(failed.output_pairs())) == reference
    print("output verified identical to the fault-free reference.")


if __name__ == "__main__":
    main()
