#!/usr/bin/env python3
"""Writing your own application: an inverted index.

Demonstrates the emit-style kernel API (§III-F): subclass
``RecordMapReduceApp``, implement ``map_record``/``combine``/``reduce``
plus the two cost-model methods, and the full Glasswing machinery —
pipeline, collectors, shuffle, out-of-core merging — is yours.

The job builds word -> sorted document-id postings over a corpus where
each line is ``doc_id<TAB>text``.

    python examples/inverted_index.py
"""

from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.api import RecordMapReduceApp
from repro.hw.presets import das4_cluster
from repro.ocl.kernel import KernelCost
from repro.storage.records import KVSchema


class InvertedIndexApp(RecordMapReduceApp):
    """word -> tuple of doc ids containing it."""

    name = "inverted-index"
    inter_schema = KVSchema("ii", key_bytes=lambda k: len(k),
                            value_bytes=lambda v: 8)
    output_schema = KVSchema("ii-out", key_bytes=lambda k: len(k),
                             value_bytes=lambda v: 8 * len(v))
    has_combiner = True

    def map_record(self, record, emit):
        doc_id, _tab, text = record.partition(b"\t")
        doc = int(doc_id)
        for word in set(text.split()):
            emit(word, doc)

    def combine(self, key, values):
        return [tuple(sorted(set(values)))]

    def reduce(self, key, values):
        docs = set()
        for v in values:
            docs.update(v if isinstance(v, tuple) else (v,))
        return [(key, tuple(sorted(docs)))]

    def map_cost(self, device, n_records, in_bytes):
        return KernelCost(flops=90.0 * in_bytes, device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device, n_keys, n_values):
        return KernelCost(flops=30.0 * n_values, launches=0)


def make_corpus(n_docs: int) -> bytes:
    """n_docs documents, one per line: ``id<TAB>words...``"""
    text = wiki_text(n_docs * 120, seed=31)
    lines = text.strip().split(b"\n")[:n_docs]
    return b"\n".join(b"%d\t%s" % (i, line)
                      for i, line in enumerate(lines)) + b"\n"


def main() -> None:
    corpus = make_corpus(4_000)
    result = run_glasswing(InvertedIndexApp(), {"docs": corpus},
                           das4_cluster(nodes=4),
                           JobConfig(chunk_size=64 * 1024))
    index = dict(result.output_pairs())
    print(f"indexed {len(index)} distinct words from 4000 documents in "
          f"{result.job_time:.3f} simulated seconds")
    sample = sorted(index.items(), key=lambda kv: -len(kv[1]))[:5]
    for word, postings in sample:
        print(f"  {word.decode():<12} appears in {len(postings)} docs "
              f"(first: {postings[:6]})")
    # Spot-check correctness against a direct scan.
    word, postings = sample[0]
    direct = {int(line.split(b"\t")[0]) for line in corpus.splitlines()
              if word in set(line.split(b"\t")[1].split())}
    assert set(postings) == direct, "index does not match a direct scan!"
    print("postings verified against a direct corpus scan.")


if __name__ == "__main__":
    main()
