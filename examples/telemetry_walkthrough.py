#!/usr/bin/env python3
"""Continuous telemetry end to end: sampling, exports, saturation.

Runs a 4-node wordcount with the simulated-time sampler enabled
(``JobConfig(metrics_interval=...)``), then:

1. prints what the sampler collected — tick count, series count, and
   the per-link shuffle throughput derived from the cumulative
   counters;
2. renders a textual fill-level timeline of the busiest
   capacity-bearing gauge (no plotting dependencies);
3. ranks the saturated resources of the map phase via
   ``PipelineReport.saturation()`` — the "what was the bottleneck
   *doing*" companion to the critical-path analysis;
4. writes both export formats (OpenMetrics text and JSONL) and
   self-validates the OpenMetrics output.

    python examples/telemetry_walkthrough.py
"""

import tempfile
from pathlib import Path

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.obs import (PipelineReport, validate_openmetrics, write_metrics,
                       write_openmetrics)

INTERVAL = 0.0005   # simulated seconds between samples


def main() -> None:
    result = run_glasswing(
        WordCountApp(), {"corpus": wiki_text(2 * 1024 * 1024, seed=11)},
        das4_cluster(nodes=4),
        JobConfig(chunk_size=128 * 1024, metrics_interval=INTERVAL))
    tele = result.telemetry

    # -- 1. what the sampler saw -----------------------------------------
    print(f"sampled {len(tele.ticks)} ticks x {len(tele.registry)} series "
          f"every {INTERVAL} simulated seconds "
          f"(job time {result.job_time:.4f} s)")
    shuffle = {series: pts[-1][1]
               for (name, labels), pts in tele.series().items()
               if name == "glasswing_shuffle_bytes"
               for series in [dict(labels)["link"]]}
    busiest = max(shuffle, key=shuffle.get)
    print(f"shuffle links: {len(shuffle)}, busiest {busiest} moved "
          f"{shuffle[busiest]} bytes "
          f"(total {sum(shuffle.values())} — matches "
          f"stats[network_bytes]={result.stats['network_bytes']})")

    # -- 2. textual fill-level timeline ----------------------------------
    report = PipelineReport(result.timeline, phase="map")
    hottest = report.saturation()[0]
    series_name = hottest["series"]
    name = series_name.split("{", 1)[0]
    pts = next(p for (n, labels), p in tele.series().items()
               if n == name and f"{name}{{" in series_name
               and all(f'{k}="{v}"' in series_name for k, v in labels))
    print(f"\n{series_name} fill level over time "
          f"(capacity {hottest['capacity']:g}):")
    for t, v in pts[:: max(1, len(pts) // 12)]:
        level = v / hottest["capacity"]
        bar = "#" * round(level * 40)
        print(f"  t={t:8.4f}s |{bar:<40}| {level:6.1%}")

    # -- 3. saturated-resource ranking -----------------------------------
    print("\nmap-phase saturation ranking (mean fill over phase window):")
    for entry in report.saturation()[:5]:
        print(f"  {entry['mean_level']:6.1%} mean, "
              f"{entry['peak_level']:6.1%} peak  {entry['series']}")
    hot = report.saturated_resource()
    print(f"saturated resource: {hot['series'] if hot else '(none above 50%)'}")

    # -- 4. exports ------------------------------------------------------
    tmp = Path(tempfile.gettempdir())
    om = write_openmetrics(tele, str(tmp / "wordcount.metrics.om"))
    jl = write_metrics(tele, str(tmp / "wordcount.metrics.jsonl"))
    n = validate_openmetrics(Path(om).read_text())
    print(f"\nwrote {om} ({n} OpenMetrics samples, validated) and {jl}")


if __name__ == "__main__":
    main()
