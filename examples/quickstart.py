#!/usr/bin/env python3
"""Quickstart: WordCount on a 4-node simulated cluster.

Runs the Glasswing pipeline end-to-end on a small synthetic wikipedia
corpus, prints the most frequent words, the per-stage time breakdown and
the job statistics.

    python examples/quickstart.py
"""

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster


def main() -> None:
    # 4 MB of zipf-distributed text, split over a 4-node DAS-4 cluster.
    inputs = {"corpus.txt": wiki_text(4 * 1024 * 1024, seed=7)}
    cluster = das4_cluster(nodes=4)
    config = JobConfig(chunk_size=256 * 1024)  # defaults: CPU device,
    # hash-table collector with combiner, double buffering, HDFS-like DFS.

    result = run_glasswing(WordCountApp(), inputs, cluster, config)

    print(f"job finished in {result.job_time:.3f} simulated seconds "
          f"(map {result.map_time:.3f}, merge delay "
          f"{result.merge_delay:.3f}, reduce {result.reduce_time:.3f})")
    print(f"stats: {result.stats}")

    top = sorted(result.output_pairs(), key=lambda kv: -kv[1])[:10]
    print("\nmost frequent words:")
    for word, count in top:
        print(f"  {word.decode():<12} {count}")

    print("\nmap pipeline breakdown (node0):")
    for stage, seconds in result.metrics.breakdown("map", "node0").items():
        print(f"  {stage:<10} {seconds:.4f}s")
    print(f"  {'elapsed':<10} {result.map_time:.4f}s  "
          "(< sum of stages: the pipeline overlaps them)")

    from repro.bench.gantt import render_gantt
    print("\npipeline overlap on node0 (time flows right):")
    print(render_gantt(result.timeline, prefix="map.", node="node0"))


if __name__ == "__main__":
    main()
