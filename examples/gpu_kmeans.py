#!/usr/bin/env python3
"""K-Means with GPU acceleration: vertical scalability in action.

Runs one k-means iteration (the paper's compute-bound showcase) on the
same cluster with the kernels on the host CPUs and then on the GTX480s,
showing the device flexibility of the OpenCL-style kernel API and the
pipeline hiding the host<->device transfers.

    python examples/gpu_kmeans.py
"""

import numpy as np

from repro.apps import KMeansApp
from repro.apps.datagen import kmeans_centers, kmeans_points
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind


def main() -> None:
    k, dims, points = 1024, 4, 100_000
    inputs = {"points": kmeans_points(points, dims, seed=17)}
    centers = kmeans_centers(k, dims, seed=19)
    cluster = das4_cluster(nodes=2, gpu=True)
    base = JobConfig(chunk_size=256 * 1024, storage="local")

    results = {}
    for label, device in [("CPU (2x Xeon E5620)", DeviceKind.CPU),
                          ("GPU (NVIDIA GTX480)", DeviceKind.GPU)]:
        res = run_glasswing(KMeansApp(centers), inputs, cluster,
                            base.with_(device=device))
        results[label] = res
        bd = res.metrics.breakdown("map", "node0")
        print(f"{label}: job {res.job_time:.3f}s "
              f"(kernel stage {bd['kernel']:.3f}s, "
              f"staging {bd['stage']:.4f}s, retrieve {bd['retrieve']:.4f}s)")

    cpu, gpu = results["CPU (2x Xeon E5620)"], results["GPU (NVIDIA GTX480)"]
    print(f"\nGPU speedup: {cpu.job_time / gpu.job_time:.1f}x "
          f"({k} centers, {points} points, {dims} dims)")

    # The two devices compute identical new centers (same kernels, same
    # MapReduce semantics).
    c_cpu = dict(cpu.output_pairs())
    c_gpu = dict(gpu.output_pairs())
    assert c_cpu.keys() == c_gpu.keys()
    for cid in c_cpu:
        assert np.allclose(c_cpu[cid], c_gpu[cid], rtol=1e-6)
    print("CPU and GPU runs produced identical new centers.")


if __name__ == "__main__":
    main()
