"""Runtime node and cluster objects binding specs to a simulator."""

from __future__ import annotations

from typing import List, Optional

from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.hw.cpu import FluidCPU
from repro.hw.disk import Disk
from repro.hw.specs import ClusterSpec, DeviceKind, DeviceSpec, NodeSpec
from repro.net.transport import Network

__all__ = ["Node", "Cluster"]


class Node:
    """One live cluster node: host-thread pool, disk, attached devices.

    The :class:`~repro.hw.cpu.FluidCPU` pool is shared by *everything* that
    runs on the host — OpenCL CPU-device kernels, partitioner threads,
    merger threads, (de)serialisation — so contention effects emerge from
    the model.
    """

    def __init__(self, sim: Simulator, spec: NodeSpec, node_id: int,
                 timeline: Optional[Timeline] = None):
        self.sim = sim
        self.spec = spec
        self.node_id = node_id
        self.timeline = timeline if timeline is not None else Timeline()
        self.cpu = FluidCPU(sim, spec.hw_threads, name=f"n{node_id}.cpu")
        self.disk = Disk(sim, spec.disk, name=f"n{node_id}.disk",
                         timeline=self.timeline)
        tele = self.timeline.telemetry
        if tele is not None:
            tele.gauge("glasswing_node_cpu_busy_fraction",
                       help="fraction of host hardware threads executing",
                       probe=self.cpu.busy_fraction, capacity=1.0,
                       node=self.name)
            tele.gauge("glasswing_node_cpu_demand_threads",
                       help="thread demand across active host tasks",
                       probe=lambda: self.cpu.demand, node=self.name)
            tele.gauge("glasswing_node_disk_busy",
                       help="disk channel occupancy (0 idle, 1 transferring)",
                       probe=lambda: self.disk.probe()["busy"], capacity=1.0,
                       node=self.name)
            tele.gauge("glasswing_node_disk_waiters",
                       help="requests queued on the disk channel",
                       probe=lambda: self.disk.probe()["waiters"],
                       node=self.name)

    @property
    def name(self) -> str:
        return f"node{self.node_id}"

    def device(self, kind: DeviceKind) -> DeviceSpec:
        """Spec of the first attached device of ``kind``."""
        return self.spec.device(kind)

    def host_work(self, threads: int, thread_seconds: float, tag: str = ""):
        """Event firing when the given host-CPU work completes."""
        return self.cpu.run(threads, thread_seconds, tag=tag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} spec={self.spec.name!r}>"


class Cluster:
    """A set of :class:`Node` runtimes plus the interconnect."""

    def __init__(self, sim: Simulator, spec: ClusterSpec,
                 timeline: Optional[Timeline] = None):
        self.sim = sim
        self.spec = spec
        self.timeline = timeline if timeline is not None else Timeline()
        self.nodes: List[Node] = [
            Node(sim, node_spec, i, timeline=self.timeline)
            for i, node_spec in enumerate(spec.nodes)
        ]
        self.network = Network(sim, spec.network, len(self.nodes),
                               timeline=self.timeline)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]
