"""Hardware models: compute devices, disks, NICs, nodes and clusters.

Specs (:mod:`repro.hw.specs`) are immutable dataclasses describing
capability numbers (bandwidths, throughputs, core counts).  Runtimes
(:mod:`repro.hw.cpu`, :mod:`repro.hw.disk`, :mod:`repro.hw.node`) attach
those specs to a :class:`~repro.simt.Simulator` and expose operations that
charge virtual time.  :mod:`repro.hw.presets` reconstructs the paper's
DAS-4 cluster (Type-1 / Type-2 nodes, GTX480 / K20m / GTX680 GPUs, Xeon
Phi, GbE + QDR InfiniBand).
"""

from repro.hw.cpu import FluidCPU
from repro.hw.disk import Disk
from repro.hw.node import Cluster, Node
from repro.hw.specs import (
    ClusterSpec,
    DeviceKind,
    DeviceSpec,
    DiskSpec,
    NetworkSpec,
    NodeSpec,
)

__all__ = [
    "Cluster",
    "ClusterSpec",
    "DeviceKind",
    "DeviceSpec",
    "Disk",
    "DiskSpec",
    "FluidCPU",
    "NetworkSpec",
    "Node",
    "NodeSpec",
]
