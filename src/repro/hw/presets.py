"""DAS-4 hardware presets matching the paper's evaluation platform.

The cluster (VU Amsterdam DAS-4, §IV of the paper):

* 64 **Type-1** nodes — dual quad-core Intel Xeon E5620 @ 2.4 GHz
  (8 cores / 16 hardware threads), 24 GB RAM, two 1 TB disks in software
  RAID-0; 23 of them carry an NVIDIA GTX480.
* **Type-2** nodes — dual 6-core Xeon @ 2 GHz (12 cores / 24 threads),
  64 GB RAM, NVIDIA K20m.
* Two more nodes with an Intel Xeon Phi and one with an NVIDIA GTX680.
* Gigabit Ethernet + QDR InfiniBand (experiments use IP over InfiniBand).

Throughput figures are *effective* numbers calibrated so the paper's
ratios hold (GPU ≈ 20x CPU for the K-Means kernel, disk ≈ 0.18 GB/s,
IPoIB ≈ 1.2 GB/s, ...); see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.hw.specs import (
    ClusterSpec,
    DeviceKind,
    DeviceSpec,
    DiskSpec,
    GiB,
    NetworkSpec,
    NodeSpec,
)

__all__ = [
    "CPU_TYPE1",
    "CPU_TYPE2",
    "GTX480",
    "K20M",
    "GTX680",
    "XEON_PHI",
    "DISK_TYPE1",
    "DISK_TYPE2",
    "GBE",
    "QDR_IB",
    "type1_node",
    "type2_node",
    "das4_cluster",
]

# --------------------------------------------------------------- devices
CPU_TYPE1 = DeviceSpec(
    name="2x Intel Xeon E5620 (OpenCL CPU)",
    kind=DeviceKind.CPU,
    compute_units=16,          # 8 cores, hyperthreaded
    gflops=19.0,
    mem_bw=20e9,
    transfer_bw=0.0,
    unified_memory=True,
    device_mem=24 * GiB,
    launch_overhead=5e-6,
    atomic_penalty=0.6,
)

CPU_TYPE2 = DeviceSpec(
    name="2x Intel Xeon E5-2620 (OpenCL CPU)",
    kind=DeviceKind.CPU,
    compute_units=24,
    gflops=27.0,
    mem_bw=40e9,
    transfer_bw=0.0,
    unified_memory=True,
    device_mem=64 * GiB,
    launch_overhead=5e-6,
    atomic_penalty=0.6,
)

GTX480 = DeviceSpec(
    name="NVIDIA GTX480",
    kind=DeviceKind.GPU,
    compute_units=15 * 32,     # 15 SMs x 32 lanes
    gflops=380.0,              # effective: ~20x CPU_TYPE1 on K-Means
    mem_bw=140e9,
    transfer_bw=5.5e9,         # PCIe 2.0 x16 effective
    unified_memory=False,
    device_mem=int(1.5 * GiB),
    launch_overhead=25e-6,
    atomic_penalty=1.2,        # Fermi atomics are expensive under contention
)

K20M = DeviceSpec(
    name="NVIDIA K20m",
    kind=DeviceKind.GPU,
    compute_units=13 * 64,
    gflops=700.0,
    mem_bw=170e9,
    transfer_bw=6.0e9,
    unified_memory=False,
    device_mem=5 * GiB,
    launch_overhead=20e-6,
    atomic_penalty=0.8,
)

GTX680 = DeviceSpec(
    name="NVIDIA GTX680",
    kind=DeviceKind.GPU,
    compute_units=8 * 96,
    gflops=550.0,
    mem_bw=160e9,
    transfer_bw=10.0e9,        # PCIe 3.0
    unified_memory=False,
    device_mem=2 * GiB,
    launch_overhead=20e-6,
    atomic_penalty=0.9,
)

XEON_PHI = DeviceSpec(
    name="Intel Xeon Phi 5110P",
    kind=DeviceKind.ACCELERATOR,
    compute_units=60 * 4,
    gflops=250.0,              # MapReduce kernels reach a fraction of peak
    mem_bw=120e9,
    transfer_bw=6.0e9,
    unified_memory=False,
    device_mem=8 * GiB,
    launch_overhead=50e-6,     # MIC offload launches are costly
    atomic_penalty=1.0,
)

# ----------------------------------------------------------------- disks
# seek_time is scaled below the physical ~8 ms: the simulation runs the
# paper's workloads at ~1/1000 data scale, where an unscaled positioning
# cost would dominate every transfer and invert the paper's
# streaming-dominated I/O balance.  0.5 ms keeps random access visibly
# more expensive than streaming without letting fixed costs swamp the
# scaled experiments (see EXPERIMENTS.md, "scale mapping").
DISK_TYPE1 = DiskSpec(
    name="2x 1TB SATA RAID-0",
    read_bw=180e6,
    write_bw=160e6,
    seek_time=0.5e-3,
    capacity=2 * 1024 * GiB,
)

DISK_TYPE2 = DiskSpec(
    name="1TB SATA",
    read_bw=140e6,
    write_bw=120e6,
    seek_time=0.5e-3,
    capacity=1024 * GiB,
)

# -------------------------------------------------------------- networks
GBE = NetworkSpec(name="Gigabit Ethernet", bandwidth=118e6, latency=100e-6,
                  bisection_factor=0.8)
QDR_IB = NetworkSpec(name="QDR InfiniBand (IPoIB)", bandwidth=1.2e9,
                     latency=30e-6, bisection_factor=0.9)


# ----------------------------------------------------------------- nodes
def type1_node(gpu: bool = False, accelerator: DeviceSpec | None = None) -> NodeSpec:
    """A DAS-4 Type-1 node, optionally with its GTX480 (or another device)."""
    devices = [CPU_TYPE1]
    if gpu:
        devices.append(GTX480)
    if accelerator is not None:
        devices.append(accelerator)
    return NodeSpec(
        name="DAS4-Type1" + ("+GTX480" if gpu else "") +
             (f"+{accelerator.name}" if accelerator else ""),
        cores=8,
        hw_threads=16,
        ram=24 * GiB,
        disk=DISK_TYPE1,
        devices=tuple(devices),
    )


def type2_node(gpu: bool = True) -> NodeSpec:
    """A DAS-4 Type-2 node with its K20m."""
    devices = [CPU_TYPE2] + ([K20M] if gpu else [])
    return NodeSpec(
        name="DAS4-Type2" + ("+K20m" if gpu else ""),
        cores=12,
        hw_threads=24,
        ram=64 * GiB,
        disk=DISK_TYPE2,
        devices=tuple(devices),
    )


def das4_cluster(nodes: int, node_type: int = 1, gpu: bool = False,
                 network: NetworkSpec = QDR_IB) -> ClusterSpec:
    """Build the paper's experimental cluster.

    ``nodes`` counts *slave* nodes (the coordinator is not modeled as a
    separate machine — like Hadoop's master it does negligible data work).
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    if node_type == 1:
        spec = type1_node(gpu=gpu)
    elif node_type == 2:
        spec = type2_node(gpu=gpu)
    else:
        raise ValueError(f"unknown DAS-4 node type {node_type}")
    return ClusterSpec(
        name=f"DAS4-{nodes}x{spec.name}",
        nodes=tuple(spec for _ in range(nodes)),
        network=network,
    )
