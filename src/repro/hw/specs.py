"""Immutable hardware capability descriptions.

The numbers chosen for the presets are *effective* (achievable by tuned
MapReduce-style kernels), not peak datasheet figures: the paper's claims
are about ratios — GPU/CPU kernel speed, disk vs network vs compute — and
the presets are calibrated so those ratios match the published behaviour
(see EXPERIMENTS.md for the calibration notes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "DiskSpec",
    "NetworkSpec",
    "NodeSpec",
    "ClusterSpec",
    "GiB",
    "MiB",
    "KiB",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


class DeviceKind(enum.Enum):
    """OpenCL device classes the paper evaluates."""

    CPU = "cpu"
    GPU = "gpu"
    ACCELERATOR = "accelerator"  # Intel Xeon Phi (MIC)


@dataclass(frozen=True)
class DeviceSpec:
    """An OpenCL compute device's effective capability numbers.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"NVIDIA GTX480"``.
    kind:
        CPU / GPU / accelerator.
    compute_units:
        Parallel hardware contexts the device schedules (cores x SMs ...).
        Used for workload-division heuristics, not raw speed.
    gflops:
        Effective compute throughput (single precision GFLOP/s) for
        MapReduce-style kernels.
    mem_bw:
        Effective device-memory bandwidth in bytes/s.
    transfer_bw:
        Host<->device transfer bandwidth in bytes/s (PCIe for discrete
        devices).  Ignored when ``unified_memory``.
    unified_memory:
        True when kernels read host memory directly (CPU devices): the
        pipeline's Stage and Retrieve stages are disabled, exactly as in
        the paper.
    device_mem:
        Device memory capacity in bytes (bounds in-flight buffers).
    launch_overhead:
        Fixed cost of one kernel invocation, seconds.
    atomic_penalty:
        Multiplier on kernel time per unit of atomic-contention intensity;
        models the paper's hash-table contention effect (high key
        repetition -> threads loop on atomics).
    """

    name: str
    kind: DeviceKind
    compute_units: int
    gflops: float
    mem_bw: float
    transfer_bw: float
    unified_memory: bool
    device_mem: int
    launch_overhead: float = 20e-6
    atomic_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_units < 1:
            raise ValueError("compute_units must be >= 1")
        if min(self.gflops, self.mem_bw) <= 0:
            raise ValueError("throughputs must be positive")
        if not self.unified_memory and self.transfer_bw <= 0:
            raise ValueError("discrete devices need a positive transfer_bw")

    @property
    def flops(self) -> float:
        """Effective FLOP/s (``gflops`` scaled to base units)."""
        return self.gflops * 1e9


@dataclass(frozen=True)
class DiskSpec:
    """A node-local disk (or RAID set presented as one volume)."""

    name: str
    read_bw: float          # sequential read bytes/s
    write_bw: float         # sequential write bytes/s
    seek_time: float = 8e-3  # average positioning time, seconds
    capacity: int = 2 * 1024 * GiB

    def __post_init__(self) -> None:
        if min(self.read_bw, self.write_bw) <= 0:
            raise ValueError("disk bandwidths must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect shared by all nodes of a cluster."""

    name: str
    bandwidth: float       # per-link (NIC) bytes/s, full duplex
    latency: float         # one-way message latency, seconds
    bisection_factor: float = 1.0  # fraction of aggregate NIC bw the fabric sustains

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ValueError("invalid network spec")
        if not (0 < self.bisection_factor <= 1.0):
            raise ValueError("bisection_factor must be in (0, 1]")


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: host CPU cores + RAM + disk + attached devices."""

    name: str
    cores: int              # physical cores
    hw_threads: int         # schedulable contexts (with hyperthreading)
    ram: int                # bytes
    disk: DiskSpec
    devices: Tuple[DeviceSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.hw_threads < self.cores:
            raise ValueError("hw_threads cannot be below physical cores")
        if not any(d.kind is DeviceKind.CPU for d in self.devices):
            raise ValueError(
                "a node needs at least a CPU OpenCL device (the host itself)")

    def device(self, kind: DeviceKind) -> DeviceSpec:
        """First attached device of ``kind`` (raises KeyError if absent)."""
        for dev in self.devices:
            if dev.kind is kind:
                return dev
        raise KeyError(f"node {self.name!r} has no {kind.value} device")

    @property
    def cpu_device(self) -> DeviceSpec:
        """The node's host-CPU OpenCL device (always present)."""
        return self.device(DeviceKind.CPU)

    def has_device(self, kind: DeviceKind) -> bool:
        """True when a device of ``kind`` is attached."""
        return any(d.kind is kind for d in self.devices)

    def device_pool(self, kinds: Sequence[DeviceKind]
                    ) -> Tuple[DeviceSpec, ...]:
        """Resolve a heterogeneous pool spec (e.g. ``(CPU, GPU)``) to the
        node's devices, validating every kind is attached — the per-node
        multi-device configuration of :attr:`JobConfig.devices`."""
        return tuple(self.device(kind) for kind in kinds)


@dataclass(frozen=True)
class ClusterSpec:
    """Homogeneous (or mixed) collection of nodes plus the interconnect."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    network: NetworkSpec

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")

    def __len__(self) -> int:
        return len(self.nodes)
