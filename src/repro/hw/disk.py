"""Runtime disk model: FCFS channel with sequential-transfer timing.

Spinning disks of the paper's era serve one stream well and interleave
poorly, so concurrent requests are FCFS-serialised through a single
channel; each request pays one positioning time plus bytes/bandwidth.
Sub-requests issued back-to-back by the same streaming reader pay the
seek only once per ``seek_free_window`` of contiguous bytes.
"""

from __future__ import annotations

from typing import Generator

from repro.simt.core import Interrupt, Simulator
from repro.simt.resources import Resource
from repro.simt.trace import Timeline

from repro.hw.specs import DiskSpec

__all__ = ["Disk"]


class Disk:
    """A node-local disk volume attached to a simulator."""

    def __init__(self, sim: Simulator, spec: DiskSpec, name: str = "disk",
                 timeline: Timeline | None = None):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.timeline = timeline
        self._channel = Resource(sim, 1, name=f"{name}.channel")
        self.bytes_read = 0
        self.bytes_written = 0
        # Last stream per operation: the OS elevator plus read-ahead and
        # write buffering keep one sequential read stream and one
        # sequential write stream cheap even when they interleave.
        self._last_stream: dict[str, str] = {}

    def read(self, nbytes: int, stream: str = "") -> Generator:
        """Process-style generator: complete a read of ``nbytes``."""
        yield from self._transfer("read", nbytes, stream)

    def write(self, nbytes: int, stream: str = "") -> Generator:
        """Process-style generator: complete a write of ``nbytes``."""
        yield from self._transfer("write", nbytes, stream)

    def _transfer(self, op: str, nbytes: int, stream: str) -> Generator:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return
        request = self._channel.acquire()
        try:
            yield request
        except Interrupt:
            # A killed process (node crash, losing speculative task) must
            # not leave a queued request behind: once granted it would
            # wedge the channel for every later user.
            self._channel.cancel(request)
            raise
        start = self.sim.now
        try:
            bw = self.spec.read_bw if op == "read" else self.spec.write_bw
            seek = self.spec.seek_time
            # Streaming the same file back-to-back skips the positioning cost.
            if stream and self._last_stream.get(op) == stream:
                seek = 0.0
            if stream:
                self._last_stream[op] = stream
            else:
                self._last_stream.pop(op, None)
            yield self.sim.timeout(seek + nbytes / bw)
            if op == "read":
                self.bytes_read += nbytes
            else:
                self.bytes_written += nbytes
        finally:
            self._channel.release()
        if self.timeline is not None:
            self.timeline.record(f"disk.{op}", self.name, start, self.sim.now,
                                 bytes=nbytes)

    def probe(self) -> dict:
        """Channel-occupancy snapshot for telemetry samplers."""
        state = self._channel.probe()
        return {"busy": state["in_use"], "waiters": state["waiters"]}

    def time_for(self, op: str, nbytes: int) -> float:
        """Uncontended duration of one transfer (used by cost estimates)."""
        bw = self.spec.read_bw if op == "read" else self.spec.write_bw
        return self.spec.seek_time + nbytes / bw
