"""Fluid (processor-sharing) model of a node's CPU hardware threads.

A malleable task asks for ``threads`` parallel workers to perform a fixed
amount of *thread-seconds* of work.  While the total thread demand fits
inside the pool's capacity every task runs at full speed; when the node is
oversubscribed all tasks slow down proportionally (the OS time-slices).

This single mechanism reproduces several observations of the paper without
any special-casing:

* with double buffering, map-kernel threads compete with partitioner
  threads, so partitioning is *slower* than in single-buffering mode
  (Table II, right column);
* raising the partitioner thread count N starves the merger threads and
  grows the merge delay (Figure 4b);
* running the kernel on the GPU frees the host cores and partitioning
  time drops across all configurations (Table III b).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.simt.core import Event, Simulator

__all__ = ["FluidCPU"]

_EPS = 1e-9


class _Task:
    __slots__ = ("threads", "remaining", "event", "tag")

    def __init__(self, threads: int, remaining: float, event: Event, tag: str):
        self.threads = threads
        self.remaining = remaining  # thread-seconds of work left
        self.event = event
        self.tag = tag


class FluidCPU:
    """Processor-sharing pool of ``capacity`` hardware threads.

    :meth:`run` returns an event that fires when the submitted work
    completes.  The aggregate execution rate never exceeds ``capacity``
    thread-seconds per second, and a task's rate never exceeds its own
    thread count (a 2-thread task cannot use 8 cores).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "cpu"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._tasks: list[_Task] = []
        self._demand = 0  # incrementally maintained sum of task threads
        self._last_update = 0.0
        self._timer_gen = itertools.count()
        self._timer_token: Optional[int] = None

    # -- public API --------------------------------------------------------
    def run(self, threads: int, thread_seconds: float, tag: str = "") -> Event:
        """Submit ``thread_seconds`` of work spread over ``threads`` workers.

        Returns an event fired on completion.  Zero-length work completes
        immediately.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if thread_seconds < 0:
            raise ValueError("negative work")
        ev = Event(self.sim)
        if thread_seconds == 0:
            ev.succeed(None)
            return ev
        self._advance()
        self._tasks.append(_Task(threads, thread_seconds, ev, tag))
        self._demand += threads
        self._reschedule()
        return ev

    @property
    def demand(self) -> int:
        """Currently requested thread count across active tasks."""
        return self._demand

    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def busy_fraction(self) -> float:
        """Fraction of the pool's capacity currently executing (0..1)."""
        return min(1.0, self._demand / self.capacity)

    def probe(self) -> dict:
        """Utilization snapshot for telemetry samplers."""
        return {"capacity": self.capacity, "demand": self._demand,
                "tasks": len(self._tasks)}

    def _share(self) -> float:
        """Current fair-share factor in (0, 1]."""
        if self._demand <= self.capacity:
            return 1.0
        return self.capacity / self._demand

    def rate_of(self, task: _Task) -> float:
        """Current execution rate (thread-seconds/second) of ``task``."""
        return task.threads * self._share()

    # -- internals -----------------------------------------------------------
    def _advance(self) -> None:
        """Charge elapsed virtual time against every active task."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._tasks:
            return
        share = self._share()
        for task in self._tasks:
            task.remaining -= task.threads * share * dt
            if task.remaining < 0:
                task.remaining = 0.0

    def _reschedule(self) -> None:
        """(Re)arm the completion timer for the earliest-finishing task."""
        self._timer_token = None
        if not self._tasks:
            return
        share = self._share()
        eta = min(t.remaining / (t.threads * share) for t in self._tasks)
        token = next(self._timer_gen)
        self._timer_token = token
        timer = self.sim.timeout(max(eta, 0.0))
        timer.subscribe(lambda _ev, tok=token: self._on_timer(tok))

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # stale timer: the task set changed since it was armed
        self._advance()
        finished = [t for t in self._tasks if t.remaining <= _EPS]
        if finished:
            self._tasks = [t for t in self._tasks if t.remaining > _EPS]
            self._demand -= sum(t.threads for t in finished)
            for task in finished:
                task.event.succeed(None)
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FluidCPU {self.name!r} cap={self.capacity} "
                f"demand={self.demand} tasks={len(self._tasks)}>")
