"""Multi-job service layer: admission control + concurrent dispatch.

The single-tenant engine (:func:`repro.core.engine.run_glasswing`) runs
one job on a fresh cluster.  This package turns the same machinery into
a long-lived *job server*: a stream of submissions is buffered behind a
bounded admission queue (queue-based load-leveling — burst arrivals
level into a steady dispatch rate; overflow is rejected at the door
instead of collapsing the cluster), throttled per tenant, and dispatched
concurrently onto one shared :class:`~repro.core.engine.ClusterSession`
under a cross-job fair-share/priority policy
(:class:`~repro.core.sched.CrossJobArbiter`).

The headline guarantee carries over from the single-tenant engine: a
job's *output* depends only on its data path, so running it next to
other tenants changes contention and timing but never bytes — the
differential suite in ``tests/test_service_differential.py`` pins each
app's concurrent output (and byte counters) to its solo run.
"""

from repro.core.membership import ElasticPool
from repro.service.admission import AdmissionQueue, ServicePolicy
from repro.service.server import (JobRecord, JobServer, JobSubmission,
                                  ServiceResult)
from repro.service.trace import (JobRequest, dump_trace, load_trace,
                                 synthetic_trace)

__all__ = [
    "AdmissionQueue", "ServicePolicy", "ElasticPool",
    "JobServer", "JobSubmission", "JobRecord", "ServiceResult",
    "JobRequest", "synthetic_trace", "load_trace", "dump_trace",
]
