"""Admission control: a bounded, tenant-throttled, priority job queue.

Queue-based load-leveling: the queue absorbs arrival bursts so the
cluster sees a steady dispatch rate, and its *bound* is the admission
decision — when the buffer is full (or a tenant exceeds its queued
quota) the submission is rejected immediately rather than accepted into
an ever-growing backlog.  The queue itself is pure bookkeeping with no
simulator dependency, which is what makes it directly property-testable
(see ``tests/test_service_admission.py``): the server drives it from
simulated processes, hypothesis drives it from random traces.

Invariants the implementation maintains (and the tests assert):

* ``depth <= policy.queue_capacity`` at all times;
* per-tenant queued entries never exceed ``max_per_tenant_queued``;
* :meth:`candidates` never returns a tenant at its running quota;
* iteration order within the queue is arrival order, so any arbiter
  that tie-breaks on the arrival sequence gets FIFO-within-priority
  for free;
* every admitted entry leaves the queue exactly once — dispatched or
  cancelled, never both, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["ServicePolicy", "AdmissionQueue"]


@dataclass(frozen=True)
class ServicePolicy:
    """Admission + dispatch knobs of a :class:`~repro.service.JobServer`.

    ``queue_capacity``
        Admitted-but-not-yet-running jobs the server will buffer; a
        submission arriving at a full queue is rejected.
    ``max_running``
        Dispatch slots: jobs running concurrently on the shared cluster.
    ``max_per_tenant_running``
        Per-tenant throttle on concurrently *running* jobs (``None``
        disables; a tenant at quota stays queued, consuming no slot).
    ``max_per_tenant_queued``
        Per-tenant throttle on *queued* jobs: one chatty tenant cannot
        monopolise the admission buffer (``None`` disables).
    ``arbiter``
        Cross-job dispatch policy (``fair-share`` or ``lpt``, see
        :class:`~repro.core.sched.CrossJobArbiter`).
    """

    queue_capacity: int = 32
    max_running: int = 4
    max_per_tenant_running: Optional[int] = None
    max_per_tenant_queued: Optional[int] = None
    arbiter: str = "fair-share"

    def __post_init__(self) -> None:
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if self.max_running < 1:
            raise ValueError("max_running must be >= 1")
        for knob in ("max_per_tenant_running", "max_per_tenant_queued"):
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise ValueError(f"{knob} must be >= 1 or None")


class AdmissionQueue:
    """The server's waiting room (arrival-ordered, bounded, throttled)."""

    def __init__(self, policy: ServicePolicy):
        self.policy = policy
        self._waiting: Dict[str, object] = {}   # name -> entry, FIFO order
        self._queued_by_tenant: Dict[str, int] = {}
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.peak_depth = 0

    # -- admission ---------------------------------------------------------
    def offer(self, entry) -> bool:
        """Admit ``entry`` to the queue, or reject it (full / throttled).

        ``entry`` exposes ``name`` (unique) and ``tenant``; rejection is
        immediate and final — admission control, not backpressure.
        """
        self.offered += 1
        if entry.name in self._waiting:
            raise ValueError(f"duplicate job name {entry.name!r}")
        cap = self.policy.queue_capacity
        quota = self.policy.max_per_tenant_queued
        if len(self._waiting) >= cap:
            self.rejected += 1
            return False
        if quota is not None \
                and self._queued_by_tenant.get(entry.tenant, 0) >= quota:
            self.rejected += 1
            return False
        self._waiting[entry.name] = entry
        self._queued_by_tenant[entry.tenant] = \
            self._queued_by_tenant.get(entry.tenant, 0) + 1
        self.admitted += 1
        self.peak_depth = max(self.peak_depth, len(self._waiting))
        return True

    # -- dispatch ----------------------------------------------------------
    def candidates(self, running_by_tenant: Optional[Dict[str, int]] = None
                   ) -> List:
        """Queued entries eligible for a dispatch slot, arrival order.

        A tenant already at ``max_per_tenant_running`` is filtered out —
        its jobs wait without consuming a slot.
        """
        quota = self.policy.max_per_tenant_running
        running = running_by_tenant or {}
        return [entry for entry in self._waiting.values()
                if quota is None or running.get(entry.tenant, 0) < quota]

    def take(self, name: str):
        """Remove and return the entry picked for dispatch."""
        entry = self._waiting.pop(name)
        self._release_tenant(entry.tenant)
        return entry

    def cancel(self, name: str) -> bool:
        """Withdraw a queued entry before dispatch; False if not queued.

        A cancelled job never touched the cluster: no backend namespace,
        no registry, no buffer slots — the leak audit in the service
        tests asserts exactly that.
        """
        entry = self._waiting.pop(name, None)
        if entry is None:
            return False
        self._release_tenant(entry.tenant)
        self.cancelled += 1
        return True

    def _release_tenant(self, tenant: str) -> None:
        left = self._queued_by_tenant.get(tenant, 0) - 1
        if left > 0:
            self._queued_by_tenant[tenant] = left
        else:
            self._queued_by_tenant.pop(tenant, None)

    # -- introspection -----------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._waiting)

    def __contains__(self, name: str) -> bool:
        return name in self._waiting

    def __len__(self) -> int:
        return len(self._waiting)
