"""Arrival traces: declarative job requests + synthetic trace generation.

A trace is a list of :class:`JobRequest` rows — *descriptions* of jobs
(app kind, input volume, seed, tenant, priority, submit time) rather
than materialised inputs, so a trace serialises to a small JSON file the
CLI can replay (``repro serve --arrival-trace``) and the bench can
regenerate deterministically from one seed.

Materialisation is seeded per request: the same trace always produces
byte-identical inputs, which is what lets the trace-replay bench gate
``BENCH_service.json`` at 0% drift and the property tests demand an
identical completion order for identical seeds.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import KMeansApp, TeraSortApp, WordCountApp
from repro.apps.datagen import (kmeans_centers, kmeans_points, teragen,
                                wiki_text)
from repro.core.api import MapReduceApp
from repro.storage.records import NO_COMPRESSION

__all__ = ["JobRequest", "TRACE_KINDS", "synthetic_trace", "load_trace",
           "dump_trace"]

#: app kinds a trace row may name (the paper's text/sort/iterative mix)
TRACE_KINDS = ("wordcount", "terasort", "kmeans")

_TERA_RECORD = 100
_KMEANS_DIMS = 4


@dataclass(frozen=True)
class JobRequest:
    """One declarative trace row (see module docstring).

    ``priority`` is a class index — lower is more urgent.  ``cancel_at``
    optionally withdraws the job at that virtual time if it is still
    queued (testing the cancel-before-dispatch path).
    """

    name: str
    kind: str
    submit_at: float = 0.0
    tenant: str = "default"
    priority: int = 1
    nbytes: int = 32 * 1024
    seed: int = 0
    cancel_at: Optional[float] = None
    config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind {self.kind!r}; expected "
                             f"one of {', '.join(TRACE_KINDS)}")
        if self.nbytes < 1:
            raise ValueError("nbytes must be positive")
        if self.submit_at < 0:
            raise ValueError("submit_at must be >= 0")

    def materialize(self) -> Tuple[MapReduceApp, Dict[str, bytes],
                                   Dict[str, object]]:
        """Build ``(app, inputs, config_overrides)`` for this request."""
        overrides: Dict[str, object] = dict(self.config)
        if self.kind == "wordcount":
            app: MapReduceApp = WordCountApp()
            inputs = {f"{self.name}.corpus":
                      wiki_text(self.nbytes, seed=self.seed)}
        elif self.kind == "terasort":
            data = teragen(max(1, self.nbytes // _TERA_RECORD),
                           seed=self.seed)
            app = TeraSortApp.from_input(data, sample_every=29)
            inputs = {f"{self.name}.tera": data}
            overrides.setdefault("output_replication", 1)
            overrides.setdefault("compression", NO_COMPRESSION)
        else:  # kmeans
            app = KMeansApp(kmeans_centers(4, _KMEANS_DIMS,
                                           seed=self.seed + 1))
            inputs = {f"{self.name}.points":
                      kmeans_points(max(1, self.nbytes // (_KMEANS_DIMS * 4)),
                                    _KMEANS_DIMS, seed=self.seed)}
        return app, inputs, overrides


def synthetic_trace(n_jobs: int, seed: int = 0,
                    mean_interarrival: float = 0.002,
                    nbytes_choices: Sequence[int] = (16 * 1024, 32 * 1024,
                                                     64 * 1024),
                    tenants: Sequence[str] = ("alice", "bob", "carol"),
                    priorities: Sequence[int] = (0, 1, 1, 2),
                    kinds: Sequence[str] = TRACE_KINDS) -> List[JobRequest]:
    """A seeded mixed-workload arrival trace of ``n_jobs`` requests.

    Arrivals are Poisson (exponential interarrival at
    ``mean_interarrival`` virtual seconds); kind, size, tenant and
    priority are drawn uniformly per job from the given choices
    (``priorities`` may repeat entries to weight classes).  Everything is
    derived from ``seed``, so the same call always yields the same trace.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    rng = random.Random(seed)
    at = 0.0
    rows: List[JobRequest] = []
    for i in range(n_jobs):
        at += rng.expovariate(1.0 / mean_interarrival)
        rows.append(JobRequest(
            name=f"job{i:04d}",
            kind=rng.choice(list(kinds)),
            submit_at=at,
            tenant=rng.choice(list(tenants)),
            priority=rng.choice(list(priorities)),
            nbytes=rng.choice(list(nbytes_choices)),
            seed=seed * 100_003 + i,
        ))
    return rows


def dump_trace(rows: Sequence[JobRequest], path: str) -> None:
    """Write a trace as JSON lines-free, diff-friendly JSON."""
    payload = []
    for row in rows:
        record = asdict(row)
        if record.get("config"):
            raise ValueError(
                "config overrides are not serialisable to trace files; "
                "submit such jobs programmatically")
        record.pop("config", None)
        if record["cancel_at"] is None:
            record.pop("cancel_at")
        payload.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def load_trace(path: str) -> List[JobRequest]:
    """Read a trace written by :func:`dump_trace` (or by hand)."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON array of trace rows")
    return [JobRequest(**row) for row in payload]
