"""The long-lived job server: submissions → admission → concurrent runs.

Job lifecycle (documented in ``docs/service.md``)::

    submit ──> [rejected]                      queue full / tenant quota
       │
       └────> queued ──> [cancelled]           cancel before dispatch
                 │
                 └─────> running ──> [completed]

Arrivals are simulated processes: each submission knocks at its
``submit_at`` virtual time and the :class:`AdmissionQueue` answers
immediately (bounded queue + per-tenant throttles).  Dispatch is pull
free: whenever a slot frees (dispatch, completion, cancellation) the
server pumps the queue, asking the
:class:`~repro.core.sched.CrossJobArbiter` which admitted job runs
next, and starts it as a :class:`~repro.core.engine.JobExecution` on
the shared :class:`~repro.core.engine.ClusterSession`.  Jobs running
concurrently contend for every hardware resource — CPU fluid shares,
disks, NICs, fabric slots, device engines — while keeping private
storage namespaces, shuffle registries and health/recovery state.

Everything is deterministic: same submissions → same admission
decisions, dispatch order, completion order and per-job outputs.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.engine import ClusterSession, GlasswingResult, JobExecution
from repro.core.faults import FaultPlan
from repro.core.membership import ElasticPool
from repro.core.sched.crossjob import CrossJobArbiter
from repro.hw.specs import ClusterSpec

from repro.service.admission import AdmissionQueue, ServicePolicy
from repro.service.trace import JobRequest

__all__ = ["JobSubmission", "JobRecord", "JobServer", "ServiceResult"]

#: histogram bounds for virtual job-latency distributions (seconds)
_LATENCY_BOUNDS = (1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 10.0)


@dataclass
class JobSubmission:
    """A materialised job handed to :meth:`JobServer.submit`.

    The declarative path (:class:`~repro.service.trace.JobRequest`) is a
    thin wrapper that materialises into one of these; programmatic
    callers (tests injecting faults, custom apps) build it directly.
    ``faults`` fire relative to the job's *dispatch* time and use
    executor-crash semantics: a node crash kills this job's pipelines
    and intermediate state on that node, not the node itself.
    """

    name: str
    app: MapReduceApp
    inputs: Dict[str, bytes]
    config: Optional[JobConfig] = None
    tenant: str = "default"
    priority: int = 1
    submit_at: float = 0.0
    faults: Optional[FaultPlan] = None
    cancel_at: Optional[float] = None


@dataclass
class JobRecord:
    """One submission's full service-side history."""

    name: str
    tenant: str
    priority: int
    seq: int                        # arrival sequence (FIFO tie-break)
    app_name: str
    submit_at: float
    demand: int                     # total input bytes (LPT scoring)
    outcome: Optional[str] = None   # completed | rejected | cancelled
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    leaked_buffer_slots: int = 0
    result: Optional[GlasswingResult] = None
    execution: Optional[JobExecution] = None
    submission: Optional[JobSubmission] = field(default=None, repr=False)

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-finish virtual seconds (completed jobs only)."""
        if self.outcome != "completed":
            return None
        return self.finished_at - self.submit_at

    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submit_at

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly per-job section for the service report."""
        row: Dict[str, Any] = {
            "name": self.name, "app": self.app_name,
            "tenant": self.tenant, "priority": self.priority,
            "submit_at": self.submit_at, "outcome": self.outcome,
            "demand_bytes": self.demand,
        }
        if self.started_at is not None:
            row["started_at"] = self.started_at
            row["queue_wait"] = self.queue_wait
        if self.finished_at is not None:
            row["finished_at"] = self.finished_at
        if self.outcome == "completed":
            row["latency"] = self.latency
            row["leaked_buffer_slots"] = self.leaked_buffer_slots
            row["job_time"] = self.result.job_time - self.started_at
            row["network_bytes"] = self.result.stats["network_bytes"]
            row["scheduler"] = self.result.stats["scheduler"]
        return row


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted list."""
    rank = math.ceil(q * len(values))
    return values[min(len(values), max(1, rank)) - 1]


@dataclass
class ServiceResult:
    """Aggregate outcome of one :meth:`JobServer.run`."""

    records: List[JobRecord]
    makespan: float
    policy: ServicePolicy
    peak_running: int
    peak_queue_depth: int
    counters: Dict[str, int]
    timeline: Any
    telemetry: Any = None

    @property
    def completed(self) -> List[JobRecord]:
        return [r for r in self.records if r.outcome == "completed"]

    @property
    def leaked_buffer_slots(self) -> int:
        return sum(r.leaked_buffer_slots for r in self.completed)

    @property
    def throughput(self) -> float:
        """Completed jobs per virtual second of service makespan."""
        if self.makespan <= 0:
            return 0.0
        return len(self.completed) / self.makespan

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of completed-job latency (virtual seconds)."""
        values = sorted(r.latency for r in self.completed)
        if not values:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {f"p{int(q * 100)}": _percentile(values, q)
                for q in (0.50, 0.95, 0.99)}

    def job(self, name: str) -> JobRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def to_report(self, include_jobs: bool = True) -> Dict[str, Any]:
        """Structured service report with per-job sections."""
        percentiles = self.latency_percentiles()
        report: Dict[str, Any] = {
            "schema": "glasswing-service-report/1",
            "policy": {
                "queue_capacity": self.policy.queue_capacity,
                "max_running": self.policy.max_running,
                "max_per_tenant_running": self.policy.max_per_tenant_running,
                "max_per_tenant_queued": self.policy.max_per_tenant_queued,
                "arbiter": self.policy.arbiter,
            },
            "makespan": self.makespan,
            "throughput_jobs_per_s": self.throughput,
            "latency": percentiles,
            "counters": dict(self.counters),
            "peak_running": self.peak_running,
            "peak_queue_depth": self.peak_queue_depth,
            "leaked_buffer_slots": self.leaked_buffer_slots,
        }
        if include_jobs:
            report["jobs"] = [r.summary() for r in self.records]
        return report


class JobServer:
    """Accepts a stream of submissions and runs them on one cluster.

    Usage::

        server = JobServer(das4_cluster(nodes=4), policy=ServicePolicy())
        for request in synthetic_trace(200, seed=7):
            server.submit(request)
        result = server.run()

    ``config`` is the base :class:`JobConfig` every job inherits
    (per-request overrides layer on top via ``JobConfig.with_``).
    """

    def __init__(self, cluster_spec: ClusterSpec,
                 policy: Optional[ServicePolicy] = None,
                 config: Optional[JobConfig] = None,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 metrics_interval: Optional[float] = None,
                 active_nodes: Optional[int] = None):
        self.policy = policy or ServicePolicy()
        self.base_config = config or JobConfig()
        self.costs = costs
        self.session = ClusterSession(cluster_spec,
                                      metrics_interval=metrics_interval)
        # Shared elastic pool: every tenant sees the same active/standby
        # ledger; scale events propagate to all running executions.
        self.pool = ElasticPool(len(self.session.cluster),
                                active=active_nodes)
        self.queue = AdmissionQueue(self.policy)
        self.arbiter = CrossJobArbiter(self.policy.arbiter)
        self.records: Dict[str, JobRecord] = {}
        self._seq = itertools.count()
        self._running: Dict[str, JobRecord] = {}
        self._running_by_tenant: Dict[str, int] = {}
        self._terminal = 0
        self._started = False
        self.peak_running = 0
        self._instruments = None
        self._latency_hist = None
        if self.session.telemetry is not None:
            tele = self.session.telemetry
            tele.gauge("glasswing_svc_queue_depth",
                       help="jobs admitted and waiting for a dispatch slot",
                       probe=lambda: self.queue.depth,
                       capacity=float(self.policy.queue_capacity))
            tele.gauge("glasswing_svc_running_jobs",
                       help="jobs currently executing on the shared cluster",
                       probe=lambda: len(self._running),
                       capacity=float(self.policy.max_running))
            self._instruments = {
                key: tele.counter(
                    f"glasswing_svc_{key}_total",
                    help=f"service lifecycle counter: jobs {key}")
                for key in ("submitted", "admitted", "rejected",
                            "cancelled", "dispatched", "completed")
            }
            self._latency_hist = tele.histogram(
                "glasswing_svc_job_latency_seconds",
                help="submit-to-finish virtual latency of completed jobs",
                bounds=_LATENCY_BOUNDS)

    # -- submission --------------------------------------------------------
    def submit(self, job: Union[JobSubmission, JobRequest]) -> JobRecord:
        """Register a job; its arrival fires at ``submit_at`` virtual
        time once :meth:`run` starts the clock."""
        if self._started:
            raise RuntimeError("the server is already running; submissions "
                               "must be registered before run()")
        if isinstance(job, JobRequest):
            app, inputs, overrides = job.materialize()
            job = JobSubmission(
                name=job.name, app=app, inputs=inputs,
                config=(self.base_config.with_(**overrides) if overrides
                        else None),
                tenant=job.tenant, priority=job.priority,
                submit_at=job.submit_at, cancel_at=job.cancel_at)
        if job.name in self.records:
            raise ValueError(f"duplicate job name {job.name!r}")
        record = JobRecord(
            name=job.name, tenant=job.tenant, priority=job.priority,
            seq=next(self._seq), app_name=job.app.name,
            submit_at=job.submit_at,
            demand=sum(len(v) for v in job.inputs.values()),
            submission=job)
        self.records[job.name] = record
        sim = self.session.sim
        sim.process(self._arrival(record), name=f"svc.arrive.{record.name}")
        if job.cancel_at is not None:
            sim.process(self._cancel_watch(record, job.cancel_at),
                        name=f"svc.cancel.{record.name}")
        return record

    # -- elastic pool ------------------------------------------------------
    def scale_out(self, at: float, node: Optional[int] = None) -> None:
        """Schedule a pool scale-out at ``at`` virtual seconds (``None``
        activates the lowest-id standby).  Every job running at that
        moment sees the node join; later dispatches snapshot the grown
        pool."""
        self._schedule_scale("out", at, node)

    def scale_in(self, at: float, node: Optional[int] = None) -> None:
        """Schedule a pool scale-in at ``at`` (``None`` drains the
        highest-id active node; the last node never drains).  Running
        jobs drain the node through their recovery path — only
        re-homeable work moves, finished bytes stay attributed."""
        self._schedule_scale("in", at, node)

    def _schedule_scale(self, direction: str, at: float,
                        node: Optional[int]) -> None:
        if self._started:
            raise RuntimeError("the server is already running; scale "
                               "events must be registered before run()")
        if at < 0:
            raise ValueError("scale time must be non-negative")
        self.session.sim.process(
            self._scale(direction, at, node),
            name=f"svc.scale-{direction}@{at}")

    def _scale(self, direction: str, at: float, node: Optional[int]):
        sim = self.session.sim
        if at > 0:
            yield sim.timeout(at)
        if direction == "out":
            picked = self.pool.scale_out(node=node, at=sim.now)
        else:
            picked = self.pool.scale_in(node=node, at=sim.now)
        if picked is None:
            return
        self.session.timeline.record(
            "svc.scale", f"node{picked}", sim.now, sim.now,
            direction=direction, node=picked,
            active=len(self.pool.active))
        for record in sorted(self._running.values(), key=lambda r: r.seq):
            if direction == "out":
                record.execution.inject_join(picked)
            else:
                record.execution.inject_leave(picked)

    # -- simulated lifecycle ----------------------------------------------
    def _count(self, key: str) -> None:
        if self._instruments is not None:
            self._instruments[key].inc()

    def _arrival(self, record: JobRecord):
        sim = self.session.sim
        if record.submit_at > 0:
            yield sim.timeout(record.submit_at)
        self._count("submitted")
        if self.queue.offer(record):
            self._count("admitted")
            self.session.timeline.record(
                "svc.submit", record.name, sim.now, sim.now,
                tenant=record.tenant, priority=record.priority,
                admitted=True)
            self._pump()
        else:
            record.outcome = "rejected"
            record.finished_at = sim.now
            record.submission = None
            self._count("rejected")
            self.session.timeline.record(
                "svc.reject", record.name, sim.now, sim.now,
                tenant=record.tenant, priority=record.priority,
                queue_depth=self.queue.depth)
            self._job_terminal()

    def _cancel_watch(self, record: JobRecord, cancel_at: float):
        # ``cancel_at`` is captured at submit time: dispatch drops the
        # submission reference, but a late watcher must still be a no-op
        # rather than an attribute error.
        sim = self.session.sim
        if cancel_at > 0:
            yield sim.timeout(cancel_at)
        if self.queue.cancel(record.name):
            record.outcome = "cancelled"
            record.finished_at = sim.now
            record.submission = None
            self._count("cancelled")
            self.session.timeline.record(
                "svc.cancel", record.name, sim.now, sim.now,
                tenant=record.tenant)
            self._job_terminal()
            # A freed queue slot cannot unblock a *dispatch* (slots gate
            # dispatch, the queue gates admission), so no pump here.

    def _pump(self) -> None:
        """Fill free dispatch slots from the queue via the arbiter."""
        while len(self._running) < self.policy.max_running:
            candidates = self.queue.candidates(self._running_by_tenant)
            pick = self.arbiter.pick(candidates, self._running_by_tenant)
            if pick is None:
                return
            self._dispatch(self.queue.take(pick.name))

    def _dispatch(self, record: JobRecord) -> None:
        sim = self.session.sim
        submission = record.submission
        record.started_at = sim.now
        self.session.timeline.record(
            "svc.queue", record.name, record.submit_at, sim.now,
            tenant=record.tenant, priority=record.priority)
        # The span *is* the wait: queued time is pure admission blocking,
        # so the matching edge covers the whole span (self-time zero).
        self.session.timeline.record_wait(
            "admission", "svc.queue", "svc.queue", record.name,
            record.submit_at, sim.now, tenant=record.tenant)
        # A restricted pool pins the job to the currently-active subset;
        # a full pool passes None so per-job ``config.active_nodes``
        # still applies (and the classic path stays byte-identical).
        pool_active = (list(self.pool.active)
                       if len(self.pool.active) < len(self.session.cluster)
                       else None)
        record.execution = JobExecution(
            self.session, submission.app, submission.inputs,
            config=submission.config or self.base_config,
            costs=self.costs, faults=submission.faults,
            name=record.name,
            timeline=self.session.timeline.fork(record.name),
            active=pool_active)
        record.submission = None        # inputs now live in the backend
        record.execution.start()
        self._running[record.name] = record
        self._running_by_tenant[record.tenant] = \
            self._running_by_tenant.get(record.tenant, 0) + 1
        self.peak_running = max(self.peak_running, len(self._running))
        self._count("dispatched")
        sim.process(self._watch(record), name=f"svc.watch.{record.name}")

    def _watch(self, record: JobRecord):
        sim = self.session.sim
        yield record.execution.proc
        record.finished_at = sim.now
        record.outcome = "completed"
        record.result = record.execution.result()
        record.leaked_buffer_slots = record.execution.leaked_buffer_slots
        self.session.timeline.record(
            "svc.job", record.name, record.started_at, sim.now,
            tenant=record.tenant, priority=record.priority,
            app=record.app_name, leaked=record.leaked_buffer_slots)
        del self._running[record.name]
        left = self._running_by_tenant[record.tenant] - 1
        if left > 0:
            self._running_by_tenant[record.tenant] = left
        else:
            del self._running_by_tenant[record.tenant]
        self._count("completed")
        if self._latency_hist is not None:
            self._latency_hist.observe(record.latency)
        self._job_terminal()
        self._pump()

    def _job_terminal(self) -> None:
        self._terminal += 1
        if (self._terminal == len(self.records)
                and self.session.telemetry is not None):
            self.session.telemetry.stop()

    # -- drive -------------------------------------------------------------
    def run(self) -> ServiceResult:
        """Run the clock until every submission reached a terminal state."""
        if not self.records:
            raise ValueError("no submissions registered")
        self._started = True
        self.session.run()
        stuck = [r.name for r in self.records.values() if r.outcome is None]
        if stuck:
            raise RuntimeError(
                f"the service deadlocked: the event queue drained with "
                f"{len(stuck)} job(s) unfinished ({', '.join(stuck[:5])}"
                f"{', ...' if len(stuck) > 5 else ''})")
        records = list(self.records.values())
        makespan = max(r.finished_at for r in records)
        counters = {
            "submitted": self.queue.offered,
            "admitted": self.queue.admitted,
            "rejected": self.queue.rejected,
            "cancelled": self.queue.cancelled,
            "completed": sum(1 for r in records if r.outcome == "completed"),
        }
        return ServiceResult(
            records=records, makespan=makespan, policy=self.policy,
            peak_running=self.peak_running,
            peak_queue_depth=self.queue.peak_depth,
            counters=counters, timeline=self.session.timeline,
            telemetry=self.session.telemetry)
