"""Discrete-event simulation kernel (simpy-style, dependency-free).

The Glasswing reproduction executes *real* data transformations while
charging their cost to a virtual clock.  This package provides the event
loop that makes that possible:

* :class:`~repro.simt.core.Simulator` — virtual clock + event heap.
* :class:`~repro.simt.core.Process` — generator-based coroutine processes.
* :class:`~repro.simt.resources.Resource` — FCFS token pools (CPU cores,
  disk channels, device queues).
* :class:`~repro.simt.resources.Store` — FIFO channels between pipeline
  stages, with optional capacity (the pipeline's buffer interlock).
* :class:`~repro.simt.trace.Timeline` — span recording used by the paper's
  per-stage breakdown tables (Tables II/III, Figures 4/5).

Determinism: given identical inputs, event ordering is fully deterministic
(ties broken by a monotonically increasing sequence number).
"""

from repro.simt.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simt.resources import BufferPool, Resource, Semaphore, Store
from repro.simt.trace import Span, Timeline

__all__ = [
    "AllOf",
    "AnyOf",
    "BufferPool",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Span",
    "Store",
    "Timeline",
    "Timeout",
]
