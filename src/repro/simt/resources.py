"""Synchronisation primitives: token pools, channels, semaphores, buffer pools.

These model the contended resources of a cluster node:

* :class:`Resource` — a FCFS pool of identical tokens.  CPU hardware
  threads are the canonical instance: map-kernel worker threads,
  partitioner threads and merger threads all draw from one pool, so the
  paper's contention effects (single- vs double-buffering, GPU freeing the
  host cores) emerge from queueing rather than hand-coded penalties.
* :class:`Store` — FIFO channel with optional capacity; pipeline stages
  are connected by stores.
* :class:`Semaphore` — counting semaphore.
* :class:`BufferPool` — a pool of indexed buffers; the Glasswing pipeline's
  single/double/triple buffering is a :class:`BufferPool` of 1/2/3 slots
  shared by a stage group.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.simt.core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "Semaphore", "BufferPool"]


class Resource:
    """FCFS pool of ``capacity`` identical tokens.

    ``acquire(n)`` returns an event that fires once ``n`` tokens are
    granted; ``release(n)`` returns them.  Requests are strictly FIFO: a
    large request at the head blocks later small ones (no starvation).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[tuple[Event, int]] = deque()

    @property
    def available(self) -> int:
        """Tokens currently free."""
        return self.capacity - self.in_use

    def acquire(self, n: int = 1) -> Event:
        """Request ``n`` tokens; the returned event fires once granted."""
        if n < 1 or n > self.capacity:
            raise ValueError(
                f"cannot acquire {n} tokens from {self.name!r} "
                f"(capacity {self.capacity})")
        ev = Event(self.sim)
        if not self._waiters and self.available >= n:
            self.in_use += n
            ev.succeed(n)
        else:
            self._waiters.append((ev, n))
        return ev

    def release(self, n: int = 1) -> None:
        """Return ``n`` tokens and wake queued requests in FIFO order."""
        if n < 1 or n > self.in_use:
            raise SimulationError(
                f"release({n}) on {self.name!r} with {self.in_use} in use")
        self.in_use -= n
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._waiters:
            ev, want = self._waiters[0]
            if self.available < want:
                break
            self._waiters.popleft()
            self.in_use += want
            ev.succeed(want)

    def cancel(self, request: Event) -> None:
        """Withdraw an ``acquire`` request that will never be consumed.

        Interrupted processes (a crashed node, a killed speculative task)
        call this from their ``except Interrupt`` handlers: a request
        still queued is removed; one already granted is released — either
        way the tokens cannot leak into a dead process and wedge the
        resource for every later user.
        """
        for i, (ev, _want) in enumerate(self._waiters):
            if ev is request:
                del self._waiters[i]
                # The head request may have been the only thing holding
                # back smaller ones behind it (FIFO, no overtaking) —
                # removing it must re-run the grant scan or a satisfiable
                # waiter stays parked until the next release.
                if i == 0:
                    self._grant_waiters()
                return
        if request.triggered and request.ok:
            self.release(request.value)

    def queue_length(self) -> int:
        """Number of pending acquire requests."""
        return len(self._waiters)

    def probe(self) -> dict:
        """Occupancy snapshot for telemetry samplers (dependency-free)."""
        return {"capacity": self.capacity, "in_use": self.in_use,
                "waiters": len(self._waiters)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Resource {self.name!r} {self.in_use}/{self.capacity} "
                f"({len(self._waiters)} waiting)>")


class Store:
    """FIFO channel of items with optional capacity.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately when unbounded or below capacity); ``get()`` returns an
    event that fires with the next item.  A ``None`` capacity means
    unbounded.  Closing a store makes further ``get``s fail with
    :class:`StoreClosed` once drained, which lets downstream pipeline
    stages terminate cleanly.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "store"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> Event:
        """Offer ``item``; event fires when the store accepts it."""
        if self._closed:
            raise SimulationError(f"put() on closed store {self.name!r}")
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Take the next item; event fires with the item.

        If the store is closed and empty the event fails with
        :class:`StoreClosed`.
        """
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            ev.succeed(item)
            # Space freed: admit a queued putter.
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed(None)
        elif self._putters:
            pev, pitem = self._putters.popleft()
            ev.succeed(pitem)
            pev.succeed(None)
        elif self._closed:
            ev.fail(StoreClosed(self.name))
        else:
            self._getters.append(ev)
        return ev

    def close(self) -> None:
        """Mark end-of-stream; pending and future gets on an empty store fail."""
        if self._closed:
            return
        self._closed = True
        while self._getters and not self._items:
            self._getters.popleft().fail(StoreClosed(self.name))

    def probe(self) -> dict:
        """Occupancy snapshot for telemetry samplers (dependency-free)."""
        return {"depth": len(self._items), "capacity": self.capacity,
                "getters": len(self._getters), "putters": len(self._putters),
                "closed": self._closed}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name!r} len={len(self._items)} closed={self._closed}>"


class StoreClosed(Exception):
    """Raised by :meth:`Store.get` after the store closed and drained."""

    def __init__(self, name: str):
        super().__init__(f"store {name!r} closed")
        self.store_name = name


class Semaphore:
    """Counting semaphore built on :class:`Resource` (``down``/``up``)."""

    def __init__(self, sim: Simulator, value: int, name: str = "sem"):
        self._res = Resource(sim, value, name=name)

    def down(self) -> Event:
        """P(): event fires once a unit is obtained."""
        return self._res.acquire(1)

    def up(self) -> None:
        """V(): return a unit."""
        self._res.release(1)

    @property
    def value(self) -> int:
        return self._res.available


class BufferPool:
    """Pool of ``n`` indexed buffer slots with FIFO hand-out.

    Models the pipeline's data buffers: a stage group configured for
    double buffering shares a two-slot pool; the *input* stage acquires a
    slot, downstream stages pass it along, and the last stage of the group
    releases it.  Slot identity (the index) is preserved so traces can show
    which buffer a chunk occupied.
    """

    def __init__(self, sim: Simulator, slots: int, name: str = "buffers"):
        if slots < 1:
            raise ValueError("a buffer pool needs at least one slot")
        self.sim = sim
        self.name = name
        self.slots = slots
        self._free: Deque[int] = deque(range(slots))
        self._waiters: Deque[Event] = deque()
        #: monotonic grant/return counters (observability: a crashed
        #: pipeline that leaks a slot shows up as acquired > released)
        self.acquired = 0
        self.released = 0

    def acquire(self) -> Event:
        """Event fires with a free slot index."""
        ev = Event(self.sim)
        if self._free:
            self.acquired += 1
            ev.succeed(self._free.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def release(self, slot: int) -> None:
        """Return ``slot`` to the pool (hand it straight to a waiter if any)."""
        if not (0 <= slot < self.slots):
            raise SimulationError(f"unknown buffer slot {slot}")
        if slot in self._free:
            raise SimulationError(f"double release of buffer slot {slot}")
        self.released += 1
        if self._waiters:
            self.acquired += 1
            self._waiters.popleft().succeed(slot)
        else:
            self._free.append(slot)

    def cancel(self, request: Event) -> None:
        """Withdraw an :meth:`acquire` request that will never be consumed.

        Mirrors :meth:`Resource.cancel`: an interrupted pipeline stage
        calls this from its ``except Interrupt`` handler so a queued
        request is removed and an already-granted slot returns to the
        pool instead of leaking into a dead process.
        """
        for i, ev in enumerate(self._waiters):
            if ev is request:
                del self._waiters[i]
                return
        if request.triggered and request.ok:
            self.release(request.value)

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def outstanding(self) -> int:
        """Slots granted but not yet returned."""
        return self.slots - len(self._free)

    def probe(self) -> dict:
        """Occupancy snapshot for telemetry samplers (dependency-free)."""
        return {"slots": self.slots, "in_use": self.outstanding,
                "waiters": len(self._waiters)}


__all__.append("StoreClosed")
