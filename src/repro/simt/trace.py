"""Span-based tracing of simulated activity.

The paper instruments each pipeline stage with timers (Tables II and III,
Figures 4 and 5 are all per-stage time breakdowns).  We reproduce that via
a :class:`Timeline` that records ``Span(category, name, start, end, meta)``
intervals in virtual time and can aggregate busy time per category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "WaitEdge", "Timeline", "TimelineFork"]


@dataclass(frozen=True)
class Span:
    """A closed interval of activity on the virtual clock."""

    category: str  # e.g. "map.kernel", "map.partition", "merge"
    name: str      # instance label, e.g. node id or chunk id
    start: float
    end: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans share a positive-length interval."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class WaitEdge:
    """A typed blocking interval: who waited, on what, and for how long.

    ``wait_class`` is one of the small closed vocabulary the causal
    profiler aggregates over (``buffer-slot``, ``queue``, ``shuffle-link``,
    ``admission``, ``pool-gate``, ``membership``, ``cache-miss``);
    ``resource`` names the concrete instance blocked on (a pool, a store,
    a NIC, an election).  ``category``/``name`` identify the *owning*
    span — the operation whose elapsed time this wait is part of — so
    every span decomposes into self-time plus its edges' durations.
    """

    wait_class: str
    resource: str
    category: str
    name: str
    start: float
    end: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Accumulates spans and computes per-category statistics."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.waits: List[WaitEdge] = []
        #: optional live-metrics hub (:class:`repro.obs.telemetry.Telemetry`).
        #: Every instrumented layer already carries the timeline, so the
        #: engine enables continuous sampling by setting this one slot; the
        #: type stays ``Any`` so simt keeps zero dependencies on obs.
        self.telemetry: Optional[Any] = None

    def record(self, category: str, name: str, start: float, end: float,
               **meta: Any) -> Span:
        """Add a span; ``end`` must not precede ``start``."""
        if end < start:
            raise ValueError(f"span ends before it starts: {start} .. {end}")
        span = Span(category, name, start, end, meta)
        self.spans.append(span)
        return span

    def record_wait(self, wait_class: str, resource: str, category: str,
                    name: str, start: float, end: float,
                    **meta: Any) -> Optional[WaitEdge]:
        """Add a wait edge owned by span ``(category, name)``.

        Zero- and negative-length waits are dropped (the caller blocked
        for no virtual time, so there is nothing to attribute).  When a
        telemetry hub is attached, the wait also feeds the
        ``glasswing_wait_seconds`` counter labelled by class.
        """
        if end - start <= 0.0:
            return None
        edge = WaitEdge(wait_class, resource, category, name, start, end, meta)
        self.waits.append(edge)
        tele = self.telemetry
        if tele is not None:
            tele.counter(
                "glasswing_wait_seconds",
                help="virtual seconds blocked, by wait class",
                **{"class": wait_class}).inc(edge.duration)
        return edge

    def by_category(self, category: str) -> List[Span]:
        """All spans whose category matches exactly."""
        return [s for s in self.spans if s.category == category]

    def categories(self) -> List[str]:
        """Sorted list of distinct categories."""
        return sorted({s.category for s in self.spans})

    def busy_time(self, category: str, name: Optional[str] = None) -> float:
        """Sum of span durations in ``category`` (optionally one instance).

        This counts *work* time; overlapping spans (parallel workers) count
        multiply.  Use :meth:`span_extent` for wall-clock extent.
        """
        return sum(
            s.duration for s in self.spans
            if s.category == category and (name is None or s.name == name))

    def span_extent(self, category: str, name: Optional[str] = None) -> float:
        """Wall-clock extent: latest end minus earliest start in category."""
        sel = [s for s in self.spans
               if s.category == category and (name is None or s.name == name)]
        if not sel:
            return 0.0
        return max(s.end for s in sel) - min(s.start for s in sel)

    def occupied_time(self, category: str, name: Optional[str] = None) -> float:
        """Union length of the category's spans (overlap counted once).

        This is the number the paper's per-stage tables report: how long
        the stage was *active*, regardless of how many worker threads it
        used.
        """
        sel = sorted(
            ((s.start, s.end) for s in self.spans
             if s.category == category and (name is None or s.name == name)))
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in sel:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def first_start(self, category: str) -> float:
        """Earliest start in category (``inf`` when empty)."""
        sel = self.by_category(category)
        return min((s.start for s in sel), default=float("inf"))

    def last_end(self, category: str) -> float:
        """Latest end in category (0 when empty)."""
        sel = self.by_category(category)
        return max((s.end for s in sel), default=0.0)

    def merge(self, other: "Timeline") -> None:
        """Absorb another timeline's spans (e.g. per-node sub-timelines)."""
        self.spans.extend(other.spans)
        self.waits.extend(other.waits)

    def breakdown(self, prefix: str = "") -> Dict[str, float]:
        """Occupied time per category, filtered by prefix; sorted dict."""
        return {
            cat: self.occupied_time(cat)
            for cat in self.categories() if cat.startswith(prefix)
        }

    def fork(self, label: str) -> "TimelineFork":
        """A per-tenant view of this timeline (see :class:`TimelineFork`)."""
        return TimelineFork(self, label)

    def __len__(self) -> int:
        return len(self.spans)


class TimelineFork(Timeline):
    """A per-tenant view onto a shared session timeline.

    A multi-job session renders one merged trace, but each job also needs
    a private timeline for its own metrics and report.  Spans recorded on
    a fork are kept locally *and* forwarded to the parent, tagged with
    ``job=<label>`` so trace viewers can group rows per job.

    The fork deliberately does **not** inherit the parent's telemetry
    hub: instruments carried by per-job components must not re-register
    session-level gauges for every admitted job (same metric labels would
    collide); session-wide sampling keeps running off the parent.
    """

    def __init__(self, parent: Timeline, label: str) -> None:
        super().__init__()
        self.parent = parent
        self.label = label

    def record(self, category: str, name: str, start: float, end: float,
               **meta: Any) -> Span:
        meta.setdefault("job", self.label)
        span = super().record(category, name, start, end, **meta)
        self.parent.spans.append(span)
        return span

    def record_wait(self, wait_class: str, resource: str, category: str,
                    name: str, start: float, end: float,
                    **meta: Any) -> Optional[WaitEdge]:
        meta.setdefault("job", self.label)
        edge = super().record_wait(wait_class, resource, category, name,
                                   start, end, **meta)
        if edge is not None:
            self.parent.waits.append(edge)
            # The fork has no hub of its own (see the class docstring), so
            # feed the session-level wait counter through the parent.
            tele = (self.parent.telemetry
                    if self.telemetry is None else None)
            if tele is not None:
                tele.counter(
                    "glasswing_wait_seconds",
                    help="virtual seconds blocked, by wait class",
                    **{"class": wait_class}).inc(edge.duration)
        return edge
