"""Core event loop: simulator, events, processes and composite conditions.

The design follows the classic process-interaction style (as popularised by
SimPy): a *process* is a Python generator that yields :class:`Event`
objects; the simulator resumes the generator when the yielded event
triggers.  Virtual time only advances between events — the Python code run
inside a process is free (it models zero-duration work such as real data
transformation whose *cost* is charged separately through timeouts).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; it becomes *triggered* once
    :meth:`succeed` or :meth:`fail` is called, at which point it is placed
    on the simulator's queue and its callbacks run at the current virtual
    time.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
                 "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        # A defused failure does not crash the simulation even when nothing
        # waits on it (used for interrupt delivery hooks).
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.sim._enqueue(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exc`` raised."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exc
        self._triggered = True
        self.sim._enqueue(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event has already been processed the callback runs
        immediately (same virtual time).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        sim._enqueue(self, delay)


class Process(Event):
    """A running coroutine; also an event that fires when it terminates.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds, the generator is resumed with the event's value; when
    it fails, the event's exception is thrown into the generator (so
    processes can ``try/except`` failures of sub-operations).

    A finished process triggers itself with the generator's return value;
    an uncaught exception inside the generator fails the process event and
    — if no other process is waiting on it — crashes the simulation (to
    avoid silently losing errors).
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {gen!r}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current time.
        boot = Event(sim)
        boot._ok = True
        boot._triggered = True
        boot.subscribe(self._resume)
        sim._enqueue(boot)

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error.  The event the
        process was waiting on remains pending; the process may re-wait on
        it after handling the interrupt.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        hook = Event(self.sim)
        hook._ok = False
        hook._value = Interrupt(cause)
        hook._triggered = True
        hook._defused = True
        hook.subscribe(self._resume_interrupt)
        self.sim._enqueue(hook)

    # -- generator stepping ----------------------------------------------
    def _resume_interrupt(self, hook: Event) -> None:
        if self._triggered:  # terminated before the interrupt fired
            return
        # Detach from the event we were waiting on.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(throw=hook._value)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._target = None
        if event._ok:
            self._step(send=event._value)
        else:
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        sim = self.sim
        prev = sim._active_process
        sim._active_process = self
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            sim._active_process = prev
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            sim._active_process = prev
            self.succeed(None)
            return
        except BaseException as exc:
            sim._active_process = prev
            self._ok = False
            self._value = exc
            self._triggered = True
            sim._enqueue(self)
            return
        sim._active_process = prev
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (Timeout, Process, Resource.acquire(), ...)")
        if target.sim is not sim:
            raise SimulationError("yielded event belongs to a different simulator")
        self._target = target
        target.subscribe(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.subscribe(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Succeeds with the list of constituent values (in construction order).
    Fails as soon as any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the *first* constituent event fires.

    Succeeds with ``(index, value)`` of the first event; fails if the first
    event to fire failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((self.events.index(event), event._value))


class Simulator:
    """Virtual clock and event queue.

    Usage::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(3.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        # Coalesced-timeout cache: delay -> shared Timeout, valid only for
        # the instant it was created at (see :meth:`shared_timeout`).
        self._shared_timeouts: dict[float, Timeout] = {}
        self._shared_at: float = -1.0

    # -- factory helpers --------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def shared_timeout(self, delay: float) -> Timeout:
        """A coalesced timeout: waiters created at the same instant with
        the same delay share one event (and one heap entry).

        Batched pipeline stages and shuffle transports routinely start
        many identical waits at the same virtual time; coalescing them
        turns N heap pushes + N pops into one of each.  Callbacks of a
        shared event run in subscription order, so FIFO ordering between
        same-timestamp waiters is preserved — the ordering guarantee the
        per-event path gives via the heap's monotonic sequence numbers.

        The shared event carries no value (waiters resume with ``None``)
        and must not be failed or succeeded by callers.
        """
        if self._shared_at != self.now:
            self._shared_timeouts.clear()
            self._shared_at = self.now
        ev = self._shared_timeouts.get(delay)
        # A processed event would resume new waiters instantly (time
        # travel); only reuse while its callback list is still open.
        if ev is None or ev.callbacks is None:
            ev = Timeout(self, delay)
            self._shared_timeouts[delay] = ev
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register ``gen`` as a process; returns its completion event."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: every constituent has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: the first constituent fires."""
        return AnyOf(self, events)

    # -- queue machinery ---------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def peek(self) -> float:
        """Virtual time of the next event, or ``inf`` if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on empty event queue")
        t, _seq, event = heapq.heappop(self._heap)
        if t < self.now:
            raise SimulationError("time went backwards")
        self.now = t
        waited_on = event.callbacks  # capture before processing clears it
        event._run_callbacks()
        # A failed event that nobody handled is a lost error: surface it so
        # bugs inside pipeline processes become real test failures instead
        # of silently wrong timings.
        if event._ok is False and not waited_on and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or virtual time reaches ``until``.

        Returns the final virtual time.  Uncaught process failures re-raise
        here, so tests see real tracebacks.
        """
        while self._heap:
            if until is not None and self.peek() > until:
                self.now = until
                break
            self.step()
        return self.now
