"""Pipeline analysis and the structured job report.

Three layers of digestion over the raw span timeline:

* :class:`PipelineReport` — one phase on one node: per-stage
  utilization (occupied/elapsed), the overlap factor (stage sum over
  elapsed — the paper's "elapsed converges to the dominant stage"
  claim is exactly ``overlap_factor > 1``), the dominant stage, and a
  **critical-path walk** over the five-stage dependency chain that
  attributes every elapsed second to the deepest stage active at that
  instant — or to *buffer-wait* when the interlock left all five idle.
* :func:`aggregate_counters` — the monotonic byte/slot/wait counters
  the pipeline, merger and network record as span meta.
* :func:`build_job_report` — the JSON document behind
  :meth:`GlasswingResult.to_report`, unifying stats, breakdowns,
  fault/recovery metrics and counters.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.causal import causal_profile
from repro.simt.trace import Timeline

__all__ = ["PIPELINE_STAGES", "PipelineReport", "aggregate_counters",
           "build_job_report"]

PIPELINE_STAGES = ("input", "stage", "kernel", "retrieve", "output")

_EPS = 1e-12


class PipelineReport:
    """Utilization/overlap/critical-path analysis of one pipeline phase.

    ``node=None`` resolves to the *critical node*: the instance whose
    ``{phase}.elapsed`` span ends last, i.e. the one that gated the
    phase's completion — per-node analysis of any other node answers
    "why was this node slow", the critical node answers "why was the
    job slow".
    """

    def __init__(self, timeline: Timeline, phase: str = "map",
                 node: Optional[str] = None, telemetry: Any = None):
        self.timeline = timeline
        self.phase = phase
        self.node = node if node is not None else self._critical_node()
        # Sampled metrics, when the job ran with a live Telemetry hub —
        # enables the saturation analysis below.
        self.telemetry = (telemetry if telemetry is not None
                          else getattr(timeline, "telemetry", None))

    # -- node resolution ---------------------------------------------------
    def _critical_node(self) -> Optional[str]:
        spans = self.timeline.by_category(f"{self.phase}.elapsed")
        if not spans:
            return None
        return max(spans, key=lambda s: (s.end, s.name)).name

    # -- basic stage numbers -----------------------------------------------
    @property
    def elapsed(self) -> float:
        """Wall-clock extent of the phase on the analysed node."""
        return self.timeline.span_extent(f"{self.phase}.elapsed",
                                         name=self.node)

    def occupied(self, stage: str) -> float:
        """Active (union) time of one stage on the analysed node."""
        return self.timeline.occupied_time(f"{self.phase}.{stage}",
                                           name=self.node)

    def stage_occupied(self) -> Dict[str, float]:
        """Stage -> active time for the analysed node."""
        return {stage: self.occupied(stage) for stage in PIPELINE_STAGES}

    def utilization(self) -> Dict[str, float]:
        """Stage -> occupied/elapsed (the per-stage duty cycle)."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return {stage: 0.0 for stage in PIPELINE_STAGES}
        return {stage: occ / elapsed
                for stage, occ in self.stage_occupied().items()}

    @property
    def overlap_factor(self) -> float:
        """Sum of stage active times over elapsed; > 1 means the stages
        genuinely ran concurrently (the §III-D buffering payoff)."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        return sum(self.stage_occupied().values()) / elapsed

    @property
    def dominant_stage(self) -> Optional[str]:
        """The stage with the largest active time (``None`` when idle)."""
        occupied = self.stage_occupied()
        if not any(occupied.values()):
            return None
        return max(occupied, key=lambda s: occupied[s])

    # -- critical path -----------------------------------------------------
    def critical_path(self) -> Dict[str, float]:
        """Attribute the phase's elapsed time along the dependency chain.

        Walks backwards from the phase end: at every instant the elapsed
        second is charged to the *deepest* pipeline stage active then
        (the output stage gates completion ahead of retrieve, retrieve
        ahead of kernel, …); instants where no stage is active are
        buffer-wait — the §III-D interlock (or queue starvation) holding
        every stage idle.  The returned attribution sums to ``elapsed``.
        """
        attribution = {stage: 0.0 for stage in PIPELINE_STAGES}
        attribution["wait"] = 0.0
        window = [s for s in self.timeline.by_category(f"{self.phase}.elapsed")
                  if self.node is None or s.name == self.node]
        if not window:
            return attribution
        t0 = min(s.start for s in window)
        t1 = max(s.end for s in window)
        spans: List[Tuple[float, float, int]] = []
        for rank, stage in enumerate(PIPELINE_STAGES):
            for s in self.timeline.by_category(f"{self.phase}.{stage}"):
                if s.name == self.node and s.duration > 0:
                    spans.append((s.start, s.end, rank))
        t = t1
        while t > t0 + _EPS:
            covering = [sp for sp in spans if sp[0] < t - _EPS and sp[1] >= t - _EPS]
            if covering:
                start, _end, rank = max(covering, key=lambda sp: sp[2])
                lo = max(start, t0)
                attribution[PIPELINE_STAGES[rank]] += t - lo
                t = lo
            else:
                prev = max((sp[1] for sp in spans if sp[1] < t - _EPS),
                           default=t0)
                prev = max(prev, t0)
                attribution["wait"] += t - prev
                t = prev
        return attribution

    # -- sampled-telemetry analysis ----------------------------------------
    def _phase_window(self) -> Tuple[float, float]:
        spans = [s for s in self.timeline.by_category(f"{self.phase}.elapsed")
                 if self.node is None or s.name == self.node]
        if not spans:
            return (float("-inf"), float("inf"))
        return (min(s.start for s in spans), max(s.end for s in spans))

    def interval_rates(self) -> Dict[str, List[Tuple[float, float]]]:
        """Per-interval rates of every sampled counter series
        (``{} `` without telemetry)."""
        if self.telemetry is None:
            return {}
        return self.telemetry.rates()

    def saturation(self) -> List[Dict[str, Any]]:
        """Capacity-bearing gauges relevant to this phase/node, ranked by
        mean fill level over the phase window.

        A gauge participates when it declared a ``capacity`` and its
        labels do not contradict the analysed phase and node (label
        absent counts as matching, so cluster-wide gauges rank against
        pipeline-local ones).  ``level`` is value/capacity, averaged
        over the sampler ticks falling inside the phase window.
        """
        tele = self.telemetry
        if tele is None:
            return []
        t0, t1 = self._phase_window()
        points = tele.series()
        out: List[Dict[str, Any]] = []
        for metric in tele.registry.sorted_metrics():
            capacity = getattr(metric, "capacity", None)
            if metric.kind != "gauge" or not capacity:
                continue
            labels = metric.label_dict
            if labels.get("phase", self.phase) != self.phase:
                continue
            if self.node is not None and labels.get("node",
                                                    self.node) != self.node:
                continue
            pts = [(t, v)
                   for t, v in points.get((metric.name, metric.labels), [])
                   if t0 <= t <= t1]
            if not pts:
                continue
            levels = [v / capacity for _t, v in pts]
            out.append({
                "series": metric.series(),
                "capacity": capacity,
                "mean_level": sum(levels) / len(levels),
                "peak_level": max(levels),
                "samples": len(levels),
            })
        out.sort(key=lambda e: (-e["mean_level"], e["series"]))
        return out

    def saturated_resource(self,
                           threshold: float = 0.5) -> Optional[Dict[str, Any]]:
        """The hottest capacity-bearing gauge of the phase, when its mean
        fill level crosses ``threshold`` (``None`` otherwise — nothing
        the sampler watched was meaningfully saturated)."""
        ranked = self.saturation()
        if ranked and ranked[0]["mean_level"] >= threshold:
            return ranked[0]
        return None

    # -- scheduling --------------------------------------------------------
    def placement(self) -> Optional[Dict[str, Any]]:
        """Scheduler placement summary for this phase: the policy, a
        per-node placement histogram, the locality hit rate and any
        device-pool split.  ``None`` when the job predates (or ran
        without) the scheduling layer's ``sched.place`` spans.

        The map phase owns the recovery and speculative placements too —
        they are map work, wherever the policy put it.
        """
        wanted = (("map", "recovery", "speculative")
                  if self.phase == "map" else (self.phase,))
        spans = [s for s in self.timeline.by_category("sched.place")
                 if s.meta.get("phase") in wanted]
        if not spans:
            return None
        by_node: Dict[str, int] = {}
        by_device: Dict[str, int] = {}
        hits = misses = 0
        for span in spans:
            weight = span.meta.get("partitions", 1)
            by_node[span.name] = by_node.get(span.name, 0) + weight
            device = span.meta.get("device")
            if device is not None:
                by_device[device] = by_device.get(device, 0) + weight
            local = span.meta.get("local")
            if local is True:
                hits += 1
            elif local is False:
                misses += 1
        return {
            "policy": spans[0].meta.get("policy"),
            "placements": sum(by_node.values()),
            "by_node": dict(sorted(by_node.items())),
            "by_device": dict(sorted(by_device.items())) or None,
            "locality_hits": hits,
            "locality_misses": misses,
            "locality_hit_rate": (hits / (hits + misses)
                                  if hits + misses else None),
        }

    # -- rendering ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary of the analysis."""
        return {
            "phase": self.phase,
            "node": self.node,
            "elapsed": self.elapsed,
            "occupied": self.stage_occupied(),
            "utilization": self.utilization(),
            "overlap_factor": self.overlap_factor,
            "dominant_stage": self.dominant_stage,
            "critical_path": self.critical_path(),
            "saturation": self.saturation(),
            "saturated_resource": self.saturated_resource(),
            "placement": self.placement(),
        }

    def explain(self) -> str:
        """Human-readable dominant-stage analysis (the CLI's --explain)."""
        elapsed = self.elapsed
        lines = [f"{self.phase} pipeline — critical node "
                 f"{self.node or '(none)'}"]
        if elapsed <= 0:
            lines.append("  (no activity recorded for this phase)")
            return "\n".join(lines)
        occupied = self.stage_occupied()
        util = self.utilization()
        dominant = self.dominant_stage
        lines.append(f"  elapsed           {elapsed:.4f} s")
        lines.append(f"  overlap factor    {self.overlap_factor:.2f}x "
                     f"(stage sum {sum(occupied.values()):.4f} s)")
        if dominant is not None:
            lines.append(f"  dominant stage    {dominant} — occupied "
                         f"{occupied[dominant]:.4f} s, "
                         f"{100 * util[dominant]:.0f}% utilization")
        lines.append("  stage utilization "
                     + "  ".join(f"{s} {100 * util[s]:.0f}%"
                                 for s in PIPELINE_STAGES))
        path = self.critical_path()
        parts = sorted(((v, k) for k, v in path.items() if v > 0),
                       reverse=True)
        lines.append("  critical path     "
                     + ", ".join(f"{'buffer-wait' if k == 'wait' else k} "
                                 f"{100 * v / elapsed:.1f}%"
                                 for v, k in parts))
        if self.telemetry is not None:
            hot = self.saturated_resource()
            if hot is not None:
                lines.append(f"  saturated         {hot['series']} — mean "
                             f"{100 * hot['mean_level']:.0f}% of capacity, "
                             f"peak {100 * hot['peak_level']:.0f}%")
            else:
                lines.append("  saturated         (no sampled resource above "
                             "50% of capacity)")
        placement = self.placement()
        if placement is not None:
            rate = placement["locality_hit_rate"]
            locality = (f", locality {100 * rate:.0f}% "
                        f"({placement['locality_hits']}/"
                        f"{placement['locality_hits'] + placement['locality_misses']} local)"
                        if rate is not None else "")
            counts = placement["by_node"].values()
            spread = (f"{min(counts)}-{max(counts)} per node"
                      if counts else "none")
            lines.append(f"  placement         {placement['policy']}: "
                         f"{placement['placements']} ops, {spread}{locality}")
            if placement["by_device"]:
                lines.append("  device pool       "
                             + "  ".join(f"{d} {n}" for d, n in
                                         placement["by_device"].items()))
        return "\n".join(lines)


def aggregate_counters(timeline: Timeline) -> Dict[str, Any]:
    """Roll the span-meta counters up into job-level monotonic totals."""
    counters: Dict[str, Any] = {
        "bytes_read": 0, "bytes_staged": 0, "bytes_retrieved": 0,
        "bytes_output": 0, "bytes_shuffled": 0, "bytes_spilled": 0,
        "transfers": 0, "slots_acquired": 0, "slots_released": 0,
        "slots_leaked": 0, "queue_wait_seconds": 0.0,
        "slot_wait_seconds": 0.0, "net_wait_seconds": 0.0,
    }
    for span in timeline.spans:
        meta = span.meta
        if span.category == "net.transfer":
            counters["bytes_shuffled"] += meta.get("bytes", 0)
            counters["transfers"] += 1
            counters["net_wait_seconds"] += (meta.get("tx_wait", 0.0)
                                             + meta.get("fabric_wait", 0.0)
                                             + meta.get("rx_wait", 0.0))
            continue
        if span.category in ("merge.flush", "merge.compact"):
            counters["bytes_spilled"] += meta.get("bytes", 0)
            continue
        stage = span.category.rpartition(".")[2]
        if stage == "elapsed":
            counters["slots_acquired"] += meta.get("slots_acquired", 0)
            counters["slots_released"] += meta.get("slots_released", 0)
            counters["slots_leaked"] += meta.get("slots_leaked", 0)
        elif stage == "input":
            counters["bytes_read"] += meta.get("bytes", 0)
        elif stage == "stage":
            counters["bytes_staged"] += meta.get("bytes", 0)
        elif stage == "retrieve":
            counters["bytes_retrieved"] += meta.get("bytes", 0)
        elif stage == "output":
            counters["bytes_output"] += meta.get("bytes", 0)
        counters["queue_wait_seconds"] += meta.get("queue_wait", 0.0)
        counters["slot_wait_seconds"] += meta.get("slot_wait", 0.0)
    return counters


def _json_safe(value: Any) -> Any:
    """Recursively clamp a value to JSON-encodable types."""
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _json_safe(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    return repr(value)


def build_job_report(result) -> Dict[str, Any]:
    """The structured job report (``GlasswingResult.to_report``).

    ``result`` is duck-typed (a :class:`~repro.core.engine.GlasswingResult`)
    to keep this module free of engine imports.
    """
    timeline = result.timeline
    metrics = result.metrics
    telemetry = getattr(result, "telemetry", None)
    phases = {}
    for phase in ("map", "reduce"):
        phases[phase] = PipelineReport(timeline, phase=phase,
                                       telemetry=telemetry).to_dict()
    telemetry_section = None
    if telemetry is not None:
        telemetry_section = {
            "interval_s": telemetry.interval,
            "ticks": len(telemetry.ticks),
            "series": len(telemetry.registry),
            "final": telemetry.final_values(),
        }
    return {
        "schema": "glasswing-report/1",
        "app": result.app_name,
        "nodes": result.n_nodes,
        "times": {
            "job": result.job_time,
            "map": result.map_time,
            "merge_delay": result.merge_delay,
            "reduce": result.reduce_time,
        },
        "config": _json_safe(result.config),
        "stats": _json_safe(result.stats),
        "phases": phases,
        "breakdowns": {
            "map": metrics.breakdown("map"),
            "reduce": metrics.breakdown("reduce"),
        },
        "faults": {
            "node_crashes": metrics.node_crashes,
            "reexecutions": metrics.reexecutions,
            "wasted_seconds": metrics.wasted_seconds,
            "recovery_seconds": metrics.recovery_time,
            "speculative_launches": metrics.speculative_launches,
            "speculative_wins": metrics.speculative_wins,
        },
        "counters": aggregate_counters(timeline),
        "causal": causal_profile(timeline, elapsed_s=result.job_time),
        "telemetry": telemetry_section,
        "scheduling": {
            "policy": result.stats.get("scheduler"),
            "placements": result.stats.get("sched_placements"),
            "locality_hits": result.stats.get("sched_locality_hits"),
            "locality_misses": result.stats.get("sched_locality_misses"),
            "locality_hit_rate": result.stats.get("sched_locality_hit_rate"),
            "map": phases["map"].get("placement"),
            "reduce": phases["reduce"].get("placement"),
        },
    }
