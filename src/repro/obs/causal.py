"""Causal wait-graph profiling over the span timeline.

Every blocking primitive in the stack records a typed
:class:`~repro.simt.trace.WaitEdge` naming what it blocked on — buffer
slots (``buffer-slot``), inter-stage queues (``queue``), NIC/fabric
contention (``shuffle-link``), service admission (``admission``), the
heterogeneous device-pool gate (``pool-gate``), coordinator elections
(``membership``) and cache-aside misses (``cache-miss``).  This module
joins those edges back onto their owning spans so each span decomposes
*exactly* into self-time plus per-class wait-time:

* :func:`match_waits` — assign every edge to the span it belongs to
  (stable identity = ``(category, name, op-token, job)``; ties broken
  by request time);
* :func:`verify_decomposition` — the property-tested invariant: no
  orphan edges, no overlapping edges within one span, every span's
  pre-span gap (``t_req`` → ``start``) tiled by its edges, and
  ``self + Σ wait == elapsed`` within tolerance (0 unattributed time);
* :func:`causal_profile` — the ``glasswing-causal/1`` document: per
  (stage, wait-class, resource) seconds, split into leaf *stages* and
  roll-up *aggregates* (job/phase envelopes, which must not shadow the
  stage-level causes in a diff).

Span time convention: an instrumented span may carry ``meta["t_req"]``,
the instant the operation *requested* its first resource (default: the
span start).  Elapsed time is ``end - t_req``; edges live inside
``[t_req, end]``; the gap ``[t_req, start]`` is pure wait and must be
tiled exactly by pre-edges.  All recording is bookkeeping between
simulation events, so capture is invisible to virtual time.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.simt.trace import Span, Timeline, WaitEdge

__all__ = ["WAIT_CLASSES", "match_waits", "verify_decomposition",
           "causal_profile", "span_request_time", "is_aggregate_category"]

#: the closed wait-class vocabulary (``self`` is a diff pseudo-class)
WAIT_CLASSES = ("buffer-slot", "queue", "shuffle-link", "admission",
                "pool-gate", "membership", "cache-miss")

_TOL = 1e-9


def span_request_time(span: Span) -> float:
    """The instant the span's operation started blocking (see module
    docstring); clamped so a malformed ``t_req`` never exceeds start."""
    t_req = span.meta.get("t_req", span.start)
    if not isinstance(t_req, (int, float)):
        return span.start
    return min(float(t_req), span.start)


def is_aggregate_category(category: str) -> bool:
    """Roll-up categories whose elapsed time *contains* other spans.

    Job/phase envelopes (``phase.map``, ``map.elapsed``, ``svc.job``,
    DAG round markers) re-cover the same seconds the stage spans already
    account for; a diff must rank causes over leaf stages only, or the
    envelope's self-time would always dominate.
    """
    return (category.endswith(".elapsed")
            or category.startswith("phase.")
            or category.startswith("dag.")
            or category in ("svc.job", "job"))


def _identity(category: str, name: str, meta: Dict[str, Any]) -> Tuple:
    return (category, name, meta.get("op"), meta.get("job"))


def match_waits(timeline: Timeline,
                tol: float = _TOL) -> Tuple[List[List[WaitEdge]], List[str]]:
    """Assign every wait edge to its owning span.

    Returns ``(assignments, errors)`` where ``assignments[i]`` lists the
    edges of ``timeline.spans[i]`` and ``errors`` collects orphan edges
    (no span of matching identity covers them).  Within one identity
    group an edge belongs to the span with the greatest request time not
    after the edge's start — concurrent same-identity operations must
    disambiguate with an ``op`` meta token (the network, cache, gate and
    barrier instrumentation do; pipeline stages are sequential per
    pipeline and carry the pipeline's token).
    """
    spans = timeline.spans
    by_key: Dict[Tuple, List[Tuple[float, int]]] = {}
    for i, span in enumerate(spans):
        key = _identity(span.category, span.name, span.meta)
        by_key.setdefault(key, []).append((span_request_time(span), i))
    for entries in by_key.values():
        entries.sort()
    assignments: List[List[WaitEdge]] = [[] for _ in spans]
    errors: List[str] = []
    for edge in timeline.waits:
        key = _identity(edge.category, edge.name, edge.meta)
        entries = by_key.get(key)
        owner: Optional[int] = None
        if entries:
            reqs = [req for req, _i in entries]
            pos = bisect_right(reqs, edge.start + tol) - 1
            # Walk back over spans the edge cannot fit in (it must end
            # inside its owner, up to tolerance).
            while pos >= 0:
                idx = entries[pos][1]
                if edge.end <= spans[idx].end + tol:
                    owner = idx
                    break
                pos -= 1
        if owner is None:
            errors.append(
                f"orphan wait edge {edge.wait_class}/{edge.resource} "
                f"[{edge.start:.9f}, {edge.end:.9f}] with no owning span "
                f"{edge.category}/{edge.name}")
            continue
        assignments[owner].append(edge)
    return assignments, errors


def verify_decomposition(timeline: Timeline,
                         tol: float = _TOL) -> Dict[str, Any]:
    """Check the wait decomposition invariant over a whole timeline.

    Raises :class:`ValueError` listing every violation; on success
    returns a summary (span/edge counts, per-class seconds and the
    worst residual seen).  Invariants:

    1. no orphan edges — every recorded wait belongs to a span;
    2. every edge lies inside its span's ``[t_req, end]`` window;
    3. a span's edges do not overlap one another (no double counting);
    4. the pre-span gap ``[t_req, start]`` is tiled exactly;
    5. ``self = elapsed - Σ wait`` is non-negative (within ``tol``);
    6. meta cross-checks: ``net.transfer`` spans' ``tx/fabric/rx`` wait
       metas equal their matched shuffle-link edge seconds.
    """
    assignments, problems = match_waits(timeline, tol=tol)
    total_wait = 0.0
    by_class: Dict[str, float] = {}
    max_residual = 0.0
    n_edges = 0
    for span, edges in zip(timeline.spans, assignments):
        if not edges and "t_req" not in span.meta:
            continue
        req = span_request_time(span)
        elapsed = span.end - req
        edges = sorted(edges, key=lambda e: (e.start, e.end))
        wait = 0.0
        prev_end = None
        pre_gap_covered = 0.0
        for edge in edges:
            n_edges += 1
            wait += edge.duration
            by_class[edge.wait_class] = (by_class.get(edge.wait_class, 0.0)
                                         + edge.duration)
            if edge.start < req - tol or edge.end > span.end + tol:
                problems.append(
                    f"edge {edge.wait_class}/{edge.resource} "
                    f"[{edge.start:.9f}, {edge.end:.9f}] outside span "
                    f"{span.category}/{span.name} "
                    f"[{req:.9f}, {span.end:.9f}]")
            if prev_end is not None and edge.start < prev_end - tol:
                problems.append(
                    f"overlapping edges on span {span.category}/{span.name} "
                    f"at {edge.start:.9f} (previous ends {prev_end:.9f})")
            prev_end = max(prev_end, edge.end) if prev_end is not None \
                else edge.end
            lo = max(edge.start, req)
            hi = min(edge.end, span.start)
            if hi > lo:
                pre_gap_covered += hi - lo
        pre_gap = span.start - req
        residual = abs(pre_gap - pre_gap_covered)
        if pre_gap > tol and residual > tol:
            problems.append(
                f"pre-span gap of {span.category}/{span.name} at "
                f"{req:.9f} is {pre_gap:.9f}s but edges tile "
                f"{pre_gap_covered:.9f}s (unattributed wait)")
        self_time = elapsed - wait
        if self_time < -tol:
            problems.append(
                f"span {span.category}/{span.name} "
                f"[{req:.9f}, {span.end:.9f}]: waits sum to {wait:.9f}s "
                f"but elapsed is only {elapsed:.9f}s")
        max_residual = max(max_residual, residual,
                           max(0.0, -self_time))
        if span.category == "net.transfer":
            meta_wait = (span.meta.get("tx_wait", 0.0)
                         + span.meta.get("fabric_wait", 0.0)
                         + span.meta.get("rx_wait", 0.0))
            if abs(meta_wait - wait) > tol:
                problems.append(
                    f"net.transfer {span.name} meta waits {meta_wait:.9f}s "
                    f"!= matched edges {wait:.9f}s")
        total_wait += wait
    if problems:
        shown = "\n  ".join(problems[:20])
        more = f"\n  ... and {len(problems) - 20} more" \
            if len(problems) > 20 else ""
        raise ValueError(
            f"wait decomposition violated ({len(problems)} problems):\n"
            f"  {shown}{more}")
    return {
        "spans": len(timeline.spans),
        "edges_matched": n_edges,
        "wait_seconds": total_wait,
        "by_class": dict(sorted(by_class.items())),
        "max_residual": max_residual,
    }


def causal_profile(timeline: Timeline, elapsed_s: Optional[float] = None,
                   tol: float = _TOL) -> Dict[str, Any]:
    """The ``glasswing-causal/1`` profile: per-stage self/wait seconds.

    ``stages`` holds leaf categories (diffable causes); ``aggregates``
    holds roll-up envelopes (kept for context, excluded from cause
    ranking — see :func:`is_aggregate_category`).  ``tree`` groups the
    stage totals hierarchically by job label for multi-tenant traces.
    """
    assignments, errors = match_waits(timeline, tol=tol)
    stages: Dict[str, Dict[str, Any]] = {}
    aggregates: Dict[str, Dict[str, Any]] = {}
    tree: Dict[str, Dict[str, Dict[str, float]]] = {}
    total_self = 0.0
    total_wait = 0.0
    for span, edges in zip(timeline.spans, assignments):
        req = span_request_time(span)
        elapsed = span.end - req
        wait = sum(e.duration for e in edges)
        self_time = max(0.0, elapsed - wait)
        bucket = aggregates if is_aggregate_category(span.category) \
            else stages
        entry = bucket.setdefault(span.category, {
            "count": 0, "elapsed_s": 0.0, "self_s": 0.0, "wait_s": 0.0,
            "waits": {},
        })
        entry["count"] += 1
        entry["elapsed_s"] += elapsed
        entry["self_s"] += self_time
        entry["wait_s"] += wait
        for edge in edges:
            cls = entry["waits"].setdefault(edge.wait_class, {
                "seconds": 0.0, "count": 0, "resources": {},
            })
            cls["seconds"] += edge.duration
            cls["count"] += 1
            cls["resources"][edge.resource] = (
                cls["resources"].get(edge.resource, 0.0) + edge.duration)
        if bucket is stages:
            total_self += self_time
            total_wait += wait
            job = str(span.meta.get("job", "-"))
            node = tree.setdefault(job, {}).setdefault(span.category, {
                "self_s": 0.0, "wait_s": 0.0, "count": 0,
            })
            node["self_s"] += self_time
            node["wait_s"] += wait
            node["count"] += 1
    wait_classes: Dict[str, float] = {}
    for entry in stages.values():
        for cls, info in entry["waits"].items():
            wait_classes[cls] = wait_classes.get(cls, 0.0) + info["seconds"]
    return {
        "schema": "glasswing-causal/1",
        "elapsed_s": elapsed_s,
        "self_s": total_self,
        "wait_s": total_wait,
        "wait_classes": dict(sorted(wait_classes.items())),
        "stages": {k: stages[k] for k in sorted(stages)},
        "aggregates": {k: aggregates[k] for k in sorted(aggregates)},
        "tree": {j: {c: tree[j][c] for c in sorted(tree[j])}
                 for j in sorted(tree)},
        "orphan_edges": len(errors),
    }
