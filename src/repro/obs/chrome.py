"""Chrome trace-event export of simulation timelines.

Converts a :class:`~repro.simt.trace.Timeline` into the Chrome
trace-event JSON format understood by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev).  The mapping:

* every span *instance* (``node0``, ``node1``, ``job``, ``0->1`` …)
  becomes one **process row**, so a cluster run reads as one lane per
  node; spans tagged with a ``job=<label>`` meta (a multi-job service
  session, see :mod:`repro.service`) get **per-job rows** —
  ``wordcount:node0`` next to ``terasort:node0`` — so concurrent
  tenants read as separate lane groups over the same virtual clock;
* every span *category* (``map.input``, ``map.kernel``,
  ``reduce.output`` …) becomes a **thread row** within its process,
  ordered so the five pipeline stages appear in dependency order;
* every :class:`~repro.simt.trace.Span` becomes a complete (``"X"``)
  event whose ``args`` carry the span's meta counters (bytes, slot ids,
  queue waits, …);
* every delivered ``map.push`` span grows a **flow arrow** (``"s"`` /
  ``"f"`` event pair) to the receiving node's next merge span, so
  cross-node shuffle causality renders as arrows between lanes in the
  trace UI.

Virtual seconds are scaled to trace microseconds, the unit the trace
viewers expect.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, List

from repro.simt.trace import Timeline

from repro.obs.telemetry import ensure_parent_dir

__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace"]

#: virtual seconds -> trace microseconds
TIME_SCALE = 1e6

#: pipeline stages in dependency order, used to sort thread rows so a
#: trace reads top-to-bottom like the paper's §III-A diagram
_STAGE_ORDER = ("elapsed", "input", "stage", "kernel", "retrieve", "output")


def _json_safe(value: Any) -> Any:
    """Clamp a meta value to something the JSON encoder accepts."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _instance_name(span) -> str:
    """Process-row key: job-tagged spans get per-job rows."""
    job = span.meta.get("job")
    return f"{job}:{span.name}" if job else span.name


def _category_sort_key(category: str):
    """Order thread rows: phase prefix first, then pipeline-stage order."""
    prefix, _, stage = category.rpartition(".")
    try:
        rank = _STAGE_ORDER.index(stage)
    except ValueError:
        rank = len(_STAGE_ORDER)
    return (prefix, rank, stage)


def _flow_events(timeline: Timeline, pids: Dict[str, int],
                 tids: Dict[str, int],
                 time_scale: float) -> List[Dict[str, Any]]:
    """Shuffle flow arrows: each delivered ``map.push`` span links to the
    receiving node's next merge span (``"s"`` start at the push, ``"f"``
    finish at the merge), so cross-node causality renders as arrows.

    The push span records its destination lane in ``meta["dst"]``; the
    receiver is the earliest ``merge.*`` span in that lane (same job tag,
    for multi-job sessions) starting at or after the push completes —
    falling back to the lane's last merge span, which is the finalize
    (``merge.delay``) covering the tail of the shuffle.
    """
    merges: Dict[str, List[Any]] = {}
    for span in timeline.spans:
        if span.category.startswith("merge."):
            merges.setdefault(_instance_name(span), []).append(span)
    for spans in merges.values():
        spans.sort(key=lambda s: (s.start, s.end))
    starts = {name: [s.start for s in spans]
              for name, spans in merges.items()}

    events: List[Dict[str, Any]] = []
    flow_id = 0
    for span in timeline.spans:
        if span.category != "map.push" or not span.meta.get("delivered"):
            continue
        dst = span.meta.get("dst")
        if not dst:
            continue
        job = span.meta.get("job")
        lane = f"{job}:{dst}" if job else dst
        candidates = merges.get(lane)
        if not candidates:
            continue
        i = bisect_left(starts[lane], span.end)
        target = candidates[i] if i < len(candidates) else candidates[-1]
        flow_id += 1
        common = {"name": "shuffle", "cat": "flow", "id": flow_id}
        events.append({**common, "ph": "s",
                       "ts": span.end * time_scale,
                       "pid": pids[_instance_name(span)],
                       "tid": tids[span.category]})
        events.append({**common, "ph": "f", "bp": "e",
                       "ts": max(target.start, span.end) * time_scale,
                       "pid": pids[lane],
                       "tid": tids[target.category]})
    return events


def chrome_trace_events(timeline: Timeline,
                        time_scale: float = TIME_SCALE) -> List[Dict[str, Any]]:
    """The flat trace-event list for ``timeline`` (metadata + spans)."""
    instances = sorted({_instance_name(s) for s in timeline.spans})
    pids = {name: i + 1 for i, name in enumerate(instances)}
    categories = sorted({s.category for s in timeline.spans},
                        key=_category_sort_key)
    tids = {cat: i + 1 for i, cat in enumerate(categories)}

    events: List[Dict[str, Any]] = []
    for name, pid in pids.items():
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "args": {"name": name}})
    used = sorted({(_instance_name(s), s.category) for s in timeline.spans})
    for name, cat in used:
        pid, tid = pids[name], tids[cat]
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": cat}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "args": {"sort_index": tid}})
    for span in timeline.spans:
        events.append({
            "name": span.category,
            "cat": span.category.split(".", 1)[0],
            "ph": "X",
            "ts": span.start * time_scale,
            "dur": span.duration * time_scale,
            "pid": pids[_instance_name(span)],
            "tid": tids[span.category],
            "args": {k: _json_safe(v) for k, v in span.meta.items()},
        })
    events.extend(_flow_events(timeline, pids, tids, time_scale))
    return events


def to_chrome_trace(timeline: Timeline) -> Dict[str, Any]:
    """The complete JSON-object trace (Perfetto-loadable)."""
    return {
        "traceEvents": chrome_trace_events(timeline),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrome",
            "spans": len(timeline),
            "clock": "virtual seconds scaled x1e6 to trace microseconds",
        },
    }


def write_chrome_trace(timeline: Timeline, path: str) -> str:
    """Serialise the trace to ``path``; returns the path for chaining.

    Parent directories are created as needed and keys are emitted in
    sorted order, so two identical runs produce byte-identical traces.
    """
    ensure_parent_dir(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(timeline), fh, sort_keys=True)
    return path
