"""Observability: trace export and pipeline analysis.

The paper's whole evaluation (§IV-B, Tables II/III, Figures 4/5) is
per-stage timer data; this package turns the raw :class:`~repro.simt.trace.Timeline`
into artefacts a human (or a dashboard) can consume:

* :mod:`repro.obs.chrome` — Chrome trace-event JSON export
  (``chrome://tracing`` / Perfetto), one process row per node, one
  thread row per pipeline stage;
* :mod:`repro.obs.report` — :class:`PipelineReport` (per-stage
  utilization, overlap factor, dominant stage, critical-path
  attribution, saturated-resource ranking) and the structured job
  report behind :meth:`GlasswingResult.to_report`;
* :mod:`repro.obs.telemetry` — the continuous-sampling metrics hub
  (counters/gauges/histograms snapshotted every
  ``JobConfig.metrics_interval`` simulated seconds) with JSONL and
  OpenMetrics exporters plus a self-contained format validator;
* :mod:`repro.obs.causal` — causal wait-graph profiling: typed wait
  edges joined back onto their owning spans, the property-tested
  self+wait==elapsed decomposition and the ``glasswing-causal/1``
  profile;
* :mod:`repro.obs.diff` — the run-diff explainer ranking the
  (stage, wait-class, resource) causes of an elapsed delta between two
  profiles (the ``repro explain-diff`` CLI and the regress gate's
  root-cause table).
"""

from repro.obs.causal import (WAIT_CLASSES, causal_profile, match_waits,
                              verify_decomposition)
from repro.obs.chrome import (chrome_trace_events, to_chrome_trace,
                              write_chrome_trace)
from repro.obs.diff import explain_diff, load_profile, render_diff
from repro.obs.report import (PIPELINE_STAGES, PipelineReport,
                              aggregate_counters, build_job_report)
from repro.obs.telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                                 Telemetry, ensure_parent_dir,
                                 openmetrics_text, validate_openmetrics,
                                 write_metrics, write_metrics_jsonl,
                                 write_openmetrics)

__all__ = [
    "WAIT_CLASSES",
    "causal_profile",
    "match_waits",
    "verify_decomposition",
    "explain_diff",
    "load_profile",
    "render_diff",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "PIPELINE_STAGES",
    "PipelineReport",
    "aggregate_counters",
    "build_job_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "ensure_parent_dir",
    "openmetrics_text",
    "validate_openmetrics",
    "write_metrics",
    "write_metrics_jsonl",
    "write_openmetrics",
]
