"""Observability: trace export and pipeline analysis.

The paper's whole evaluation (§IV-B, Tables II/III, Figures 4/5) is
per-stage timer data; this package turns the raw :class:`~repro.simt.trace.Timeline`
into artefacts a human (or a dashboard) can consume:

* :mod:`repro.obs.chrome` — Chrome trace-event JSON export
  (``chrome://tracing`` / Perfetto), one process row per node, one
  thread row per pipeline stage;
* :mod:`repro.obs.report` — :class:`PipelineReport` (per-stage
  utilization, overlap factor, dominant stage, critical-path
  attribution) and the structured job report behind
  :meth:`GlasswingResult.to_report`.
"""

from repro.obs.chrome import (chrome_trace_events, to_chrome_trace,
                              write_chrome_trace)
from repro.obs.report import (PIPELINE_STAGES, PipelineReport,
                              aggregate_counters, build_job_report)

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "PIPELINE_STAGES",
    "PipelineReport",
    "aggregate_counters",
    "build_job_report",
]
