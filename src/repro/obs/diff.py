"""Run-diff explainer: attribute an elapsed delta to (stage, wait-class,
resource) causes.

Two runs of the same workload rarely differ uniformly — a cost-model
change, a congested link or a throttled device shows up as *one* stage's
self-time or *one* wait class growing.  :func:`explain_diff` aligns two
``glasswing-causal/1`` profiles (see :mod:`repro.obs.causal`) by stable
span identity (the stage category) and ranks the per-cause deltas, so a
regression gate can print "reduce.kernel self-time +0.84s (93% of the
delta)" instead of a bare drift percentage.

Causes are drawn from leaf stages only; aggregate envelopes (job/phase
spans) re-cover the same seconds and would always out-rank the real
culprit.  Self-time appears as the pseudo wait-class ``self``.

The CLI surface is ``repro explain-diff BASE NEW`` where each argument
is either a causal-profile JSON or a job report carrying a ``causal``
section (``--report-json`` output, or a ``BENCH_*`` sweep point).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

__all__ = ["load_profile", "explain_diff", "render_diff"]

_SELF = "self"


def load_profile(source: Union[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Coerce ``source`` into a ``glasswing-causal/1`` profile dict.

    Accepts a path to (or an already-loaded dict of) either a causal
    profile or any document embedding one under a ``"causal"`` key —
    job reports and bench sweep points both do.
    """
    doc: Any = source
    if isinstance(source, str):
        with open(source) as fh:
            doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"not a profile document: {source!r}")
    if doc.get("schema") == "glasswing-causal/1":
        return doc
    causal = doc.get("causal")
    if isinstance(causal, dict) and \
            causal.get("schema") == "glasswing-causal/1":
        return causal
    raise ValueError(
        "no glasswing-causal/1 profile found (expected a causal profile "
        "or a report with a 'causal' section)")


def _causes(profile: Dict[str, Any]) -> Dict[tuple, float]:
    """Flatten a profile's stages into ``(stage, class, resource) -> s``."""
    out: Dict[tuple, float] = {}
    for stage, entry in profile.get("stages", {}).items():
        self_s = entry.get("self_s", 0.0)
        if self_s:
            out[(stage, _SELF, "-")] = self_s
        for cls, info in entry.get("waits", {}).items():
            resources = info.get("resources") or {"-": info.get("seconds",
                                                                0.0)}
            for resource, seconds in resources.items():
                if seconds:
                    out[(stage, cls, resource)] = \
                        out.get((stage, cls, resource), 0.0) + seconds
    return out


def explain_diff(base: Union[str, Dict[str, Any]],
                 new: Union[str, Dict[str, Any]],
                 top_k: int = 8) -> Dict[str, Any]:
    """Attribute the elapsed delta between two runs to ranked causes.

    Returns the ``glasswing-causal-diff/1`` document: elapsed deltas,
    the per-(stage, wait-class, resource) cause table sorted by absolute
    delta (largest first, ties broken lexically for determinism), and
    the share of the total absolute delta each cause explains.
    """
    base_p = load_profile(base)
    new_p = load_profile(new)
    base_causes = _causes(base_p)
    new_causes = _causes(new_p)
    deltas: List[Dict[str, Any]] = []
    for key in sorted(set(base_causes) | set(new_causes)):
        b = base_causes.get(key, 0.0)
        n = new_causes.get(key, 0.0)
        if abs(n - b) <= 0.0:
            continue
        stage, cls, resource = key
        deltas.append({
            "stage": stage, "wait_class": cls, "resource": resource,
            "base_s": b, "new_s": n, "delta_s": n - b,
        })
    deltas.sort(key=lambda d: (-abs(d["delta_s"]), d["stage"],
                               d["wait_class"], d["resource"]))
    total_abs = sum(abs(d["delta_s"]) for d in deltas)
    for d in deltas:
        d["share"] = abs(d["delta_s"]) / total_abs if total_abs else 0.0
    base_elapsed = base_p.get("elapsed_s")
    new_elapsed = new_p.get("elapsed_s")
    elapsed_delta: Optional[float] = None
    if base_elapsed is not None and new_elapsed is not None:
        elapsed_delta = new_elapsed - base_elapsed
    return {
        "schema": "glasswing-causal-diff/1",
        "base_elapsed_s": base_elapsed,
        "new_elapsed_s": new_elapsed,
        "elapsed_delta_s": elapsed_delta,
        "base_wait_s": base_p.get("wait_s"),
        "new_wait_s": new_p.get("wait_s"),
        "causes": deltas[:top_k],
        "n_causes": len(deltas),
    }


def render_diff(diff: Dict[str, Any]) -> str:
    """Human-readable root-cause table for one explain-diff result."""
    lines: List[str] = []
    base_e = diff.get("base_elapsed_s")
    new_e = diff.get("new_elapsed_s")
    delta = diff.get("elapsed_delta_s")
    if delta is not None:
        pct = (100.0 * delta / base_e) if base_e else 0.0
        lines.append(f"elapsed {base_e:.6f}s -> {new_e:.6f}s "
                     f"({delta:+.6f}s, {pct:+.2f}%)")
    else:
        lines.append("elapsed: (not recorded in one of the profiles)")
    causes = diff.get("causes", [])
    if not causes:
        lines.append("no per-stage differences found")
        return "\n".join(lines)
    header = (f"{'#':>2}  {'stage':<22} {'wait class':<14} "
              f"{'resource':<20} {'delta (s)':>12} {'share':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for rank, cause in enumerate(causes, start=1):
        lines.append(
            f"{rank:>2}  {cause['stage']:<22} {cause['wait_class']:<14} "
            f"{cause['resource']:<20} {cause['delta_s']:>+12.6f} "
            f"{100.0 * cause['share']:>6.1f}%")
    hidden = diff.get("n_causes", len(causes)) - len(causes)
    if hidden > 0:
        lines.append(f"... and {hidden} smaller cause(s)")
    return "\n".join(lines)
