"""Continuous telemetry: a metrics registry sampled in simulated time.

Post-hoc spans (:mod:`repro.simt.trace`) answer *how long did it take*;
this module answers *what was the system doing at second t* — the
time-varying queue depths, buffer occupancy and in-flight shuffle bytes
that determine which pipeline stage dominates (paper §3–4).  Three
pieces:

* a **registry** of :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  metrics.  Gauges are probe-based: instrumented components register a
  zero-argument callable that reads live state (a ``Store``'s depth, a
  ``BufferPool``'s outstanding slots), so a disabled registry costs one
  ``None`` check and an enabled one costs nothing between samples;
* a **sampler process** that snapshots every metric each
  ``interval`` of *simulated* seconds.  It only reads state — it never
  acquires resources or creates shared timeouts — so enabling sampling
  cannot change job timing or byte counters (asserted by the
  differential tests);
* **exporters**: JSONL (one sample row per line) and OpenMetrics text,
  both byte-deterministic for identical runs, plus
  :func:`validate_openmetrics`, a self-contained format checker used by
  CI and the tests.

The registry is reached through ``Timeline.telemetry`` — every
instrumented layer already carries the timeline, so no signature
changes; ``simt`` itself stays dependency-free by exposing plain
``probe()`` state dicts that this module wraps into gauges.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Telemetry",
    "DEFAULT_WAIT_BOUNDS", "ensure_parent_dir", "render_series",
    "write_metrics_jsonl", "write_openmetrics", "write_metrics",
    "openmetrics_text", "validate_openmetrics",
    "register_membership_gauges",
]

#: histogram bucket bounds for simulated-seconds wait distributions
DEFAULT_WAIT_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt_value(value: Any) -> str:
    """Shortest-round-trip number rendering (deterministic across runs)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def render_series(name: str, labels: LabelKey) -> str:
    """Canonical ``name{k="v",...}`` rendering of one series."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Metric:
    """Base: a named, labelled instrument registered once per series."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelKey, help: str = ""):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for k, _v in labels:
            if not _LABEL_NAME_RE.match(k):
                raise ValueError(f"invalid label name {k!r}")
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def series(self) -> str:
        return render_series(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.series()}>"


class Counter(Metric):
    """Monotonically increasing total (e.g. cumulative shuffle bytes)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey, help: str = ""):
        super().__init__(name, labels, help)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge(Metric):
    """Point-in-time level, either set directly or read from probes.

    A probe is a zero-argument callable returning the current value;
    multiple probes on one series sum (two sequential pipelines on the
    same node and phase contribute one combined depth).  ``capacity``
    optionally names the gauge's saturation ceiling, which the
    :class:`~repro.obs.report.PipelineReport` saturation analysis uses.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey, help: str = "",
                 capacity: Optional[float] = None):
        super().__init__(name, labels, help)
        self._value: float = 0
        self._probes: List[Callable[[], float]] = []
        self.capacity = capacity

    def set(self, value: float) -> None:
        self._value = value

    def add_probe(self, probe: Callable[[], float]) -> None:
        self._probes.append(probe)

    @property
    def value(self) -> float:
        if self._probes:
            return sum(p() for p in self._probes)
        return self._value


class Histogram(Metric):
    """Cumulative-bucket distribution of observed values."""

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey, help: str = "",
                 bounds: Sequence[float] = DEFAULT_WAIT_BOUNDS):
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[i] += 1
                return
        self._counts[-1] += 1

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` pairs ending with ``+Inf``."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            out.append((_fmt_value(bound), running))
        out.append(("+Inf", self.count))
        return out


class MetricsRegistry:
    """Holds every registered series; idempotent re-registration.

    Requesting an existing ``(name, labels)`` returns the same
    instrument (a gauge additionally absorbs the new probe), so
    components register unconditionally without coordinating.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}

    def _register(self, name: str, labels: Dict[str, Any], kind: str,
                  help: str) -> Tuple[Optional[Metric], LabelKey]:
        if self._kinds.setdefault(name, kind) != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{self._kinds[name]}, not {kind}")
        if help and not self._helps.get(name):
            self._helps[name] = help
        key = _label_key(labels)
        return self._metrics.get((name, key)), key

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        existing, key = self._register(name, labels, "counter", help)
        if existing is None:
            existing = self._metrics[(name, key)] = Counter(name, key, help)
        return existing  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              probe: Optional[Callable[[], float]] = None,
              capacity: Optional[float] = None, **labels: Any) -> Gauge:
        existing, key = self._register(name, labels, "gauge", help)
        if existing is None:
            existing = self._metrics[(name, key)] = Gauge(
                name, key, help, capacity=capacity)
        gauge: Gauge = existing  # type: ignore[assignment]
        if probe is not None:
            gauge.add_probe(probe)
        if capacity is not None and gauge.capacity is None:
            gauge.capacity = capacity
        return gauge

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence[float] = DEFAULT_WAIT_BOUNDS,
                  **labels: Any) -> Histogram:
        existing, key = self._register(name, labels, "histogram", help)
        if existing is None:
            existing = self._metrics[(name, key)] = Histogram(
                name, key, help, bounds=bounds)
        return existing  # type: ignore[return-value]

    def sorted_metrics(self) -> List[Metric]:
        """All instruments in (name, labels) order — the export order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        return self._helps.get(name, "")

    def __len__(self) -> int:
        return len(self._metrics)


class Telemetry:
    """A registry plus the simulated-time sampler process.

    The engine creates one per job when ``JobConfig.metrics_interval``
    is set, hangs it off the shared ``Timeline`` (so every instrumented
    layer can reach it without signature changes), calls :meth:`start`
    before the job and :meth:`stop` when the orchestrator finishes.
    Samples land in :attr:`samples` as plain dict rows, tick-major and
    series-sorted within a tick — already in export order.
    """

    def __init__(self, sim, interval: float):
        if interval <= 0:
            raise ValueError("metrics interval must be > 0 simulated seconds")
        self.sim = sim
        self.interval = float(interval)
        self.registry = MetricsRegistry()
        self.samples: List[Dict[str, Any]] = []
        self.ticks: List[float] = []
        self._stopped = False
        self._started = False

    # -- registration (delegates) ----------------------------------------
    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self.registry.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "",
              probe: Optional[Callable[[], float]] = None,
              capacity: Optional[float] = None, **labels: Any) -> Gauge:
        return self.registry.gauge(name, help, probe=probe,
                                   capacity=capacity, **labels)

    def histogram(self, name: str, help: str = "",
                  bounds: Sequence[float] = DEFAULT_WAIT_BOUNDS,
                  **labels: Any) -> Histogram:
        return self.registry.histogram(name, help, bounds=bounds, **labels)

    # -- sampling ---------------------------------------------------------
    def start(self) -> None:
        """Spawn the sampler process (idempotent)."""
        if not self._started:
            self._started = True
            self.sim.process(self._run(), name="telemetry.sampler")

    def resume(self) -> None:
        """Respawn the sampler after the event heap drained.

        The sampler self-terminates when nothing else is pending (see
        :meth:`_run`), which on a multi-round session happens at the end
        of every round.  The DAG runner calls this before re-running the
        simulator so later rounds keep sampling; a never-started or
        stopped hub is a no-op.
        """
        if self._started and not self._stopped:
            self.sim.process(self._run(), name="telemetry.sampler")

    def stop(self) -> None:
        """End sampling; takes one final snapshot at the current time."""
        self._stopped = True
        self.sample()

    def _run(self):
        while True:
            yield self.sim.timeout(self.interval)
            if self._stopped:
                return
            self.sample()
            # Nothing else pending: the job is either wedged or ended
            # without stop(); ticking on would keep the event loop alive
            # forever and mask the engine's deadlock detection.
            if self.sim.peek() == float("inf"):
                return

    def sample(self) -> None:
        """Snapshot every registered series at the current virtual time."""
        t = self.sim.now
        if self.ticks and t <= self.ticks[-1]:
            return
        self.ticks.append(t)
        for metric in self.registry.sorted_metrics():
            row: Dict[str, Any] = {
                "t": t,
                "metric": metric.name,
                "type": metric.kind,
                "labels": metric.label_dict,
            }
            if isinstance(metric, Histogram):
                row["count"] = metric.count
                row["sum"] = metric.sum
                row["buckets"] = {le: n
                                  for le, n in metric.cumulative_buckets()}
            else:
                row["value"] = metric.value
            self.samples.append(row)

    # -- series queries ---------------------------------------------------
    def series(self) -> Dict[Tuple[str, LabelKey], List[Tuple[float, float]]]:
        """``(name, labels) -> [(t, value), ...]`` for counters/gauges."""
        out: Dict[Tuple[str, LabelKey], List[Tuple[float, float]]] = {}
        for row in self.samples:
            if row["type"] == "histogram":
                continue
            key = (row["metric"], _label_key(row["labels"]))
            out.setdefault(key, []).append((row["t"], row["value"]))
        return out

    def final_values(self) -> Dict[str, float]:
        """Last sampled value of every counter/gauge series."""
        return {render_series(name, labels): pts[-1][1]
                for (name, labels), pts in sorted(self.series().items())}

    def rates(self) -> Dict[str, List[Tuple[float, float]]]:
        """Per-interval rates of every counter series (units/sim-second)."""
        out: Dict[str, List[Tuple[float, float]]] = {}
        for (name, labels), pts in sorted(self.series().items()):
            if self.registry.kind_of(name) != "counter":
                continue
            rows = [(t1, (v1 - v0) / (t1 - t0))
                    for (t0, v0), (t1, v1) in zip(pts, pts[1:]) if t1 > t0]
            out[render_series(name, labels)] = rows
        return out


# -- membership gauges -----------------------------------------------------

def register_membership_gauges(tele: Telemetry, health,
                               coordinator=None, **labels: Any) -> None:
    """Register the elastic-membership gauge family for one job.

    ``health`` is the job's :class:`~repro.core.faults.ClusterHealth`;
    ``coordinator`` its :class:`~repro.core.membership.CoordinatorGroup`
    when control-plane replication is on.  These are the saturation-side
    counterpart of the per-node CPU gauges: an auto-scaler reads CPU
    busy fractions to *decide* and these gauges to *see what it did*.
    """
    tele.gauge("glasswing_membership_active_nodes",
               help="nodes currently active in the job",
               probe=lambda: float(len(health.alive_nodes)),
               capacity=float(health.n_nodes), **labels)
    tele.gauge("glasswing_membership_standby_nodes",
               help="hardware nodes not (yet) part of the job",
               probe=lambda: float(len(health.inactive)), **labels)
    tele.gauge("glasswing_membership_departed_nodes",
               help="nodes drained out of the job",
               probe=lambda: float(len(health.departed_at)), **labels)
    tele.gauge("glasswing_membership_dead_nodes",
               help="nodes lost to crashes",
               probe=lambda: float(len(health.dead_at)), **labels)
    if coordinator is not None:
        tele.gauge("glasswing_coordinator_alive_replicas",
                   help="surviving control-plane replicas",
                   probe=lambda: float(len(coordinator.alive_replicas())),
                   capacity=float(len(coordinator.replicas)), **labels)
        tele.gauge("glasswing_coordinator_epoch",
                   help="leadership epoch (bumps on every failover)",
                   probe=lambda: float(coordinator.epoch), **labels)


# -- export ---------------------------------------------------------------

def ensure_parent_dir(path: str) -> str:
    """Create ``path``'s parent directories if missing; returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    return path


def write_metrics_jsonl(telemetry: Telemetry, path: str) -> str:
    """One JSON object per sample row, keys sorted — diff-stable."""
    ensure_parent_dir(path)
    with open(path, "w", encoding="utf-8") as fh:
        for row in telemetry.samples:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def openmetrics_text(telemetry: Telemetry) -> str:
    """The sampled series as OpenMetrics exposition text.

    Families appear in sorted name order, each with its ``# TYPE`` and
    ``# HELP`` line followed by every sample of the family in time
    order (timestamps are simulated seconds); counters expose the
    mandatory ``_total`` suffix and histograms their cumulative
    ``_bucket``/``_count``/``_sum`` triplet.  Ends with ``# EOF``.
    """
    registry = telemetry.registry
    by_family: Dict[str, List[Dict[str, Any]]] = {}
    for row in telemetry.samples:
        by_family.setdefault(row["metric"], []).append(row)
    lines: List[str] = []
    for family in sorted(by_family):
        kind = registry.kind_of(family) or "gauge"
        lines.append(f"# TYPE {family} {kind}")
        help_text = registry.help_of(family)
        if help_text:
            lines.append(f"# HELP {family} {help_text}")
        for row in by_family[family]:
            labels = _label_key(row["labels"])
            ts = _fmt_value(row["t"])
            if kind == "histogram":
                for le, n in sorted(row["buckets"].items(),
                                    key=lambda kv: float(kv[0].replace(
                                        "+Inf", "inf"))):
                    bucket_labels = _label_key(
                        dict(row["labels"], le=le))
                    lines.append(
                        f"{render_series(family + '_bucket', bucket_labels)}"
                        f" {n} {ts}")
                lines.append(f"{render_series(family + '_count', labels)}"
                             f" {row['count']} {ts}")
                lines.append(f"{render_series(family + '_sum', labels)}"
                             f" {_fmt_value(row['sum'])} {ts}")
            else:
                suffix = "_total" if kind == "counter" else ""
                lines.append(f"{render_series(family + suffix, labels)}"
                             f" {_fmt_value(row['value'])} {ts}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(telemetry: Telemetry, path: str) -> str:
    ensure_parent_dir(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(openmetrics_text(telemetry))
    return path


_OPENMETRICS_SUFFIXES = (".om", ".prom", ".txt", ".openmetrics")


def write_metrics(telemetry: Telemetry, path: str) -> str:
    """Write ``path`` in the format its extension implies.

    ``.om`` / ``.prom`` / ``.txt`` / ``.openmetrics`` select OpenMetrics
    text; anything else (canonically ``.jsonl``) selects JSONL.
    """
    if path.endswith(_OPENMETRICS_SUFFIXES):
        return write_openmetrics(telemetry, path)
    return write_metrics_jsonl(telemetry, path)


# -- validation -----------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<ts>[^ ]+))?$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_number(token: str, where: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    try:
        return float(token)
    except ValueError:
        raise ValueError(f"{where}: bad number {token!r}")


def validate_openmetrics(text: str) -> int:
    """Self-contained OpenMetrics format check; returns the sample count.

    Raises :class:`ValueError` on the violations that matter for our
    exports: missing/misplaced ``# EOF``, samples before their family's
    ``# TYPE``, interleaved families, counters without the ``_total``
    suffix or decreasing in time, malformed label sets, and histogram
    bucket sets that are non-cumulative, have duplicate or out-of-order
    ``le`` bounds, or lack the terminal ``+Inf`` bucket.  Histogram
    sample sets must also be complete and self-consistent: every
    timestamped bucket set needs its ``_count`` and ``_sum`` samples,
    ``+Inf`` must equal ``_count``, and both ``_count`` and ``_sum``
    are cumulative — they may never decrease between timestamps.
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    kinds: Dict[str, str] = {}
    closed: set = set()
    current: Optional[str] = None
    counter_last: Dict[str, float] = {}
    n_samples = 0
    hist_buckets: Dict[Tuple[str, LabelKey, str], List[Tuple[float, float]]]
    hist_buckets = {}
    hist_counts: Dict[Tuple[str, LabelKey, str], float] = {}
    hist_sums: Dict[Tuple[str, LabelKey, str], float] = {}
    # (family, labels, _count|_sum) -> last seen value; samples within a
    # family arrive in time order, so cumulative fields must not dip
    hist_last: Dict[Tuple[str, LabelKey, str], float] = {}

    def family_of(name: str) -> str:
        for suffix in ("_bucket", "_count", "_sum", "_total"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and kinds.get(base) in ("histogram", "counter"):
                return base
        return name

    for i, line in enumerate(lines[:-1], 1):
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {i}: malformed TYPE line")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "info", "stateset", "unknown"):
                raise ValueError(f"line {i}: unknown metric type {kind!r}")
            if name in kinds:
                raise ValueError(f"line {i}: duplicate TYPE for {name!r}")
            if current is not None:
                closed.add(current)
            if name in closed:
                raise ValueError(f"line {i}: family {name!r} interleaved")
            kinds[name] = kind
            current = name
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            if name != current:
                raise ValueError(f"line {i}: HELP outside family block")
            continue
        if line.startswith("#"):
            raise ValueError(f"line {i}: unexpected comment {line!r}")
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {i}: malformed sample {line!r}")
        name = m.group("name")
        family = family_of(name)
        if family not in kinds:
            raise ValueError(f"line {i}: sample before TYPE for {name!r}")
        if family != current:
            raise ValueError(f"line {i}: family {family!r} interleaved")
        kind = kinds[family]
        raw_labels = m.group("labels") or ""
        pairs = _LABEL_PAIR_RE.findall(raw_labels)
        rebuilt = ",".join(f'{k}="{v}"' for k, v in pairs)
        if rebuilt != raw_labels:
            raise ValueError(f"line {i}: malformed labels {raw_labels!r}")
        labels = _label_key(dict(pairs))
        value = _parse_number(m.group("value"), f"line {i}")
        ts = m.group("ts")
        ts_val = _parse_number(ts, f"line {i}") if ts is not None else None
        if kind == "counter":
            if not name.endswith("_total"):
                raise ValueError(
                    f"line {i}: counter sample {name!r} lacks _total")
            series = render_series(name, labels)
            if value < counter_last.get(series, 0.0):
                raise ValueError(f"line {i}: counter {series} decreased")
            counter_last[series] = value
        elif kind == "histogram":
            if not name.endswith(("_bucket", "_count", "_sum")):
                raise ValueError(
                    f"line {i}: histogram sample {name!r} has no "
                    "bucket/count/sum suffix")
            base_labels = tuple((k, v) for k, v in labels if k != "le")
            key = (family, base_labels, ts or "")
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    raise ValueError(f"line {i}: bucket without le label")
                hist_buckets.setdefault(key, []).append(
                    (_parse_number(le, f"line {i}"), value))
            else:
                suffix = "_count" if name.endswith("_count") else "_sum"
                if suffix == "_count":
                    hist_counts[key] = value
                else:
                    hist_sums[key] = value
                if value != value:
                    raise ValueError(
                        f"line {i}: NaN histogram {suffix} value")
                series_key = (family, base_labels, suffix)
                if value < hist_last.get(series_key, float("-inf")):
                    raise ValueError(
                        f"line {i}: histogram "
                        f"{render_series(family, base_labels)}{suffix} "
                        f"decreased")
                hist_last[series_key] = value
        n_samples += 1
        if ts_val is not None and ts_val != ts_val:
            raise ValueError(f"line {i}: NaN timestamp")
    for key, buckets in hist_buckets.items():
        family = key[0]
        les = [le for le, _ in buckets]
        if any(b <= a for a, b in zip(les, les[1:])):
            raise ValueError(
                f"{family}: bucket le values not strictly increasing")
        if not les or not math.isinf(les[-1]):
            raise ValueError(f"{family}: missing +Inf bucket")
        counts = [n for _, n in buckets]
        if counts != sorted(counts):
            raise ValueError(f"{family}: bucket counts not cumulative")
        if key not in hist_counts:
            raise ValueError(f"{family}: bucket set without a _count "
                             "sample")
        if key not in hist_sums:
            raise ValueError(f"{family}: bucket set without a _sum sample")
        if counts[-1] != hist_counts[key]:
            raise ValueError(f"{family}: +Inf bucket != _count")
    return n_samples
