"""Record formats, key/value size schemas and the compression model.

Engines move *real* Python objects through the pipeline; timing needs the
*byte size* those objects would occupy serialized.  A :class:`KVSchema`
provides analytic per-pair sizes (plus a real round-trippable binary codec
used by tests to validate the estimates), and a :class:`CompressionModel`
turns raw bytes into stored bytes plus host-CPU cost, as Glasswing keeps
all intermediate partitions "in a serialized and compressed form".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "TextRecordFormat",
    "FixedRecordFormat",
    "KVSchema",
    "CompressionModel",
    "encode_pairs",
    "decode_pairs",
]

_PAIR_OVERHEAD = 8  # two 32-bit length prefixes per serialized pair


# ----------------------------------------------------------- record formats
class TextRecordFormat:
    """Newline-delimited text records (web logs, wiki dumps)."""

    name = "text"

    def split_records(self, data: bytes) -> List[bytes]:
        """Split a chunk into complete-line records (drops trailing blank)."""
        if not data:
            return []
        records = data.split(b"\n")
        if records and records[-1] == b"":
            records.pop()
        return records

    def record_bytes(self, record: bytes) -> int:
        return len(record) + 1  # + newline


class FixedRecordFormat:
    """Fixed-size binary records (TeraSort's 100-byte key/value records)."""

    name = "fixed"

    def __init__(self, record_size: int):
        if record_size < 1:
            raise ValueError("record_size must be positive")
        self.record_size = record_size

    def split_records(self, data: bytes) -> List[bytes]:
        """Split into whole records; a ragged tail is an error upstream."""
        n = self.record_size
        if len(data) % n:
            raise ValueError(
                f"chunk of {len(data)} bytes is not a multiple of {n}")
        return [data[i:i + n] for i in range(0, len(data), n)]

    def record_bytes(self, record: bytes) -> int:
        return self.record_size


# ------------------------------------------------------------- KV schemas
@dataclass(frozen=True)
class KVSchema:
    """Analytic serialized sizes for an application's key/value types."""

    name: str
    key_bytes: Callable[[Any], int]
    value_bytes: Callable[[Any], int]

    def pair_bytes(self, key: Any, value: Any) -> int:
        """Serialized size of one pair, including framing overhead."""
        return self.key_bytes(key) + self.value_bytes(value) + _PAIR_OVERHEAD

    def size_of(self, pairs: Iterable[Tuple[Any, Any]]) -> int:
        """Total serialized size of a pair collection."""
        kb, vb = self.key_bytes, self.value_bytes
        if hasattr(pairs, "__len__"):
            return (sum(kb(k) + vb(v) for k, v in pairs)
                    + _PAIR_OVERHEAD * len(pairs))
        return sum(kb(k) + vb(v) + _PAIR_OVERHEAD for k, v in pairs)


# ------------------------------------------------------- binary pair codec
def _to_bytes(obj: Any) -> bytes:
    """Canonical binary form of the key/value types the apps use."""
    if isinstance(obj, bytes):
        return b"b" + obj
    if isinstance(obj, str):
        return b"s" + obj.encode("utf-8")
    if isinstance(obj, bool):
        return b"B" + (b"\x01" if obj else b"\x00")
    if isinstance(obj, int):
        return b"i" + struct.pack("<q", obj)
    if isinstance(obj, float):
        return b"f" + struct.pack("<d", obj)
    if isinstance(obj, tuple):
        parts = [_to_bytes(el) for el in obj]
        header = struct.pack("<I", len(parts))
        return b"t" + header + b"".join(
            struct.pack("<I", len(p)) + p for p in parts)
    raise TypeError(f"unsupported type for codec: {type(obj).__name__}")


def _from_bytes(blob: bytes) -> Any:
    tag, body = blob[:1], blob[1:]
    if tag == b"b":
        return body
    if tag == b"s":
        return body.decode("utf-8")
    if tag == b"B":
        return body == b"\x01"
    if tag == b"i":
        return struct.unpack("<q", body)[0]
    if tag == b"f":
        return struct.unpack("<d", body)[0]
    if tag == b"t":
        count = struct.unpack("<I", body[:4])[0]
        parts = []
        off = 4
        for _ in range(count):
            ln = struct.unpack("<I", body[off:off + 4])[0]
            off += 4
            parts.append(_from_bytes(body[off:off + ln]))
            off += ln
        return tuple(parts)
    raise ValueError(f"bad codec tag {tag!r}")


def encode_pairs(pairs: Sequence[Tuple[Any, Any]]) -> bytes:
    """Serialize pairs to a real binary blob (round-trippable)."""
    out = bytearray()
    for key, value in pairs:
        kb, vb = _to_bytes(key), _to_bytes(value)
        out += struct.pack("<II", len(kb), len(vb))
        out += kb
        out += vb
    return bytes(out)


def decode_pairs(blob: bytes) -> Iterator[Tuple[Any, Any]]:
    """Inverse of :func:`encode_pairs`."""
    off = 0
    n = len(blob)
    while off < n:
        klen, vlen = struct.unpack("<II", blob[off:off + 8])
        off += 8
        key = _from_bytes(blob[off:off + klen])
        off += klen
        value = _from_bytes(blob[off:off + vlen])
        off += vlen
        yield key, value


# --------------------------------------------------------------- compression
@dataclass(frozen=True)
class CompressionModel:
    """Cost/effect of the intermediate-data compressor.

    ``ratio`` is output/input size; throughputs are per host thread.
    A ratio of 1.0 with infinite rates models "no compression".
    """

    ratio: float = 0.45                # typical LZ-class on text kv data
    compress_bw: float = 250e6         # bytes/s per thread
    decompress_bw: float = 500e6

    def __post_init__(self) -> None:
        if not (0 < self.ratio <= 1.0):
            raise ValueError("ratio must be in (0, 1]")
        if min(self.compress_bw, self.decompress_bw) <= 0:
            raise ValueError("compression rates must be positive")

    def compressed_size(self, raw_bytes: int) -> int:
        return int(raw_bytes * self.ratio)

    def compress_seconds(self, raw_bytes: int) -> float:
        """Single-thread CPU seconds to compress ``raw_bytes``."""
        return raw_bytes / self.compress_bw

    def decompress_seconds(self, raw_bytes: int) -> float:
        """Single-thread CPU seconds to reinflate to ``raw_bytes``."""
        return raw_bytes / self.decompress_bw


NO_COMPRESSION = CompressionModel(ratio=1.0, compress_bw=1e18,
                                  decompress_bw=1e18)

__all__.append("NO_COMPRESSION")
