"""Block-based distributed file system (HDFS-like) with a JNI cost model.

Files are split into blocks, replicated across nodes (default factor 3, as
the paper uses), and served with locality: readers prefer a local replica.
Block locations are queryable so the job coordinator can schedule for file
affinity, like Glasswing's scheduler and Hadoop's data-locality placement.

Accessing the DFS through ``libhdfs`` costs extra host CPU per call and
per byte (Java/native switches and JNI copies) — the overhead the paper
identifies as the reason MatMul turns I/O-bound on HDFS (Fig 3d).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import MiB
from repro.storage.localfs import FileNotFound, LocalFS

__all__ = ["DFS", "BlockLocation", "JNIOverhead"]


@dataclass(frozen=True)
class JNIOverhead:
    """libhdfs access cost: fixed host-CPU time per call + copy bandwidth."""

    per_call: float = 60e-6     # Java/native switch + bookkeeping, seconds
    copy_bw: float = 600e6      # JNI byte-array copy throughput, bytes/s

    def seconds_for(self, nbytes: int) -> float:
        return self.per_call + nbytes / self.copy_bw


@dataclass(frozen=True)
class BlockLocation:
    """One block's extent within its file and the nodes holding replicas."""

    offset: int
    length: int
    replicas: Tuple[int, ...]


@dataclass
class _Block:
    block_id: int
    length: int
    replicas: Tuple[int, ...]

    @property
    def local_path(self) -> str:
        return f".dfs/blk_{self.block_id}"


class DFS:
    """The distributed file system deployed over a cluster.

    Parameters
    ----------
    cluster:
        Runtime cluster; one :class:`LocalFS` per node backs the blocks.
    block_size:
        Block granularity (the paper uses HDFS defaults; tests scale it
        down alongside the data).
    replication:
        Default replica count for new files (clamped to the node count).
    jni:
        Access overhead model; pass ``None`` for native access (used when
        modelling Glasswing's direct local-FS mode for comparison).
    placement_nodes:
        When set, new blocks are placed only on these nodes (an elastic
        job's initially-active subset) — standby hardware joining later
        must never be a replica holder the baseline run depended on.
        ``None`` places over the whole cluster, the classic behavior.
    """

    def __init__(self, cluster: Cluster, block_size: int = 8 * MiB,
                 replication: int = 3, jni: Optional[JNIOverhead] = JNIOverhead(),
                 placement_nodes: Optional[List[int]] = None):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.cluster = cluster
        self.block_size = block_size
        self.replication = replication
        self.jni = jni
        if placement_nodes is not None:
            placement_nodes = sorted(set(placement_nodes))
            if not placement_nodes or any(
                    not (0 <= n < len(cluster)) for n in placement_nodes):
                raise ValueError(
                    f"placement nodes {placement_nodes} outside the cluster")
        self.placement_nodes = placement_nodes
        self.node_fs: List[LocalFS] = [LocalFS(node) for node in cluster]
        self._meta: Dict[str, List[_Block]] = {}
        self._block_ids = itertools.count()
        #: optional ClusterHealth view; when set, reads are served only
        #: from replicas on live nodes (a crashed node's disk is gone)
        self.health = None
        #: optional :class:`~repro.net.transport.TrafficMeter`; when this
        #: DFS belongs to one tenant of a shared cluster, its block
        #: traffic is attributed to that tenant
        self.meter = None

    def _replica_alive(self, node: int) -> bool:
        """Can this replica still serve reads?  A *departed* (drained)
        node can — decommissioned disks stay readable until the job ends
        — so prefer the health view's ``storage_alive`` when it has one;
        a crashed node's disk is gone either way."""
        if self.health is None:
            return True
        can_serve = getattr(self.health, "storage_alive", None)
        if can_serve is not None:
            return can_serve(node)
        return self.health.alive(node)

    # -- namespace -----------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._meta

    def size(self, path: str) -> int:
        self._require(path)
        return sum(b.length for b in self._meta[path])

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._meta if p.startswith(prefix))

    def delete(self, path: str) -> None:
        self._require(path)
        for block in self._meta.pop(path):
            for replica in block.replicas:
                if self.node_fs[replica].exists(block.local_path):
                    self.node_fs[replica].delete(block.local_path)

    def block_locations(self, path: str) -> List[BlockLocation]:
        """Block extents + replica holders, for affinity scheduling."""
        self._require(path)
        locations = []
        offset = 0
        for block in self._meta[path]:
            locations.append(BlockLocation(offset, block.length, block.replicas))
            offset += block.length
        return locations

    def purge_caches(self) -> None:
        """Purge the page cache on every node (paper's pre-test ritual)."""
        for fs in self.node_fs:
            fs.purge_cache()

    # -- write path ----------------------------------------------------------
    def create(self, path: str, data: bytes, writer: int,
               replication: Optional[int] = None) -> Generator:
        """Write ``data`` as a new file from node ``writer``.

        Replicas are written through a pipeline per block: the writer's
        local disk plus network pushes to the remaining replica nodes, all
        overlapping (as HDFS's chained block pipeline does).
        """
        if self.exists(path):
            raise FileExistsError(path)
        self._check_node(writer)
        pool = self.placement_nodes if self.placement_nodes is not None \
            else list(range(len(self.cluster)))
        rep = min(replication or self.replication, len(pool))
        blocks: List[_Block] = []
        sim = self.cluster.sim
        for start in range(0, max(len(data), 1), self.block_size):
            chunk = data[start:start + self.block_size]
            block = _Block(next(self._block_ids), len(chunk),
                           self._place_replicas(writer, rep, len(blocks)))
            blocks.append(block)
            yield from self._jni_charge(writer, len(chunk))
            writes = []
            for replica in block.replicas:
                writes.append(sim.process(
                    self._write_replica(writer, replica, block, chunk),
                    name=f"dfs-write-{block.block_id}-{replica}"))
            yield sim.all_of(writes)
        self._meta[path] = blocks

    def _write_replica(self, writer: int, replica: int, block: _Block,
                       chunk: bytes) -> Generator:
        if replica != writer:
            yield from self.cluster.network.send(writer, replica, len(chunk),
                                                 meter=self.meter)
        yield from self.node_fs[replica].write(block.local_path, chunk)

    # -- read path -----------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: int = -1,
             reader: int = 0) -> Generator:
        """Read a byte range from node ``reader``; returns the bytes.

        Each covered block is served from a local replica when available,
        otherwise streamed from the closest (first) remote replica.
        """
        self._require(path)
        self._check_node(reader)
        total = self.size(path)
        if length < 0:
            length = total - offset
        end = min(offset + length, total)
        out = bytearray()
        block_start = 0
        for block in self._meta[path]:
            block_end = block_start + block.length
            if block_end > offset and block_start < end:
                lo = max(offset, block_start) - block_start
                hi = min(end, block_end) - block_start
                piece = yield from self._read_block(block, lo, hi - lo,
                                                    reader, stream=path)
                out += piece
            block_start = block_end
            if block_start >= end:
                break
        return bytes(out)

    def _read_block(self, block: _Block, offset: int, length: int,
                    reader: int, stream: str = "") -> Generator:
        live = [r for r in block.replicas if self._replica_alive(r)]
        if not live:
            raise FileNotFound(
                f"{block.local_path}: every replica holder "
                f"{block.replicas} is dead")
        if reader in live:
            source = reader
        else:
            # Spread remote load over the replica holders instead of
            # hammering the first one.
            source = live[(reader + block.block_id) % len(live)]
        # Consecutive blocks of one file stream off the replica's disk.
        data = yield from self.node_fs[source].read(
            block.local_path, offset, length,
            stream=f"{stream}@r{reader}" if stream else "")
        if source != reader:
            yield from self.cluster.network.send(source, reader, length,
                                                 meter=self.meter)
        yield from self._jni_charge(reader, length)
        return data

    # -- internals --------------------------------------------------------------
    def _jni_charge(self, node_id: int, nbytes: int) -> Generator:
        """Host-CPU cost of crossing the libhdfs JNI boundary."""
        if self.jni is None:
            return
        yield self.cluster[node_id].host_work(
            1, self.jni.seconds_for(nbytes), tag="jni")

    def _place_replicas(self, writer: int, rep: int, block_index: int
                        ) -> Tuple[int, ...]:
        """First replica local to the writer, the rest spread round-robin
        over the placement pool (the whole cluster unless restricted)."""
        if self.placement_nodes is None:
            n = len(self.cluster)
            replicas = [writer]
            candidate = (writer + 1 + block_index) % n
            while len(replicas) < rep:
                if candidate not in replicas:
                    replicas.append(candidate)
                candidate = (candidate + 1) % n
            return tuple(replicas)
        pool = self.placement_nodes
        if writer in pool:
            replicas = [writer]
            pos = pool.index(writer)
        else:
            # A writer outside the pool (e.g. a joined node writing job
            # output) anchors at its nearest pool position instead.
            pos = writer % len(pool)
            replicas = [pool[pos]]
        candidate = (pos + 1 + block_index) % len(pool)
        while len(replicas) < rep:
            if pool[candidate] not in replicas:
                replicas.append(pool[candidate])
            candidate = (candidate + 1) % len(pool)
        return tuple(replicas)

    def _check_node(self, node_id: int) -> None:
        if not (0 <= node_id < len(self.cluster)):
            raise ValueError(f"unknown node {node_id}")

    def _require(self, path: str) -> None:
        if path not in self._meta:
            raise FileNotFound(path)
