"""Storage substrates: record codecs, node-local FS, distributed FS.

The paper evaluates Glasswing both on node-local file systems and on HDFS
(accessed through libhdfs/JNI, deployed over IP-over-InfiniBand).  This
package provides both:

* :mod:`repro.storage.records` — record formats (text lines, fixed-size
  TeraSort records), key/value size schemas and the compression model used
  for intermediate data.
* :mod:`repro.storage.localfs` — per-node file system with an OS
  page-cache model (purgeable, as the paper purges caches between runs).
* :mod:`repro.storage.dfs` — block-based distributed FS with replication,
  block-location queries (for affinity scheduling) and a JNI access
  overhead model reproducing HDFS's Java/native switch costs.
"""

from repro.storage.localfs import LocalFS
from repro.storage.dfs import DFS, BlockLocation, JNIOverhead
from repro.storage.records import (
    CompressionModel,
    FixedRecordFormat,
    KVSchema,
    TextRecordFormat,
)

__all__ = [
    "DFS",
    "BlockLocation",
    "CompressionModel",
    "FixedRecordFormat",
    "JNIOverhead",
    "KVSchema",
    "LocalFS",
    "TextRecordFormat",
]
