"""Per-node local file system with an OS page-cache model.

Files hold real bytes.  Reads and writes charge the node's disk; ranges
already resident in the page cache are served at memory speed.  The cache
is LRU over whole files (adequate for the streaming access patterns of
MapReduce) and can be purged — the paper purges the filesystem cache
before every test "to guarantee test consistency".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, List

from repro.hw.node import Node

__all__ = ["LocalFS", "FileNotFound"]


class FileNotFound(KeyError):
    """Raised for operations on paths that do not exist."""

    def __init__(self, path: str):
        super().__init__(path)
        self.path = path


class LocalFS:
    """A node's local volume.

    ``cache_fraction`` of the node's RAM serves as page cache.  Writes are
    write-through (the paper needs map output *durably* on disk) but leave
    the written file cached.
    """

    def __init__(self, node: Node, cache_fraction: float = 0.5):
        if not (0 <= cache_fraction <= 1):
            raise ValueError("cache_fraction must be within [0, 1]")
        self.node = node
        self._files: Dict[str, bytes] = {}
        self._cache: "OrderedDict[str, int]" = OrderedDict()  # path -> bytes
        self.cache_capacity = int(node.spec.ram * cache_fraction)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- namespace ---------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        self._require(path)
        return len(self._files[path])

    def listdir(self, prefix: str = "") -> List[str]:
        """All paths starting with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str) -> None:
        self._require(path)
        del self._files[path]
        self._cache.pop(path, None)

    def used_bytes(self) -> int:
        return sum(len(d) for d in self._files.values())

    # -- data path (process-style generators) --------------------------------
    def write(self, path: str, data: bytes, append: bool = False,
              stream: str = "") -> Generator:
        """Write (or append) ``data``; charges disk write time.

        ``stream`` overrides the disk-stream identity (consecutive writes
        of the same stream skip the positioning cost); defaults to the
        path itself.
        """
        if append and path in self._files:
            self._files[path] = self._files[path] + data
        else:
            self._files[path] = bytes(data)
        yield from self.node.disk.write(len(data), stream=stream or path)
        self._cache_insert(path, len(self._files[path]))

    def read(self, path: str, offset: int = 0, length: int = -1,
             stream: str = "") -> Generator:
        """Read a range; returns the bytes. Cached files skip the disk.

        ``stream`` as in :meth:`write` — a DFS reading consecutive blocks
        of one file passes the file-level identity so the blocks stream.
        """
        self._require(path)
        data = self._files[path]
        if length < 0:
            length = len(data) - offset
        chunk = data[offset:offset + length]
        if self._cache_lookup(path):
            self.cache_hits += 1
        else:
            self.cache_misses += 1
            yield from self.node.disk.read(len(chunk), stream=stream or path)
            # Whole-file cache granularity: only a read that reached the
            # end of the file leaves it resident (a small peek must not
            # make the rest of the file free).
            if offset + length >= len(data):
                self._cache_insert(path, len(data))
        return chunk

    def purge_cache(self) -> None:
        """Drop the page cache (as done before each paper experiment)."""
        self._cache.clear()

    # -- cache internals -------------------------------------------------------
    def _cache_lookup(self, path: str) -> bool:
        if path in self._cache:
            self._cache.move_to_end(path)
            return True
        return False

    def _cache_insert(self, path: str, nbytes: int) -> None:
        if nbytes > self.cache_capacity:
            return
        self._cache[path] = nbytes
        self._cache.move_to_end(path)
        while sum(self._cache.values()) > self.cache_capacity:
            self._cache.popitem(last=False)

    def _require(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFound(path)
