"""Cache-aside read caching over a :class:`~repro.core.io.StorageBackend`.

The DAG engine (:mod:`repro.dag`) runs many MapReduce rounds on one
long-lived cluster session, and iterative workloads (K-Means, PageRank)
re-read the *same immutable input* every round.  A fresh job pays the
full storage path per read — disk (or remote-replica network transfer)
plus, on DFS, the libhdfs JNI boundary.  This module implements the
cache-aside pattern over the storage layer: the first read of a declared
immutable range goes through the backend as usual and the returned bytes
are kept in an application-level RAM cache; subsequent reads of the same
range *by the same node* are served from that cache at zero simulated
cost (an in-process memory lookup crosses no disk, network or JNI
boundary).

Cost accounting stays byte-accurate:

* only **pinned** paths (declared immutable by the DAG) are ever cached —
  reads of mutable paths always reach the backend;
* the cache key includes the reading node, so a node never skips the
  remote-transfer cost of a range it has not itself paid for;
* hit/miss byte counters record exactly what was served from where, and
  :meth:`CacheAsideBackend.stats` exposes them for reports and benches.

Invalidation rules (see ``docs/dag.md``): re-installing a path with
different content drops its cached ranges, as does :meth:`invalidate`;
an LRU bound (``capacity_bytes``) evicts the coldest ranges first.
Elastic membership adds one more (see ``docs/elasticity.md``):
:meth:`CacheAsideBackend.mark_departed` evicts every range a departing
node held — pinned or not — because the entries model RAM on hardware
that just left the pool; keeping them would both leak accounting bytes
and hand a re-joining node a free (never re-paid-for) read.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.storage.dfs import BlockLocation

from repro.core.io import StorageBackend

__all__ = ["CacheAsideBackend"]

#: cache key: (reading node, path, offset, length)
_Key = Tuple[int, str, int, int]


class CacheAsideBackend(StorageBackend):
    """Cache-aside wrapper: immutable split reads are served from RAM.

    ``base`` is the real backend (DFS or node-local); ``capacity_bytes``
    bounds the cache (LRU eviction), ``None`` leaves it unbounded —
    adequate for the laptop-scale inputs this repository simulates, and
    the knob is there when a workload needs a budget.
    """

    def __init__(self, base: StorageBackend,
                 capacity_bytes: Optional[int] = None,
                 sim: Optional[Any] = None,
                 timeline: Optional[Any] = None):
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive (or None)")
        self.base = base
        self.capacity_bytes = capacity_bytes
        # Optional simulation context for causal profiling: with both
        # set, a miss on a *pinned* path records a ``cache.read`` span
        # and a ``cache-miss`` wait edge covering the backend time the
        # hit path would have skipped.
        self.sim = sim
        self.timeline = timeline
        self._read_seq = 0
        self._pinned: Set[str] = set()
        self._entries: "OrderedDict[_Key, bytes]" = OrderedDict()
        self._cached_bytes = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0
        self._departed: Set[int] = set()
        self.departure_evictions = 0
        self.departure_eviction_bytes = 0

    # -- immutability declarations -----------------------------------------
    def pin(self, path: str) -> None:
        """Declare ``path`` immutable: its reads may be cached."""
        self._pinned.add(path)

    def pinned(self, path: str) -> bool:
        return path in self._pinned

    def invalidate(self, path: str) -> None:
        """Drop every cached range of ``path`` (content changed)."""
        stale = [key for key in self._entries if key[1] == path]
        for key in stale:
            self._cached_bytes -= len(self._entries.pop(key))

    # -- elastic membership --------------------------------------------------
    def mark_departed(self, node_id: int) -> None:
        """``node_id`` left the pool: evict every range it held, pinned
        entries included — its RAM is gone — and refuse to cache for it
        until it re-joins (:meth:`mark_rejoined`)."""
        self._departed.add(node_id)
        self._evict_departed(node_id)

    def mark_rejoined(self, node_id: int) -> None:
        """A previously departed node is back; it re-pays for its reads
        (nothing was retained) but may cache again."""
        self._departed.discard(node_id)

    def _evict_departed(self, node_id: int) -> None:
        stale = [key for key in self._entries if key[0] == node_id]
        for key in stale:
            data = self._entries.pop(key)
            self._cached_bytes -= len(data)
            self.departure_evictions += 1
            self.departure_eviction_bytes += len(data)

    # -- the cached read path ----------------------------------------------
    def read(self, node_id: int, path: str, offset: int,
             length: int) -> Generator:
        """Serve a pinned, previously read range from RAM; else delegate.

        A hit returns the bytes with **zero simulated time**: the data is
        already in the reading node's memory, so no disk, network or JNI
        cost applies.  A miss pays the full backend path and (for pinned
        paths) populates the cache.
        """
        key = (node_id, path, offset, length)
        pinned = path in self._pinned
        if pinned:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self.hit_bytes += len(cached)
                return cached
        t_miss = self.sim.now if self.sim is not None else None
        data = yield from self.base.read(node_id, path, offset, length)
        self.misses += 1
        self.miss_bytes += len(data)
        if (pinned and t_miss is not None and self.timeline is not None
                and self.sim.now > t_miss):
            # Zero-length span at completion + a cache-miss edge over the
            # backend read: the whole elapsed time is attributable wait
            # (a hit would have been free).
            self._read_seq += 1
            name = f"node{node_id}"
            self.timeline.record("cache.read", name, self.sim.now,
                                 self.sim.now, t_req=t_miss, path=path,
                                 bytes=len(data), op=self._read_seq)
            self.timeline.record_wait("cache-miss", path, "cache.read",
                                      name, t_miss, self.sim.now,
                                      op=self._read_seq)
        if pinned and node_id not in self._departed:
            self._insert(key, data)
        return data

    def _insert(self, key: _Key, data: bytes) -> None:
        if self.capacity_bytes is not None and len(data) > self.capacity_bytes:
            return    # a range larger than the whole budget never caches
        self._entries[key] = data
        self._cached_bytes += len(data)
        if self.capacity_bytes is None:
            return
        while self._cached_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._cached_bytes -= len(evicted)
            self.evictions += 1

    # -- accounting ---------------------------------------------------------
    @property
    def cached_bytes(self) -> int:
        """Bytes currently resident in the cache."""
        return self._cached_bytes

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly counters for reports and benches."""
        total = self.hit_bytes + self.miss_bytes
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "hit_rate_bytes": (self.hit_bytes / total) if total else 0.0,
            "cached_bytes": self._cached_bytes,
            "evictions": self.evictions,
            "departure_evictions": self.departure_evictions,
            "departure_eviction_bytes": self.departure_eviction_bytes,
            "departed_nodes": sorted(self._departed),
            "pinned_paths": sorted(self._pinned),
        }

    def audit(self) -> Dict[str, Any]:
        """Exact byte accounting + membership hygiene (chaos-suite hook):
        the accounted total must equal the sum of resident entries and no
        entry may belong to a departed node."""
        actual = sum(len(data) for data in self._entries.values())
        stale = sorted(key for key in self._entries
                       if key[0] in self._departed)
        return {
            "accounted_bytes": self._cached_bytes,
            "actual_bytes": actual,
            "consistent": actual == self._cached_bytes and not stale,
            "departed_keys": stale,
        }

    # -- delegation ---------------------------------------------------------
    def write_chunk(self, node_id: int, nbytes: int,
                    replication: int) -> Generator:
        """Output writes are never cached; delegate at full cost."""
        yield from self.base.write_chunk(node_id, nbytes, replication)

    def size(self, path: str) -> int:
        return self.base.size(path)

    def locations(self, path: str) -> Optional[List[BlockLocation]]:
        return self.base.locations(path)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def install(self, path: str, data: bytes) -> None:
        """Install through the base backend, dropping stale cached ranges."""
        self.base.install(path, data)
        self.invalidate(path)

    def remove(self, path: str) -> None:
        self.base.remove(path)
        self.invalidate(path)

    def purge_caches(self) -> None:
        """Purge the *page* caches, plus any entry held for a departed
        node: pinned entries survive the purge only while their holder is
        in the pool.  (Previously stale ``(node, path, offset, len)``
        keys for departed hardware survived membership changes — both a
        byte-accounting leak and a free read for a re-joining node.)"""
        self.base.purge_caches()
        for node_id in sorted(self._departed):
            self._evict_departed(node_id)
