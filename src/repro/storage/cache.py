"""Cache-aside read caching over a :class:`~repro.core.io.StorageBackend`.

The DAG engine (:mod:`repro.dag`) runs many MapReduce rounds on one
long-lived cluster session, and iterative workloads (K-Means, PageRank)
re-read the *same immutable input* every round.  A fresh job pays the
full storage path per read — disk (or remote-replica network transfer)
plus, on DFS, the libhdfs JNI boundary.  This module implements the
cache-aside pattern over the storage layer: the first read of a declared
immutable range goes through the backend as usual and the returned bytes
are kept in an application-level RAM cache; subsequent reads of the same
range *by the same node* are served from that cache at zero simulated
cost (an in-process memory lookup crosses no disk, network or JNI
boundary).

Cost accounting stays byte-accurate:

* only **pinned** paths (declared immutable by the DAG) are ever cached —
  reads of mutable paths always reach the backend;
* the cache key includes the reading node, so a node never skips the
  remote-transfer cost of a range it has not itself paid for;
* hit/miss byte counters record exactly what was served from where, and
  :meth:`CacheAsideBackend.stats` exposes them for reports and benches.

Invalidation rules (see ``docs/dag.md``): re-installing a path with
different content drops its cached ranges, as does :meth:`invalidate`;
an LRU bound (``capacity_bytes``) evicts the coldest ranges first.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.storage.dfs import BlockLocation

from repro.core.io import StorageBackend

__all__ = ["CacheAsideBackend"]

#: cache key: (reading node, path, offset, length)
_Key = Tuple[int, str, int, int]


class CacheAsideBackend(StorageBackend):
    """Cache-aside wrapper: immutable split reads are served from RAM.

    ``base`` is the real backend (DFS or node-local); ``capacity_bytes``
    bounds the cache (LRU eviction), ``None`` leaves it unbounded —
    adequate for the laptop-scale inputs this repository simulates, and
    the knob is there when a workload needs a budget.
    """

    def __init__(self, base: StorageBackend,
                 capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes < 1:
            raise ValueError("capacity_bytes must be positive (or None)")
        self.base = base
        self.capacity_bytes = capacity_bytes
        self._pinned: Set[str] = set()
        self._entries: "OrderedDict[_Key, bytes]" = OrderedDict()
        self._cached_bytes = 0
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.miss_bytes = 0
        self.evictions = 0

    # -- immutability declarations -----------------------------------------
    def pin(self, path: str) -> None:
        """Declare ``path`` immutable: its reads may be cached."""
        self._pinned.add(path)

    def pinned(self, path: str) -> bool:
        return path in self._pinned

    def invalidate(self, path: str) -> None:
        """Drop every cached range of ``path`` (content changed)."""
        stale = [key for key in self._entries if key[1] == path]
        for key in stale:
            self._cached_bytes -= len(self._entries.pop(key))

    # -- the cached read path ----------------------------------------------
    def read(self, node_id: int, path: str, offset: int,
             length: int) -> Generator:
        """Serve a pinned, previously read range from RAM; else delegate.

        A hit returns the bytes with **zero simulated time**: the data is
        already in the reading node's memory, so no disk, network or JNI
        cost applies.  A miss pays the full backend path and (for pinned
        paths) populates the cache.
        """
        key = (node_id, path, offset, length)
        if path in self._pinned:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self.hit_bytes += len(cached)
                return cached
        data = yield from self.base.read(node_id, path, offset, length)
        self.misses += 1
        self.miss_bytes += len(data)
        if path in self._pinned:
            self._insert(key, data)
        return data

    def _insert(self, key: _Key, data: bytes) -> None:
        if self.capacity_bytes is not None and len(data) > self.capacity_bytes:
            return    # a range larger than the whole budget never caches
        self._entries[key] = data
        self._cached_bytes += len(data)
        if self.capacity_bytes is None:
            return
        while self._cached_bytes > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._cached_bytes -= len(evicted)
            self.evictions += 1

    # -- accounting ---------------------------------------------------------
    @property
    def cached_bytes(self) -> int:
        """Bytes currently resident in the cache."""
        return self._cached_bytes

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly counters for reports and benches."""
        total = self.hit_bytes + self.miss_bytes
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "hit_rate_bytes": (self.hit_bytes / total) if total else 0.0,
            "cached_bytes": self._cached_bytes,
            "evictions": self.evictions,
            "pinned_paths": sorted(self._pinned),
        }

    # -- delegation ---------------------------------------------------------
    def write_chunk(self, node_id: int, nbytes: int,
                    replication: int) -> Generator:
        """Output writes are never cached; delegate at full cost."""
        yield from self.base.write_chunk(node_id, nbytes, replication)

    def size(self, path: str) -> int:
        return self.base.size(path)

    def locations(self, path: str) -> Optional[List[BlockLocation]]:
        return self.base.locations(path)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def install(self, path: str, data: bytes) -> None:
        """Install through the base backend, dropping stale cached ranges."""
        self.base.install(path, data)
        self.invalidate(path)

    def remove(self, path: str) -> None:
        self.base.remove(path)
        self.invalidate(path)

    def purge_caches(self) -> None:
        """Purge the *page* caches only: the cache-aside entries model an
        application-held buffer, not the OS page cache the paper's
        pre-test ritual drops."""
        self.base.purge_caches()
