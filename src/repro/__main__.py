"""``python -m repro`` — the single-job command-line runner."""

from repro.cli import main

raise SystemExit(main())
