"""Batched hot-path execution: granularity helpers.

The simulator charges costs through analytical models that are linear in
records and bytes (rooflines, stream bandwidths, per-item decode/merge
constants), so the *unit of simulation* — how many records ride one
pipeline payload — is free to change without changing virtual time.  A
``batch_size`` of 1 simulates record-at-a-time (the ground truth the
differential harness compares against); larger batches coalesce records
into chunks, slashing Python-side event counts while the cost model keeps
charging the same totals.  See ``docs/performance.md``.

Three pure helpers live here:

* :func:`autotune_batch_size` — the default batch size when the job does
  not pin one: the largest useful batch (one batch per input split).
* :func:`slice_batches` — cut a record list into batch-sized runs.
* :func:`apportion_bytes` — split an integer byte total across batches so
  the per-batch sizes sum *exactly* to the total (largest-remainder
  rounding).  Byte counters must be invariant under re-batching; naive
  ``int(total * fraction)`` rounding leaks bytes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.storage.records import FixedRecordFormat

__all__ = ["autotune_batch_size", "resolve_batch_size", "slice_batches",
           "apportion_bytes"]


def autotune_batch_size(chunk_size: int,
                        record_size: Optional[int] = None) -> int:
    """Pick the default batch size for a job that didn't set one.

    Per-batch charging is linear, so the cheapest-to-simulate batch is
    the biggest one: a single batch per split.  The returned value is an
    upper bound on any split's record count — ``chunk_size // record_size``
    for fixed-size records, ``chunk_size`` for byte-delimited text (a
    record occupies at least one byte) — so the map reader never slices.
    Jobs wanting finer granularity (differential testing, per-record
    ground truth) set ``JobConfig.batch_size`` explicitly.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if record_size is not None:
        if record_size < 1:
            raise ValueError("record_size must be positive")
        return max(1, -(-chunk_size // record_size))
    return chunk_size


def resolve_batch_size(config, record_format) -> int:
    """The job's effective batch size: the configured knob, or the
    autotuned one-batch-per-split default derived from the chunk size and
    the app's record format."""
    if config.batch_size is not None:
        return config.batch_size
    record_size = (record_format.record_size
                   if isinstance(record_format, FixedRecordFormat) else None)
    return autotune_batch_size(config.chunk_size, record_size)


def slice_batches(records: Sequence, batch_size: int) -> List[Sequence]:
    """Cut ``records`` into runs of at most ``batch_size``.

    Always returns at least one (possibly empty) batch so an empty split
    still produces a pipeline payload, exactly as the unbatched path did.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if len(records) <= batch_size:
        return [records]
    return [records[i:i + batch_size]
            for i in range(0, len(records), batch_size)]


def apportion_bytes(total: int, weights: Sequence[int]) -> List[int]:
    """Integer split of ``total`` proportional to ``weights``, summing
    exactly to ``total`` (largest-remainder method).

    Zero-weight entries get zero.  With an all-zero weight vector the
    total goes to the first entry (degenerate but lossless).
    """
    if total < 0:
        raise ValueError("negative total")
    if not weights:
        if total:
            raise ValueError("cannot apportion a non-zero total to nothing")
        return []
    wsum = sum(weights)
    if wsum == 0:
        return [total] + [0] * (len(weights) - 1)
    shares = [total * w / wsum for w in weights]
    floors = [int(s) for s in shares]
    shortfall = total - sum(floors)
    # Hand the leftover units to the largest fractional remainders,
    # breaking ties by position for determinism.
    order = sorted(range(len(weights)), key=lambda i: (floors[i] - shares[i], i))
    for i in order[:shortfall]:
        floors[i] += 1
    return floors
