"""Task-failure injection and re-execution (§III-E, implemented).

The paper: "Glasswing currently does not handle task failure.  The
standard approach of managing MapReduce task failure is re-execution: if
a task fails, its partial output is discarded and its input is
rescheduled for processing.  Addition of this functionality would consist
of bookkeeping only which would involve negligible overhead."

This module adds that bookkeeping.  A :class:`FaultInjector` declares
which map tasks fail (and how many times); the map pipeline discards the
partial kernel work, reloads the split from storage and re-executes.
Durability of *completed* map output is untouched — it was already on
disk (§III-E's guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["FaultInjector", "TaskFailure"]


@dataclass(frozen=True)
class TaskFailure:
    """Record of one injected failure."""

    split_index: int
    attempt: int
    node: str
    at: float           # virtual time of the crash
    wasted: float       # virtual seconds of discarded kernel work


@dataclass
class FaultInjector:
    """Deterministic failure plan: ``split_index -> number of failures``.

    A task scheduled for ``k`` failures crashes on its first ``k``
    attempts and succeeds on attempt ``k``; the fraction of the kernel
    executed before each crash is ``progress_at_failure``.
    """

    fail_counts: Dict[int, int] = field(default_factory=dict)
    progress_at_failure: float = 0.5
    failures: List[TaskFailure] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not (0.0 <= self.progress_at_failure <= 1.0):
            raise ValueError("progress_at_failure must be within [0, 1]")
        if any(c < 0 for c in self.fail_counts.values()):
            raise ValueError("failure counts must be non-negative")

    def should_fail(self, split_index: int, attempt: int) -> bool:
        """True when this attempt of this split is destined to crash."""
        return attempt < self.fail_counts.get(split_index, 0)

    def record(self, split_index: int, attempt: int, node: str,
               at: float, wasted: float) -> None:
        """Log one crash (called by the map phase at failure time)."""
        self.failures.append(TaskFailure(split_index, attempt, node, at,
                                         wasted))

    @property
    def total_failures(self) -> int:
        """Number of crashes injected so far."""
        return len(self.failures)

    @property
    def wasted_seconds(self) -> float:
        """Total virtual kernel time discarded by crashes."""
        return sum(f.wasted for f in self.failures)
