"""Fault injection and cluster health: the fault-tolerance subsystem.

The paper (§III-E): "Glasswing currently does not handle task failure.
The standard approach of managing MapReduce task failure is re-execution:
if a task fails, its partial output is discarded and its input is
rescheduled for processing."  This module grows that sketch into a full
fault model covering the failures that dominate real clusters:

* **map-task crashes** — the map pipeline discards partial kernel work,
  re-reads the split from (replicated) storage and re-executes, with
  configurable retry/backoff (``JobConfig.max_attempts`` /
  ``backoff_base``);
* **reduce-task crashes** — the reduce pipeline discards the partial
  reduction, re-fetches the partition's lost input from durable map
  output on local disk and re-executes;
* **whole-node crashes** — the node's pipelines are killed mid-flight,
  its intermediate state is lost (including shuffle data in flight from
  it), and the coordinator runs a recovery wave on the survivors (see
  :mod:`repro.core.recovery`);
* **stragglers** — a task's kernel is slowed by a factor; the optional
  straggler detector launches a speculative duplicate on another node
  with first-finisher-wins semantics;
* **membership churn** — :class:`NodeJoin` activates a standby node
  mid-job (it registers with the scheduler and starts stealing queued
  map work), :class:`NodeLeave` drains an active node (its unfinished
  work re-enters through the recovery path, but — unlike a crash — its
  durable spill and DFS replicas stay readable, HDFS-decommissioning
  style);
* **coordinator crashes** — :class:`CoordinatorCrash` kills the current
  control-plane leader; a standby replica is elected deterministically
  (see :mod:`repro.core.membership`) and resumes from the shared
  ``ShuffleRegistry``/:class:`ClusterHealth` state.

A :class:`FaultPlan` declares the schedule, either deterministically or
from a seed (:meth:`FaultPlan.seeded`).  The headline guarantee, locked
in by ``tests/core/test_fault_matrix.py``: any fault schedule produces
output identical to the fault-free run, at a gracefully degraded job
time.

:class:`FaultInjector` is the original, map-only deterministic plan; it
remains as a thin alias over :class:`FaultPlan` for compatibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "TaskFailure",
    "NodeCrash",
    "NodeJoin",
    "NodeLeave",
    "CoordinatorCrash",
    "ClusterHealth",
    "TaskFailedError",
]

#: ``progress_at_failure`` accepts one global scalar, one sequence indexed
#: by attempt (shared by all tasks), or a mapping from task key to either.
ProgressSpec = Union[float, Sequence[float], Mapping[int, Union[float, Sequence[float]]]]


class TaskFailedError(RuntimeError):
    """A task exhausted ``JobConfig.max_attempts`` executions."""


@dataclass(frozen=True)
class TaskFailure:
    """Record of one injected failure."""

    split_index: int
    attempt: int
    node: str
    at: float           # virtual time of the crash
    wasted: float       # virtual seconds of discarded kernel work
    kind: str = "map"   # "map" | "reduce"


@dataclass(frozen=True)
class NodeCrash:
    """One whole-node loss: ``node`` dies at virtual time ``at``.

    Crashes are modeled during the map/shuffle phase — the window in
    which a node holds unique, not-yet-durable intermediate state.  A
    crash time landing after the shuffle completed is a no-op (the job
    already holds everything the node produced).
    """

    node: int
    at: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("crash node must be a valid node id")
        if self.at < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class NodeJoin:
    """One scale-out event: ``node`` becomes active at virtual time ``at``.

    ``node=None`` resolves at fire time to the lowest-id standby
    (auto-scaling-group semantics); an explicit node must currently be a
    standby or the event is a recorded no-op.  Joins landing after the
    shuffle completed are no-ops — there is no map work left to steal.
    """

    node: Optional[int]
    at: float

    def __post_init__(self) -> None:
        if self.node is not None and self.node < 0:
            raise ValueError("join node must be a valid node id or None")
        if self.at < 0:
            raise ValueError("join time must be non-negative")


@dataclass(frozen=True)
class NodeLeave:
    """One scale-in event: ``node`` drains out of the job at time ``at``.

    ``node=None`` resolves at fire time to the highest-id live node.
    The last live node never leaves, and leaves landing after the
    shuffle completed are no-ops (the node holds nothing volatile any
    more).  Draining differs from crashing: the departed node's durable
    spill and DFS replicas remain readable, so recovery usually re-pushes
    instead of re-executing.
    """

    node: Optional[int]
    at: float

    def __post_init__(self) -> None:
        if self.node is not None and self.node < 0:
            raise ValueError("leave node must be a valid node id or None")
        if self.at < 0:
            raise ValueError("leave time must be non-negative")


@dataclass(frozen=True)
class CoordinatorCrash:
    """Kill the control-plane leader at virtual time ``at``.

    The next control-plane barrier elects a standby replica (lowest
    surviving id) after one ``JobConfig.failover_timeout`` delay; with a
    single replica the job dies — that is the pre-HA behavior, now
    opt-out via ``JobConfig.coordinator_replicas``.
    """

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("coordinator crash time must be non-negative")


def _validate_progress(progress: ProgressSpec) -> None:
    def check_scalar(p) -> None:
        if not (0.0 <= float(p) <= 1.0):
            raise ValueError("progress_at_failure must be within [0, 1]")

    if isinstance(progress, Mapping):
        for value in progress.values():
            if isinstance(value, Sequence):
                for p in value:
                    check_scalar(p)
            else:
                check_scalar(value)
    elif isinstance(progress, Sequence):
        for p in progress:
            check_scalar(p)
    else:
        check_scalar(progress)


def _progress_lookup(progress: ProgressSpec, key: int, attempt: int) -> float:
    """Resolve the kernel fraction executed before crash ``attempt`` of
    task ``key`` (the per-failure generalisation of the old scalar)."""
    if isinstance(progress, Mapping):
        progress = progress.get(key, 0.5)
    if isinstance(progress, Sequence):
        if not progress:
            return 0.5
        return float(progress[min(attempt, len(progress) - 1)])
    return float(progress)


@dataclass
class FaultPlan:
    """A pluggable fault schedule for one job.

    ``map_failures`` / ``reduce_failures`` map a task key (split index /
    partition id) to the number of times its first attempts crash; the
    attempt numbered ``count`` succeeds.  ``stragglers`` maps split
    indices to kernel slowdown factors (>= 1).  ``node_crashes`` lists
    whole-node losses.

    ``progress_at_failure`` may be a global scalar, a per-attempt
    sequence, or a per-task mapping to either — so each individual
    failure can die at a different point of its kernel.
    """

    map_failures: Dict[int, int] = field(default_factory=dict)
    reduce_failures: Dict[int, int] = field(default_factory=dict)
    node_crashes: Tuple[NodeCrash, ...] = ()
    stragglers: Dict[int, float] = field(default_factory=dict)
    progress_at_failure: ProgressSpec = 0.5
    node_joins: Tuple[NodeJoin, ...] = ()
    node_leaves: Tuple[NodeLeave, ...] = ()
    coordinator_crashes: Tuple[CoordinatorCrash, ...] = ()
    failures: List[TaskFailure] = field(default_factory=list)

    def __post_init__(self) -> None:
        _validate_progress(self.progress_at_failure)
        for name, counts in (("map", self.map_failures),
                             ("reduce", self.reduce_failures)):
            if any(c < 0 for c in counts.values()):
                raise ValueError(f"{name} failure counts must be non-negative")
        if any(s < 1.0 for s in self.stragglers.values()):
            raise ValueError("straggler slowdown factors must be >= 1")
        self.node_crashes = tuple(self.node_crashes)
        seen = set()
        for crash in self.node_crashes:
            if crash.node in seen:
                raise ValueError(f"node {crash.node} crashes more than once")
            seen.add(crash.node)
        self.node_joins = tuple(self.node_joins)
        self.node_leaves = tuple(self.node_leaves)
        self.coordinator_crashes = tuple(self.coordinator_crashes)
        for label, events in (("joins", self.node_joins),
                              ("leaves", self.node_leaves)):
            explicit = [e.node for e in events if e.node is not None]
            if len(explicit) != len(set(explicit)):
                raise ValueError(f"duplicate explicit node in {label}")

    @property
    def has_membership_events(self) -> bool:
        """True when the plan schedules any join/leave/coordinator event."""
        return bool(self.node_joins or self.node_leaves
                    or self.coordinator_crashes)

    # -- schedule queries --------------------------------------------------
    def should_fail_map(self, split_index: int, attempt: int) -> bool:
        """True when this attempt of this map task is destined to crash."""
        return attempt < self.map_failures.get(split_index, 0)

    def should_fail_reduce(self, pid: int, attempt: int) -> bool:
        """True when this attempt of this partition's reduce task crashes."""
        return attempt < self.reduce_failures.get(pid, 0)

    def progress_for(self, key: int, attempt: int) -> float:
        """Kernel fraction executed before crash ``attempt`` of task ``key``."""
        return _progress_lookup(self.progress_at_failure, key, attempt)

    def slowdown_for(self, split_index: int) -> float:
        """Kernel slowdown factor of a straggling map task (1.0 = healthy)."""
        return self.stragglers.get(split_index, 1.0)

    @property
    def failure_count(self) -> int:
        """Total task failures this plan will inject (excl. node crashes)."""
        return (sum(self.map_failures.values())
                + sum(self.reduce_failures.values()))

    # -- bookkeeping (written by the phases at crash time) -----------------
    def record(self, split_index: int, attempt: int, node: str,
               at: float, wasted: float, kind: str = "map") -> None:
        """Log one crash (called by a phase at failure time)."""
        self.failures.append(TaskFailure(split_index, attempt, node, at,
                                         wasted, kind))

    @property
    def total_failures(self) -> int:
        """Number of crashes injected so far."""
        return len(self.failures)

    @property
    def wasted_seconds(self) -> float:
        """Total virtual kernel time discarded by crashes."""
        return sum(f.wasted for f in self.failures)

    # -- construction ------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, n_splits: int, n_nodes: int = 0,
               n_partitions: int = 0,
               map_rate: float = 0.0, reduce_rate: float = 0.0,
               straggler_rate: float = 0.0, straggler_slowdown: float = 4.0,
               node_crash_count: int = 0,
               crash_window: Tuple[float, float] = (0.0, 1.0),
               max_failures_per_task: int = 2,
               node_join_count: int = 0, node_leave_count: int = 0,
               coordinator_crash_count: int = 0,
               membership_window: Tuple[float, float] = (0.0, 1.0)) -> "FaultPlan":
        """Seeded-random plan: every draw comes from ``random.Random(seed)``
        so the same seed always yields the same schedule (and therefore,
        with the deterministic simulator, the same timeline).

        Rates are per-task probabilities; a selected task fails
        ``1..max_failures_per_task`` times.  ``node_crash_count`` nodes
        (never node 0, so a coordinator-style survivor always remains)
        crash at times drawn uniformly from ``crash_window``.

        ``node_join_count`` / ``node_leave_count`` /
        ``coordinator_crash_count`` schedule that many auto-resolved
        membership events at times drawn uniformly from
        ``membership_window``; the draws are appended after the classic
        ones, so a given seed's crash/straggler schedule is unchanged by
        also requesting membership churn.
        """
        rng = random.Random(seed)
        map_failures: Dict[int, int] = {}
        reduce_failures: Dict[int, int] = {}
        stragglers: Dict[int, float] = {}
        progress: Dict[int, List[float]] = {}
        for split in range(n_splits):
            if rng.random() < map_rate:
                count = rng.randint(1, max_failures_per_task)
                map_failures[split] = count
                progress[split] = [round(rng.random(), 3) for _ in range(count)]
            elif rng.random() < straggler_rate:
                stragglers[split] = 1.0 + rng.random() * (straggler_slowdown - 1.0)
        for pid in range(n_partitions):
            if rng.random() < reduce_rate:
                reduce_failures[pid] = rng.randint(1, max_failures_per_task)
        crashes: List[NodeCrash] = []
        if node_crash_count:
            if n_nodes < 2:
                raise ValueError("node crashes need at least two nodes")
            victims = rng.sample(range(1, n_nodes),
                                 min(node_crash_count, n_nodes - 1))
            lo, hi = crash_window
            crashes = [NodeCrash(v, round(rng.uniform(lo, hi), 6))
                       for v in sorted(victims)]
        mlo, mhi = membership_window
        joins = tuple(NodeJoin(None, round(rng.uniform(mlo, mhi), 6))
                      for _ in range(node_join_count))
        leaves = tuple(NodeLeave(None, round(rng.uniform(mlo, mhi), 6))
                       for _ in range(node_leave_count))
        coord = tuple(CoordinatorCrash(round(rng.uniform(mlo, mhi), 6))
                      for _ in range(coordinator_crash_count))
        return cls(map_failures=map_failures, reduce_failures=reduce_failures,
                   node_crashes=tuple(crashes), stragglers=stragglers,
                   progress_at_failure=progress if progress else 0.5,
                   node_joins=joins, node_leaves=leaves,
                   coordinator_crashes=coord)


class FaultInjector(FaultPlan):
    """Deterministic map-only failure plan (the original §III-E interface).

    ``fail_counts`` maps ``split_index -> number of failures``: a task
    scheduled for ``k`` failures crashes on its first ``k`` attempts and
    succeeds on attempt ``k``.  Kept as a compatibility alias over
    :class:`FaultPlan`.
    """

    def __init__(self, fail_counts: Dict[int, int] | None = None,
                 progress_at_failure: ProgressSpec = 0.5,
                 failures: List[TaskFailure] | None = None):
        super().__init__(map_failures=dict(fail_counts or {}),
                         progress_at_failure=progress_at_failure,
                         failures=failures if failures is not None else [])

    @property
    def fail_counts(self) -> Dict[int, int]:
        return self.map_failures

    def should_fail(self, split_index: int, attempt: int) -> bool:
        """True when this attempt of this split is destined to crash."""
        return self.should_fail_map(split_index, attempt)


class ClusterHealth:
    """Liveness and membership of the cluster's nodes during one job.

    Written by the engine's crash/membership monitors; read by the
    phases (skip deliveries to dead peers), the DFS (serve reads from
    live replicas) and the recovery coordinator.

    A node is in exactly one of four states:

    * **active** — alive and participating (``alive()`` true);
    * **standby** (``inactive``) — hardware exists but is not part of
      this job yet; a :class:`NodeJoin` activates it;
    * **departed** — drained out mid-job.  Not ``alive()`` (it takes no
      new work and receives no deliveries) but ``storage_alive()`` —
      its durable spill and DFS replicas remain readable, so recovery
      can re-push instead of re-executing;
    * **dead** — crashed.  Neither alive nor a storage source.

    ``active=None`` (the default) activates every node, reproducing the
    pre-elastic behavior bit-identically.
    """

    def __init__(self, n_nodes: int,
                 active: Optional[Sequence[int]] = None):
        self.n_nodes = n_nodes
        self.dead_at: Dict[int, float] = {}
        self.departed_at: Dict[int, float] = {}
        self.joined_at: Dict[int, float] = {}
        if active is None:
            self.inactive: Set[int] = set()
        else:
            ids = set(active)
            if not ids or any(not (0 <= n < n_nodes) for n in ids):
                raise ValueError(
                    f"active ids {sorted(ids)} outside the "
                    f"{n_nodes}-node cluster")
            self.inactive = set(range(n_nodes)) - ids

    def alive(self, node: int) -> bool:
        return (node not in self.dead_at and node not in self.departed_at
                and node not in self.inactive)

    def storage_alive(self, node: int) -> bool:
        """Can ``node`` still *serve* durable bytes?  Departed (drained)
        nodes can; dead and standby nodes cannot."""
        return node not in self.dead_at and node not in self.inactive

    def mark_dead(self, node: int, at: float) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"unknown node {node}")
        self.dead_at.setdefault(node, at)

    def mark_departed(self, node: int, at: float) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"unknown node {node}")
        if node in self.inactive:
            raise ValueError(f"standby node {node} cannot depart")
        self.departed_at.setdefault(node, at)

    def activate(self, node: int, at: float) -> None:
        """A standby node joins the active set."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"unknown node {node}")
        if node not in self.inactive:
            raise ValueError(f"node {node} is not a standby")
        self.inactive.discard(node)
        self.joined_at.setdefault(node, at)

    @property
    def any_dead(self) -> bool:
        return bool(self.dead_at)

    @property
    def needs_recovery(self) -> bool:
        """True when any node crashed *or* drained out — both lose
        volatile intermediate state that recovery must restore."""
        return bool(self.dead_at or self.departed_at)

    @property
    def alive_nodes(self) -> List[int]:
        return [n for n in range(self.n_nodes) if self.alive(n)]

    @property
    def dead_nodes(self) -> List[int]:
        return sorted(self.dead_at)

    @property
    def departed_nodes(self) -> List[int]:
        return sorted(self.departed_at)

    @property
    def gone_nodes(self) -> List[int]:
        """Crashed and departed nodes — everything recovery must re-home."""
        return sorted(set(self.dead_at) | set(self.departed_at))
