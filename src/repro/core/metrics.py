"""Per-stage metrics extracted from the simulation timeline.

Reproduces the instrumentation of §IV-B: "we instrumented [the pipeline]
with timers for each pipeline stage".  Tables II/III and Figures 4/5 are
all views over these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.simt.trace import Timeline

__all__ = ["JobMetrics", "MAP_STAGES", "REDUCE_STAGES", "stages_for"]

MAP_STAGES = ("input", "stage", "kernel", "retrieve", "output")
REDUCE_STAGES = ("input", "stage", "kernel", "retrieve", "output")


def stages_for(phase: str):
    """The stage tuple of a phase (``map``, ``map.recovery`` or ``reduce``)."""
    return REDUCE_STAGES if phase.startswith("reduce") else MAP_STAGES


@dataclass
class JobMetrics:
    """Queryable view over a finished job's timeline."""

    timeline: Timeline
    n_nodes: int

    # -- stage-level ---------------------------------------------------------
    def stage_time(self, phase: str, stage: str,
                   node: Optional[str] = None) -> float:
        """Active (occupied) time of one pipeline stage.

        With ``node=None`` returns the maximum across nodes — the paper's
        single-node tables are exactly the one-node case.
        """
        cat = f"{phase}.{stage}"
        if node is not None:
            return self.timeline.occupied_time(cat, name=node)
        nodes = {s.name for s in self.timeline.by_category(cat)}
        if not nodes:
            return 0.0
        return max(self.timeline.occupied_time(cat, name=n) for n in nodes)

    def breakdown(self, phase: str, node: Optional[str] = None
                  ) -> Dict[str, float]:
        """Stage -> active time for one phase (the Tables II/III rows)."""
        return {stage: self.stage_time(phase, stage, node)
                for stage in stages_for(phase)}

    # -- phase-level -----------------------------------------------------------
    def phase_elapsed(self, phase: str) -> float:
        """Wall-clock extent of a phase across all nodes."""
        return self.timeline.span_extent(f"{phase}.elapsed")

    @property
    def map_elapsed(self) -> float:
        """Map-phase wall-clock extent across all nodes."""
        return self.phase_elapsed("map")

    @property
    def reduce_elapsed(self) -> float:
        """Reduce-phase wall-clock extent across all nodes."""
        return self.phase_elapsed("reduce")

    @property
    def merge_delay(self) -> float:
        """Maximum per-node merge delay (§III-B metric)."""
        spans = self.timeline.by_category("merge.delay")
        return max((s.duration for s in spans), default=0.0)

    # -- fault tolerance (§III-E) --------------------------------------------
    @property
    def reexecutions(self) -> int:
        """Task executions beyond the fault-free minimum: crashed map and
        reduce attempts plus whole splits re-executed after node loss."""
        return (len(self.timeline.by_category("map.task_failure"))
                + len(self.timeline.by_category("reduce.task_failure"))
                + len(self.timeline.by_category("recovery.reexec")))

    @property
    def wasted_seconds(self) -> float:
        """Virtual seconds charged to work that was thrown away (partial
        kernel progress of crashed attempts, losing speculative copies)."""
        wasted = sum(s.duration
                     for s in self.timeline.by_category("map.task_failure"))
        wasted += sum(s.duration
                      for s in self.timeline.by_category("reduce.task_failure"))
        wasted += sum(s.meta.get("wasted", 0.0)
                      for s in self.timeline.by_category("map.speculative"))
        return wasted

    @property
    def speculative_launches(self) -> int:
        """Speculative duplicates started by the straggler detector."""
        return len(self.timeline.by_category("map.speculative"))

    @property
    def speculative_wins(self) -> int:
        """Races where the duplicate beat the straggling primary."""
        return sum(1 for s in self.timeline.by_category("map.speculative")
                   if s.meta.get("won"))

    @property
    def recovery_time(self) -> float:
        """Wall-clock extent of the post-crash shuffle-recovery wave."""
        return self.timeline.span_extent("phase.recovery")

    @property
    def node_crashes(self) -> int:
        """Nodes the fault plan actually killed during the run."""
        return len(self.timeline.by_category("node.crash"))

    # -- invariants used by tests ------------------------------------------------
    def stage_sum(self, phase: str, node: Optional[str] = None) -> float:
        """Sum of the five stages' active times (>= elapsed iff overlapped)."""
        return sum(self.breakdown(phase, node).values())
