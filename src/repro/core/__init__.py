"""Glasswing core: the 5-stage map/reduce pipelines and their machinery.

Modules:

* :mod:`repro.core.api` — the application-facing kernel API (map, combine,
  reduce, cost models, partitioners).
* :mod:`repro.core.config` — the Configuration API (:class:`JobConfig`).
* :mod:`repro.core.data` — chunks, sorted runs, partitions.
* :mod:`repro.core.collector` — map-output collection mechanisms (shared
  buffer pool vs. hash table with combiner support).
* :mod:`repro.core.intermediate` — per-node intermediate data management:
  partition cache, threshold flush, background multi-way merging, the
  merge-delay metric.
* :mod:`repro.core.pipeline` — the generic 5-stage pipeline with
  single/double/triple buffering.
* :mod:`repro.core.map_phase` / :mod:`repro.core.reduce_phase` — the two
  pipeline instantiations.
* :mod:`repro.core.coordinator` — split scheduling with file affinity and
  the shuffle registry (ownership / delivery ledger / durable index).
* :mod:`repro.core.faults` — fault plans (deterministic and seeded-random)
  and the cluster-health view.
* :mod:`repro.core.recovery` — the node-crash recovery wave and the
  straggler/speculation controller.
* :mod:`repro.core.engine` — job orchestration (:func:`run_glasswing`).
* :mod:`repro.core.metrics` — per-stage breakdowns (Tables II/III, Figs 4/5).
"""

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.engine import GlasswingResult, run_glasswing
from repro.core.faults import (ClusterHealth, FaultInjector, FaultPlan,
                               NodeCrash, TaskFailedError)

__all__ = [
    "JobConfig", "MapReduceApp", "GlasswingResult", "run_glasswing",
    "FaultPlan", "FaultInjector", "NodeCrash", "ClusterHealth",
    "TaskFailedError",
]
