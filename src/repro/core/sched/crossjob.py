"""Cross-job dispatch arbitration for the multi-job service.

The PR5 schedulers balance *operations within one job*; a long-lived job
server additionally needs to decide *which admitted job* gets the next
free dispatch slot on the shared cluster.  OS4M's argument is that load
balance must be global across the workload, not per-job — so the arbiter
extends the same scoring families across job boundaries:

``fair-share`` (default)
    Strict priority classes first (lower number = more urgent), then the
    tenant with the fewest jobs currently running on the cluster, then
    FIFO by arrival.  Within one (priority, tenant) class the dispatch
    order is therefore exactly the submission order, which is what the
    admission-queue property suite pins down.

``lpt``
    Strict priority first, then the *largest* remaining job demand
    (longest-processing-time, the oplevel policy's scoring lifted from
    splits to whole jobs), then FIFO.  Big jobs start early so they do
    not land at the tail of the service schedule — the cross-job version
    of keeping the biggest operations off the tail (OS4M).

Both orderings are total and deterministic: ties always fall through to
the monotonically increasing arrival sequence number, so a seeded trace
replays to an identical dispatch (and completion) order every run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["CrossJobArbiter", "ARBITER_NAMES"]

ARBITER_NAMES = ("fair-share", "lpt")


class CrossJobArbiter:
    """Picks which queued job a freed dispatch slot goes to.

    Candidates are objects exposing ``priority`` (int, lower is more
    urgent), ``tenant`` (str), ``seq`` (arrival sequence number) and
    ``demand`` (total input bytes — the job-level analogue of a split's
    length).  The arbiter is pure policy: the admission queue decides who
    *may* run (bounds, throttles), the arbiter decides who runs *next*.
    """

    def __init__(self, policy: str = "fair-share"):
        if policy not in ARBITER_NAMES:
            raise ValueError(
                f"unknown cross-job policy {policy!r}; expected one of "
                f"{', '.join(ARBITER_NAMES)}")
        self.policy = policy

    def pick(self, candidates: Sequence,
             running_by_tenant: Optional[Dict[str, int]] = None):
        """The next job to dispatch, or ``None`` without candidates."""
        if not candidates:
            return None
        running = running_by_tenant or {}
        if self.policy == "lpt":
            key = lambda r: (r.priority, -r.demand, r.seq)
        else:
            key = lambda r: (r.priority, running.get(r.tenant, 0), r.seq)
        return min(candidates, key=key)
