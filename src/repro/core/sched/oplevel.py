"""Operation-level global-queue policy (OS4M-style).

Like ``dynamic-locality`` this pulls from one global pool at runtime,
but instead of FIFO order it scores candidates for global load balance:
each node is handed its *largest* remaining local split (longest
processing time first), falling back to the largest split anywhere.
LPT ordering keeps the biggest operations from landing at the tail of
the schedule, which is where static assignment loses on skew.

Elastic membership is inherited from the dynamic policy and needs no
LPT-specific handling: ``_peek`` re-scores the pool on every pull, so a
node that joins mid-job immediately competes for the largest remaining
split (exactly the OS4M goal — global balance maintained as the worker
set changes), and a leaver's unpulled work is simply re-scored for
whoever asks next.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.sched.dynamic import DynamicLocalityScheduler, _Pool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import Split

__all__ = ["OpLevelScheduler"]


def _largest(candidates) -> Optional["Split"]:
    best = None
    for split in candidates:
        if best is None or (split.length, -split.index) > \
                (best.length, -best.index):
            best = split
    return best


class OpLevelScheduler(DynamicLocalityScheduler):

    name = "oplevel"

    def _peek(self, node_id: int, phase: str) -> Optional["Split"]:
        pool = self._pool_for(phase)
        local = self._peek_local_lpt(pool, node_id)
        if local is not None:
            return local
        return _largest(pool.splits.values())

    @staticmethod
    def _peek_local_lpt(pool: _Pool, node_id: int) -> Optional["Split"]:
        queue = pool.local.get(node_id)
        if not queue:
            return None
        return _largest(pool.splits[i] for i in queue if i in pool.splits)

    def pick_helper(self, exclude: int, alive_nodes: Sequence[int],
                    active: Dict[int, int],
                    split_index: Optional[int] = None) -> Optional[int]:
        candidates = [n for n in alive_nodes if n != exclude]
        if not candidates:
            return None
        holders = self._holders.get(split_index, frozenset()) \
            if split_index is not None else frozenset()
        # Global balance first, locality as the tie-break.
        helper = min(candidates,
                     key=lambda n: (active[n], 0 if n in holders else 1, n))
        self._note_speculative(helper, split_index)
        return helper
