"""Dynamic locality-preferring policy: nodes pull work at runtime.

All splits sit in one global pool.  When a node asks for work it gets
the oldest split with a replica on that node; only when none of its
local splits remain does it steal the oldest remote split.  A node stuck
on a huge split simply stops pulling while the rest of the cluster
drains the pool — skew rebalances itself instead of idling the cluster
behind a static assignment.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

from repro.core.sched.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import ShuffleRegistry, Split
    from repro.core.io import StorageBackend

__all__ = ["DynamicLocalityScheduler"]


class _Pool:
    """Insertion-ordered split pool with lazy per-node locality queues."""

    def __init__(self):
        self.splits: Dict[int, "Split"] = {}    # index -> split, FIFO order
        self.local: Dict[int, Deque[int]] = {}  # node -> indices (lazy)
        self.cost = 0.0

    def add(self, split: "Split", holders: Optional[frozenset]) -> None:
        self.splits[split.index] = split
        self.cost += float(split.length)
        for node in (holders or ()):
            self.local.setdefault(node, deque()).append(split.index)

    def peek_local(self, node_id: int) -> Optional["Split"]:
        queue = self.local.get(node_id)
        while queue:
            index = queue[0]
            if index in self.splits:     # may have been taken elsewhere
                return self.splits[index]
            queue.popleft()
        return None

    def peek_any(self) -> Optional["Split"]:
        for split in self.splits.values():
            return split
        return None

    def take(self, split: "Split") -> None:
        del self.splits[split.index]
        self.cost -= float(split.length)


class DynamicLocalityScheduler(Scheduler):

    name = "dynamic-locality"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pool = _Pool()
        self._recovery_pool = _Pool()
        self._survivors: List[int] = []

    def _pool_for(self, phase: str) -> _Pool:
        return self._recovery_pool if phase == "recovery" else self._pool

    def _plan(self, splits: Sequence["Split"], backend: "StorageBackend",
              n_nodes: int) -> None:
        for split in splits:
            self._pool.add(split, self._holders.get(split.index))

    def _plan_recovery(self, splits: Sequence["Split"],
                       backend: "StorageBackend",
                       survivors: List[int]) -> None:
        self._survivors = survivors
        survivor_set = frozenset(survivors)
        for split in splits:
            holders = self._holders.get(split.index)
            if holders is not None:
                holders = holders & survivor_set
            self._recovery_pool.add(split, holders)

    def _peek(self, node_id: int, phase: str) -> Optional["Split"]:
        pool = self._pool_for(phase)
        return pool.peek_local(node_id) or pool.peek_any()

    def _take(self, node_id: int, split: "Split", phase: str) -> None:
        self._pool_for(phase).take(split)

    def _backlog_cost(self, node_id: int, phase: str) -> float:
        return self._pool_for(phase).cost

    def queue_depth(self) -> int:
        return len(self._pool.splits) + len(self._recovery_pool.splits)

    def recovery_nodes(self) -> List[int]:
        # Every survivor can pull from the shared recovery pool.
        return self._survivors

    # -- elastic membership ------------------------------------------------
    def _node_joined(self, node_id: int) -> None:
        # The global pool needs no rebalancing — the joiner's first
        # ``next_for`` steals the oldest split.  But locality preference
        # is per-node state built at ``add`` time, so (re)build the
        # joiner's local queue for any pooled split it holds a replica of
        # (possible when the job shares a DFS laid out over more hardware
        # than its initial active set).
        for pool in (self._pool, self._recovery_pool):
            queue = pool.local.setdefault(node_id, deque())
            present = set(queue)
            for index in pool.splits:
                holders = self._holders.get(index)
                if holders and node_id in holders and index not in present:
                    queue.append(index)

    # _node_left needs nothing: the departed node stops pulling and its
    # stale ``local`` queue entries are skipped lazily by ``peek_local``.

    # -- load-aware fault tolerance ---------------------------------------
    def rehome(self, pid: int, survivors: Sequence[int],
               registry: Optional["ShuffleRegistry"] = None) -> int:
        if registry is None:
            return super().rehome(pid, survivors, registry)
        return min(survivors,
                   key=lambda n: (len(registry.owned_by(n)), n))

    def pick_helper(self, exclude: int, alive_nodes: Sequence[int],
                    active: Dict[int, int],
                    split_index: Optional[int] = None) -> Optional[int]:
        candidates = [n for n in alive_nodes if n != exclude]
        if not candidates:
            return None
        holders = self._holders.get(split_index, frozenset()) \
            if split_index is not None else frozenset()
        helper = min(candidates,
                     key=lambda n: (0 if n in holders else 1, active[n], n))
        self._note_speculative(helper, split_index)
        return helper
