"""Pluggable operation scheduling (split placement + device pools).

Three policies ship:

``static-affinity``
    The original coordinator behaviour extracted verbatim: one-shot
    greedy least-loaded-replica assignment before the job starts.
``dynamic-locality``
    Runtime pull from a global pool, local replicas first — skewed
    splits rebalance across the cluster instead of idling it.
``oplevel``
    OS4M-style global operation queue with longest-processing-time
    scoring for global load balance.
"""

from __future__ import annotations

from typing import Optional

from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.core.sched.affinity import (affinity_assign, holders_by_split,
                                       replica_holders)
from repro.core.sched.base import Scheduler
from repro.core.sched.crossjob import ARBITER_NAMES, CrossJobArbiter
from repro.core.sched.dynamic import DynamicLocalityScheduler
from repro.core.sched.oplevel import OpLevelScheduler
from repro.core.sched.static import StaticAffinityScheduler

__all__ = [
    "SCHEDULER_NAMES", "Scheduler", "make_scheduler",
    "StaticAffinityScheduler", "DynamicLocalityScheduler",
    "OpLevelScheduler",
    "ARBITER_NAMES", "CrossJobArbiter",
    "affinity_assign", "holders_by_split", "replica_holders",
]

_POLICIES = {
    cls.name: cls
    for cls in (StaticAffinityScheduler, DynamicLocalityScheduler,
                OpLevelScheduler)
}

SCHEDULER_NAMES = tuple(_POLICIES)


def make_scheduler(name: str, sim: Optional[Simulator] = None,
                   timeline: Optional[Timeline] = None) -> Scheduler:
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of "
            f"{', '.join(SCHEDULER_NAMES)}") from None
    return cls(sim=sim, timeline=timeline)
