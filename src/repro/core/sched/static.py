"""Static file-affinity policy — the pre-refactor behaviour, extracted.

The whole split→node mapping is computed up front by
:func:`repro.core.sched.affinity.affinity_assign` (greedy
least-loaded-replica with deterministic tie-breaking) and each node then
drains its own queue in order.  Nothing rebalances at runtime: a node
that finishes early idles, exactly as the original coordinator-driven
engine behaved.  This is the compatibility baseline every differential
test pins.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

from repro.core.sched.affinity import affinity_assign
from repro.core.sched.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import Split
    from repro.core.io import StorageBackend

__all__ = ["StaticAffinityScheduler"]


class StaticAffinityScheduler(Scheduler):

    name = "static-affinity"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues: Dict[int, Deque["Split"]] = {}
        self._recovery: Dict[int, Deque["Split"]] = {}

    def _plan(self, splits: Sequence["Split"], backend: "StorageBackend",
              n_nodes: int) -> None:
        assignment = affinity_assign(splits, backend, n_nodes)
        self._queues = {n: deque(q) for n, q in assignment.items()}

    def _plan_recovery(self, splits: Sequence["Split"],
                       backend: "StorageBackend",
                       survivors: List[int]) -> None:
        assignment = affinity_assign(splits, backend, self.n_nodes,
                                     allowed=survivors)
        self._recovery = {n: deque(q) for n, q in assignment.items() if q}

    def _queue(self, node_id: int, phase: str) -> Deque["Split"]:
        source = self._recovery if phase == "recovery" else self._queues
        return source.get(node_id, deque())

    def _peek(self, node_id: int, phase: str) -> Optional["Split"]:
        queue = self._queue(node_id, phase)
        return queue[0] if queue else None

    def _take(self, node_id: int, split: "Split", phase: str) -> None:
        queue = self._queue(node_id, phase)
        assert queue and queue[0] is split
        queue.popleft()

    def _backlog_cost(self, node_id: int, phase: str) -> float:
        return float(sum(s.length for s in self._queue(node_id, phase)))

    def queue_depth(self) -> int:
        return (sum(len(q) for q in self._queues.values())
                + sum(len(q) for q in self._recovery.values()))

    def recovery_nodes(self) -> List[int]:
        # Only survivors that were actually assigned re-execution work run
        # a recovery pipeline (matches the pre-refactor engine).
        return sorted(n for n, q in self._recovery.items() if q)
