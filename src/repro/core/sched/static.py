"""Static file-affinity policy — the pre-refactor behaviour, extracted.

The whole split→node mapping is computed up front by
:func:`repro.core.sched.affinity.affinity_assign` (greedy
least-loaded-replica with deterministic tie-breaking) and each node then
drains its own queue in order.  Nothing rebalances at runtime: a node
that finishes early idles, exactly as the original coordinator-driven
engine behaved.  This is the compatibility baseline every differential
test pins.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence

from repro.core.sched.affinity import affinity_assign
from repro.core.sched.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import Split
    from repro.core.io import StorageBackend

__all__ = ["StaticAffinityScheduler"]


class StaticAffinityScheduler(Scheduler):

    name = "static-affinity"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues: Dict[int, Deque["Split"]] = {}
        self._recovery: Dict[int, Deque["Split"]] = {}

    def _plan(self, splits: Sequence["Split"], backend: "StorageBackend",
              n_nodes: int) -> None:
        # Restrict to the active subset only when one exists — the
        # unrestricted call is the pre-elastic baseline, kept verbatim.
        allowed = self.active if len(self.active) < n_nodes else None
        assignment = affinity_assign(splits, backend, n_nodes,
                                     allowed=allowed)
        self._queues = {n: deque(q) for n, q in assignment.items()}

    def _plan_recovery(self, splits: Sequence["Split"],
                       backend: "StorageBackend",
                       survivors: List[int]) -> None:
        assignment = affinity_assign(splits, backend, self.n_nodes,
                                     allowed=survivors)
        self._recovery = {n: deque(q) for n, q in assignment.items() if q}

    def _queue(self, node_id: int, phase: str) -> Deque["Split"]:
        source = self._recovery if phase == "recovery" else self._queues
        return source.get(node_id, deque())

    def _peek(self, node_id: int, phase: str) -> Optional["Split"]:
        queue = self._queue(node_id, phase)
        return queue[0] if queue else None

    def _take(self, node_id: int, split: "Split", phase: str) -> None:
        queue = self._queue(node_id, phase)
        assert queue and queue[0] is split
        queue.popleft()

    def _backlog_cost(self, node_id: int, phase: str) -> float:
        return float(sum(s.length for s in self._queue(node_id, phase)))

    def queue_depth(self) -> int:
        return (sum(len(q) for q in self._queues.values())
                + sum(len(q) for q in self._recovery.values()))

    def recovery_nodes(self) -> List[int]:
        # Only survivors that were actually assigned re-execution work run
        # a recovery pipeline (matches the pre-refactor engine).
        return sorted(n for n, q in self._recovery.items() if q)

    # -- elastic membership ------------------------------------------------
    # The static mapping is the one policy with no runtime pull freedom,
    # so membership changes must *rebalance the mapping itself*: on a
    # join every not-yet-pulled split is re-assigned over the new active
    # set (the joiner steals its affinity share), and on a leave the
    # departing node's queued splits are re-spread over the remainder.

    def _node_joined(self, node_id: int) -> None:
        remaining = [s for _, q in sorted(self._queues.items()) for s in q]
        if not remaining or self._backend is None:
            return
        remaining.sort(key=lambda s: s.index)
        assignment = affinity_assign(remaining, self._backend, self.n_nodes,
                                     allowed=self.active)
        self._queues = {n: deque(q) for n, q in assignment.items()}

    def _node_left(self, node_id: int) -> None:
        orphaned = list(self._queues.pop(node_id, ()))
        orphaned.extend(self._recovery.pop(node_id, ()))
        if not orphaned or self._backend is None or not self.active:
            return
        orphaned.sort(key=lambda s: s.index)
        assignment = affinity_assign(orphaned, self._backend, self.n_nodes,
                                     allowed=self.active)
        for n, q in assignment.items():
            if q:
                self._queues.setdefault(n, deque()).extend(q)
