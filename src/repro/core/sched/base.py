"""The Scheduler interface: pluggable placement of map/reduce operations.

Placement used to be hard-coded in two places — a one-shot static
split→node mapping computed by the coordinator before the job started,
and a private copy of the same affinity logic in the recovery path.  The
:class:`Scheduler` extracts both behind a pull-based interface:

* **planning** — :meth:`plan` seeds the policy with the job's splits (and
  :meth:`plan_recovery` with the splits a crash forces to re-execute);
* **work acquisition** — each map pipeline pulls its next split with
  :meth:`next_for` (or, for multi-device nodes, the waiting-capable
  :meth:`pool_acquire`), so placement decisions happen at *runtime* under
  whatever policy is installed;
* **re-homing & speculation** — a dead node's partitions move to
  survivors through :meth:`rehome`, and speculative copies pick their
  helper node through :meth:`pick_helper`, so fault tolerance is a
  scheduler re-enqueue rather than bespoke assignment code;
* **elastic membership** — :meth:`node_joined` / :meth:`node_left`
  maintain the policy's active set mid-job: a joining node starts
  pulling queued work through the same ``next_for`` seam (the pull
  interface is what makes joins zero engine change), and a leaving
  node's queued work flows back to the remaining actives;
* **observability** — every placement leaves a zero-length
  ``sched.place`` span on the timeline (exported to the Chrome trace),
  locality hits/misses and a per-node placement histogram accumulate in
  :meth:`stats`, and a live telemetry hub gets queue-depth gauges.

Heterogeneous device pools
--------------------------

A node may run several pipelines concurrently (e.g. CPU+GPU).  Each
pipeline registers its device with :meth:`register_device` and acquires
work through :meth:`pool_acquire`, which adds a speed-aware gate on top
of the policy's choice: the pool's fastest device pulls freely (keeping
its pipeline prefetched), while a slower device keeps at most one
operation in flight and *retires* — ends its pipeline — once a single
operation on it would take longer than the rest of the pool needs to
drain everything that is left.  That gate is what lets a 20x-slower CPU
contribute its proportional share without ever extending the makespan
by hoarding tail operations.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Dict, Generator, List, Optional,
                    Sequence)

from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

from repro.core.sched.affinity import holders_by_split

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coordinator import ShuffleRegistry, Split
    from repro.core.io import StorageBackend

__all__ = ["Scheduler"]


class _PoolDevice:
    """Per-(node, device) accounting for the heterogeneous-pool gate."""

    __slots__ = ("key", "speed", "order", "pending", "retired")

    def __init__(self, key: str, speed: float, order: int):
        self.key = key
        self.speed = max(speed, 1e-9)
        self.order = order
        self.pending = 0.0        # granted-but-unfinished cost (bytes)
        self.retired = False


class Scheduler:
    """Base class: shared bookkeeping + the policy hooks.

    Policies implement ``_plan`` / ``_plan_recovery`` (seed the queues),
    ``_peek`` / ``_take`` (choose and consume the next operation for a
    node) and ``_backlog_cost`` (bytes a node could still pull — the
    pool gate's drain estimate).
    """

    name = "?"

    def __init__(self, sim: Optional[Simulator] = None,
                 timeline: Optional[Timeline] = None):
        self.sim = sim
        self.timeline = timeline
        self.n_nodes = 0
        self.active: List[int] = []
        self._backend: Optional["StorageBackend"] = None
        self.joins = 0
        self.leaves = 0
        self.placements = 0
        self.locality_hits = 0
        self.locality_misses = 0
        self.speculative_placements = 0
        self.placements_by_node: Dict[str, int] = {}
        self._holders: Dict[int, frozenset] = {}
        self._pools: Dict[int, Dict[str, _PoolDevice]] = {}
        self._pool_waiters: Dict[int, List[Event]] = {}
        self._gauges_done = False
        self._gate_seq = 0

    # -- planning ----------------------------------------------------------
    def plan(self, splits: Sequence["Split"], backend: "StorageBackend",
             n_nodes: int, active: Optional[Sequence[int]] = None) -> None:
        """Seed the policy with the job's map operations.

        ``active`` restricts initial placement to an explicit node subset
        (elastic jobs start on part of the hardware); ``None`` means all
        ``n_nodes`` participate, the classic behavior."""
        self.n_nodes = n_nodes
        self.active = sorted(active) if active is not None \
            else list(range(n_nodes))
        self._backend = backend
        self._holders.update(holders_by_split(splits, backend))
        self._plan(splits, backend, n_nodes)
        self._register_gauges()

    def plan_recovery(self, splits: Sequence["Split"],
                      backend: "StorageBackend",
                      survivors: Sequence[int]) -> None:
        """Enqueue the splits a node crash forces to re-execute."""
        self._holders.update(holders_by_split(splits, backend))
        self._plan_recovery(splits, backend, sorted(survivors))

    # -- elastic membership ------------------------------------------------
    def node_joined(self, node_id: int) -> None:
        """A standby node became active mid-job: admit it to the active
        set and let the policy fold it into its queues.  The node starts
        pulling work through the ordinary ``next_for`` path immediately
        after."""
        if node_id not in self.active:
            self.active = sorted(set(self.active) | {node_id})
        self.joins += 1
        self._node_joined(node_id)

    def node_left(self, node_id: int) -> None:
        """An active node is draining out: drop it from the active set
        and let the policy re-route its queued (not-yet-pulled) work."""
        self.active = [n for n in self.active if n != node_id]
        self.leaves += 1
        self._node_left(node_id)

    def _node_joined(self, node_id: int) -> None:
        """Policy hook; the default (global-pool policies) needs nothing —
        a pull from the new node just works."""

    def _node_left(self, node_id: int) -> None:
        """Policy hook; the default (global-pool policies) needs nothing —
        the departed node simply stops pulling."""

    # -- policy hooks ------------------------------------------------------
    def _plan(self, splits: Sequence["Split"], backend: "StorageBackend",
              n_nodes: int) -> None:
        raise NotImplementedError

    def _plan_recovery(self, splits: Sequence["Split"],
                       backend: "StorageBackend",
                       survivors: List[int]) -> None:
        raise NotImplementedError

    def _peek(self, node_id: int, phase: str) -> Optional["Split"]:
        """The operation the policy would hand ``node_id`` next (no pop)."""
        raise NotImplementedError

    def _take(self, node_id: int, split: "Split", phase: str) -> None:
        """Consume a peeked operation (it was granted)."""
        raise NotImplementedError

    def _backlog_cost(self, node_id: int, phase: str) -> float:
        """Bytes of queued work ``node_id`` could still acquire."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        """Operations still awaiting placement (the telemetry gauge)."""
        raise NotImplementedError

    def recovery_nodes(self) -> List[int]:
        """Survivors that should run a recovery pipeline."""
        raise NotImplementedError

    # -- work acquisition --------------------------------------------------
    def next_for(self, node_id: int, phase: str = "map"
                 ) -> Optional["Split"]:
        """Pull the next operation for a single-device node pipeline."""
        split = self._peek(node_id, phase)
        if split is None:
            return None
        self._take(node_id, split, phase)
        self._note_place(node_id, split, phase)
        return split

    def register_device(self, node_id: int, key: str, speed: float) -> None:
        """Declare one device of ``node_id``'s pool (``speed`` is a
        relative throughput proxy, e.g. effective GFLOP/s)."""
        pool = self._pools.setdefault(node_id, {})
        if key not in pool:
            pool[key] = _PoolDevice(key, speed, order=len(pool))

    def note_done(self, node_id: int, key: Optional[str],
                  cost: float) -> None:
        """A granted operation completed on ``(node_id, key)`` — shrink
        the device's in-flight backlog and wake pool waiters."""
        if key is None:
            return
        dev = self._pools.get(node_id, {}).get(key)
        if dev is None:
            return
        dev.pending = max(0.0, dev.pending - cost)
        self._fire_pool(node_id)

    def pool_acquire(self, node_id: int, key: str, phase: str = "map"
                     ) -> Generator:
        """Pull work for one device of a multi-device node (process-style:
        may yield simulation events while waiting for the gate).

        Returns the granted split, or ``None`` when this device is done
        for good (pool drained, or the device retired because the rest of
        the pool absorbs the remainder faster).
        """
        pool = self._pools[node_id]
        me = pool[key]
        while True:
            split = self._peek(node_id, phase)
            if split is None:
                me.retired = True
                self._fire_pool(node_id)
                return None
            rest = [d for d in pool.values()
                    if d.key != key and not d.retired]
            fastest = not rest or all(
                (me.speed, -me.order) >= (d.speed, -d.order) for d in rest)
            if not fastest:
                if me.pending > 0:
                    # One operation in flight is this device's limit: a
                    # slow pipeline prefetching would hoard tail work.
                    t_gate = self.sim.now
                    yield self._pool_wait(node_id)
                    self._note_gate_wait(node_id, key, t_gate)
                    continue
                cost = float(split.length)
                rest_speed = sum(d.speed for d in rest)
                rest_load = (sum(d.pending for d in rest)
                             + self._backlog_cost(node_id, phase))
                if cost / me.speed > rest_load / rest_speed:
                    # Taking this op here would outlast the rest of the
                    # pool draining everything — bow out.
                    me.retired = True
                    self._fire_pool(node_id)
                    return None
            self._take(node_id, split, phase)
            me.pending += float(split.length)
            self._note_place(node_id, split, phase, device=key)
            return split

    def _note_gate_wait(self, node_id: int, key: str, t_gate: float) -> None:
        """A slow device sat at the pool gate from ``t_gate`` until now.

        Recorded as a zero-length ``sched.gate`` span at the release
        instant plus a matching ``pool-gate`` wait edge, so the causal
        profiler attributes the throttling to the device pool."""
        if self.timeline is None or self.sim is None:
            return
        now = self.sim.now
        if now <= t_gate:
            return
        self._gate_seq += 1
        name = f"node{node_id}"
        self.timeline.record("sched.gate", name, now, now,
                             t_req=t_gate, device=key, policy=self.name,
                             op=self._gate_seq)
        self.timeline.record_wait("pool-gate", f"{name}.pool",
                                  "sched.gate", name, t_gate, now,
                                  device=key, op=self._gate_seq)

    def _pool_wait(self, node_id: int) -> Event:
        ev = Event(self.sim)
        self._pool_waiters.setdefault(node_id, []).append(ev)
        return ev

    def _fire_pool(self, node_id: int) -> None:
        waiters = self._pool_waiters.pop(node_id, [])
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(None)

    # -- fault tolerance ---------------------------------------------------
    def rehome(self, pid: int, survivors: Sequence[int],
               registry: Optional["ShuffleRegistry"] = None) -> int:
        """New owner for a dead node's partition (deterministic spread —
        the pre-refactor behaviour; load-aware policies override)."""
        return survivors[pid % len(survivors)]

    def pick_helper(self, exclude: int, alive_nodes: Sequence[int],
                    active: Dict[int, int],
                    split_index: Optional[int] = None) -> Optional[int]:
        """Node to run a speculative copy on: least-loaded survivor other
        than ``exclude`` (``active`` counts running copies per node)."""
        candidates = [n for n in alive_nodes if n != exclude]
        if not candidates:
            return None
        helper = min(candidates, key=lambda n: (active[n], n))
        self._note_speculative(helper, split_index)
        return helper

    def _note_speculative(self, node_id: int,
                          split_index: Optional[int]) -> None:
        self.speculative_placements += 1
        name = f"node{node_id}"
        self.placements_by_node[name] = \
            self.placements_by_node.get(name, 0) + 1
        if self.timeline is not None and self.sim is not None:
            meta: Dict[str, Any] = dict(phase="speculative", policy=self.name)
            if split_index is not None:
                meta["split"] = split_index
            self.timeline.record("sched.place", name,
                                 self.sim.now, self.sim.now, **meta)

    # -- observability -----------------------------------------------------
    def _note_place(self, node_id: int, split: "Split", phase: str,
                    device: Optional[str] = None) -> None:
        holders = self._holders.get(split.index)
        local: Optional[bool] = None
        if holders is not None:
            local = node_id in holders
            if local:
                self.locality_hits += 1
            else:
                self.locality_misses += 1
        self.placements += 1
        name = f"node{node_id}"
        self.placements_by_node[name] = \
            self.placements_by_node.get(name, 0) + 1
        if self.timeline is not None and self.sim is not None:
            meta: Dict[str, Any] = dict(split=split.index, phase=phase,
                                        policy=self.name)
            if local is not None:
                meta["local"] = local
            if device is not None:
                meta["device"] = device
            self.timeline.record("sched.place", name,
                                 self.sim.now, self.sim.now, **meta)

    def place_reduce(self, node_id: int, pids: Sequence[int],
                     device: Optional[str] = None) -> None:
        """Record the reduce-side placements (partition data is local to
        its owner, so these are locality hits by construction)."""
        name = f"node{node_id}"
        self.placements += len(pids)
        self.placements_by_node[name] = \
            self.placements_by_node.get(name, 0) + len(pids)
        if self.timeline is not None and self.sim is not None:
            meta: Dict[str, Any] = dict(phase="reduce", policy=self.name,
                                        partitions=len(pids))
            if device is not None:
                meta["device"] = device
            self.timeline.record("sched.place", name,
                                 self.sim.now, self.sim.now, **meta)

    @property
    def locality_hit_rate(self) -> Optional[float]:
        """Fraction of locality-aware placements that hit a replica
        holder (``None`` when the backend exposes no locality)."""
        total = self.locality_hits + self.locality_misses
        if not total:
            return None
        return self.locality_hits / total

    def stats(self) -> Dict[str, Any]:
        """Placement counters for the job's stats block / report."""
        return {
            "scheduler": self.name,
            "sched_joins": self.joins,
            "sched_leaves": self.leaves,
            "placements": self.placements,
            "locality_hits": self.locality_hits,
            "locality_misses": self.locality_misses,
            "locality_hit_rate": self.locality_hit_rate,
            "speculative_placements": self.speculative_placements,
            "placements_by_node": dict(sorted(
                self.placements_by_node.items())),
        }

    def _register_gauges(self) -> None:
        tele = getattr(self.timeline, "telemetry", None) \
            if self.timeline is not None else None
        if tele is None or self._gauges_done:
            return
        self._gauges_done = True
        tele.gauge("glasswing_sched_queue_depth",
                   help="operations awaiting placement",
                   probe=self.queue_depth, policy=self.name)
        tele.gauge("glasswing_sched_local_placements",
                   help="placements that hit a local replica",
                   probe=lambda: self.locality_hits, policy=self.name)
        tele.gauge("glasswing_sched_remote_placements",
                   help="placements that missed every local replica",
                   probe=lambda: self.locality_misses, policy=self.name)
