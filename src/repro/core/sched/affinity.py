"""File-affinity placement primitives (shared by every policy).

"Glasswing's scheduler considers file affinity in its job allocation."
The greedy least-loaded-replica assignment lived in
``repro.core.coordinator`` before the scheduling layer was extracted;
it moved here verbatim so the static policy, the recovery path and the
dynamic policies' locality checks all share one implementation.

Tie-breaking is deterministic by construction: among equally loaded
replica holders the lowest node id wins (``min`` keyed by
``(load, node_id)``), so the assignment is invariant under any
permutation of the backend's replica lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.coordinator import Split
    from repro.core.io import StorageBackend
    from repro.storage.dfs import BlockLocation

__all__ = ["affinity_assign", "replica_holders", "holders_by_split"]


def replica_holders(locs: Sequence["BlockLocation"],
                    offset: int) -> List[int]:
    """Nodes holding a replica of the block covering ``offset``."""
    for loc in locs:
        if loc.offset <= offset < loc.offset + max(loc.length, 1):
            return list(loc.replicas)
    return []


def holders_by_split(splits: Sequence["Split"], backend: "StorageBackend"
                     ) -> Dict[int, frozenset]:
    """Split index -> replica-holder node set (empty map entries omitted:
    a split without locality information — node-local storage — has no
    entry, so locality hit/miss accounting can skip it)."""
    locations: Dict[str, List["BlockLocation"]] = {}
    holders: Dict[int, frozenset] = {}
    for split in splits:
        if split.path not in locations:
            locations[split.path] = backend.locations(split.path) or []
        nodes = replica_holders(locations[split.path], split.offset)
        if nodes:
            holders[split.index] = frozenset(nodes)
    return holders


def affinity_assign(splits: Sequence["Split"], backend: "StorageBackend",
                    n_nodes: int,
                    allowed: Optional[Sequence[int]] = None
                    ) -> Dict[int, List["Split"]]:
    """Map each split to a node, preferring replica holders (affinity).

    Greedy least-loaded-replica assignment; falls back to round-robin when
    the backend has no locality information.  ``allowed`` restricts the
    eligible nodes (recovery schedules only onto survivors); affinity is
    kept for replicas on eligible nodes.
    """
    eligible = list(range(n_nodes)) if allowed is None else sorted(allowed)
    if not eligible:
        raise ValueError("no eligible nodes to assign splits to")
    eligible_set = set(eligible)
    assignment: Dict[int, List["Split"]] = {n: [] for n in eligible}
    locations: Dict[str, List["BlockLocation"]] = {}
    for split in splits:
        if split.path not in locations:
            locations[split.path] = backend.locations(split.path) or []
        candidates = [n for n in replica_holders(locations[split.path],
                                                 split.offset)
                      if n in eligible_set]
        if candidates:
            node = min(candidates, key=lambda nid: (len(assignment[nid]), nid))
        else:
            node = eligible[split.index % len(eligible)]
        assignment[node].append(split)
    return assignment
