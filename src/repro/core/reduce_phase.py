"""The reduce-phase pipeline instantiation (§III-C of the paper).

Stage bodies:

1. **Input** — perform the last multi-way merge over a partition's runs
   (memory-cached + on-disk) and emit chunks of grouped keys.  The reduce
   reader "supplies the pipeline with a consistent view of the
   intermediate data".
2. **Stage** / 4. **Retrieve** — host<->device transfers, disabled for
   unified memory.
3. **Kernel** — reduce ``concurrent_keys`` keys in parallel, each kernel
   thread processing ``keys_per_thread`` keys sequentially (the Figure-5
   amortisation of launch overhead).  Keys whose value list exceeds the
   per-launch budget relaunch with scratch-buffer state (§III-C).
5. **Output** — write final pairs to persistent storage with the
   configured replication.

TeraSort-style ``map_only_output`` jobs use an identity kernel of zero
cost: their output is fully determined by the shuffle's total order.

Reduce-task crashes (§III-E) retry in place: the partition's intermediate
runs are durable in the node's cache/disk, so a restarted attempt charges
its partial kernel work, re-fetches its input (disk re-read, decompress,
merge, group), backs off and relaunches — same ``max_attempts`` ceiling
as map tasks.  The real reduction runs once either way, so output is
byte-identical to the fault-free run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.hw.node import Node
from repro.ocl.kernel import KernelCost
from repro.ocl.runtime import Buffer, Context, Device
from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.batching import apportion_bytes, resolve_batch_size
from repro.core.config import JobConfig
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.data import KeyGroupChunk, ReduceOutput
from repro.core.faults import FaultPlan, TaskFailedError
from repro.core.intermediate import IntermediateManager
from repro.core.io import StorageBackend
from repro.core.pipeline import Pipeline

__all__ = ["ReducePhase"]


@dataclass
class _ReduceItem:
    """Work descriptor for one reduce-input chunk of one partition."""

    index: int
    pid: int
    groups: List[Tuple[Any, List[Any]]]
    nbytes: int          # serialized size of the groups (raw)
    disk_bytes: int      # compressed bytes this chunk pulls off disk
    disk_raw: int        # their inflated size (decompression cost basis)
    merge_items: int     # pairs moved through the final merge for this chunk
    #: kernel launches this item carries.  The modeled launch geometry is
    #: ``concurrent_keys * keys_per_thread`` keys per launch; when
    #: ``batch_size`` simulates a launch as several smaller items, only
    #: the launch window's first item charges the overhead.
    launches: int = 1
    #: keys of the whole modeled launch window (thread-count basis)
    window_keys: int = 0
    #: id of the modeled launch window this item belongs to; output writes
    #: coalesce per window (one ``write_chunk`` per modeled launch), so the
    #: per-call costs — JNI charge, replica-message latency — stay those of
    #: the modeled system, not of the simulation granularity.
    window_id: int = 0
    #: True for the window's final sub-item (it pays the output write)
    last: bool = True


class ReducePhase:
    """One node's reduce pipeline over its owned partitions."""

    def __init__(self, sim: Simulator, node: Node, device: Device,
                 app: MapReduceApp, config: JobConfig,
                 backend: StorageBackend, timeline: Timeline,
                 manager: IntermediateManager,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 faults: FaultPlan | None = None,
                 pids: Optional[Sequence[int]] = None):
        self.sim = sim
        self.node = node
        self.device = device
        self.app = app
        self.config = config
        self.backend = backend
        self.timeline = timeline
        self.manager = manager
        self.costs = costs
        self.faults = faults
        # ``pids`` restricts this pipeline to a subset of the manager's
        # owned partitions (device pools split a node's partitions across
        # several concurrent reduce pipelines); ``None`` keeps them all.
        self.pids = list(pids) if pids is not None else None
        self.output_pairs: dict[int, list] = {}
        self.keys_reduced = 0
        self._pid_by_index: dict[int, int] = {}
        self._items_by_index: dict[int, _ReduceItem] = {}
        self._first_index_of_pid: dict[int, int] = {}
        self._window_bytes: dict[int, int] = {}
        items = self._plan_items()
        stage_fn = None if device.spec.unified_memory else self._stage
        retrieve_fn = None if device.spec.unified_memory else self._retrieve
        # Device buffers for the reduce pipeline's slots (real OpenCL
        # memory accounting, as in the map phase).
        self._ctx: "Context | None" = None
        self._buffers: List[Buffer] = []
        if not device.spec.unified_memory:
            self._ctx = Context(sim, [device])
            for group in ("in", "out"):
                for i in range(config.buffering):
                    self._buffers.append(self._ctx.alloc_buffer(
                        device, config.chunk_size,
                        name=f"{node.name}.reduce.{group}{i}"))
        self.pipeline = Pipeline(
            sim, timeline, name="reduce", instance=node.name,
            buffering=config.buffering, items=items,
            read_fn=self._read, kernel_fn=self._kernel,
            output_fn=self._write,
            stage_fn=stage_fn, retrieve_fn=retrieve_fn)

    def run(self):
        """Start the pipeline; returns its completion event."""
        return self.pipeline.run()

    def release_buffers(self) -> None:
        """Free the phase's device buffers."""
        if self._ctx is not None:
            for buf in self._buffers:
                self._ctx.release(buf)
            self._buffers = []

    # -- planning ------------------------------------------------------------
    def _plan_items(self) -> List[_ReduceItem]:
        """Merge every owned partition (real data, zero sim time) and cut
        the grouped stream into kernel-sized chunks.

        The *costs* of this merging — disk reads, decompression, merge and
        grouping CPU — are charged per chunk by the input stage, spreading
        them exactly like the streaming reader the paper describes, so the
        pipeline overlap is preserved.
        """
        cfg = self.config
        keys_per_chunk = cfg.concurrent_keys * cfg.keys_per_thread
        # Simulation granularity: batch_size (in keys) may cut one modeled
        # launch window into several smaller work items.  Launch overhead
        # and thread counts stay those of the window, so virtual time is
        # invariant; byte shares are apportioned exactly so disk counters
        # are too.
        batch = resolve_batch_size(cfg, self.app.record_format)
        step = max(1, min(keys_per_chunk, batch))
        items: List[_ReduceItem] = []
        index = 0
        wid = 0
        owned = self.pids if self.pids is not None else self.manager.owned
        for pid in owned:
            runs, disk_bytes, disk_raw = self.manager.read_partition(pid)
            if not runs:
                continue
            merged = list(_merge_pairs(self.app, runs))
            groups = _group_pairs(merged)
            run_bits = max(1, len(runs)).bit_length()
            parts: List[Tuple[List, int, int, int, bool]] = []
            for wstart in range(0, len(groups), keys_per_chunk):
                window = groups[wstart:wstart + keys_per_chunk]
                for sstart in range(0, len(window), step):
                    parts.append((window[sstart:sstart + step],
                                  1 if sstart == 0 else 0, len(window),
                                  wid, sstart + step >= len(window)))
                wid += 1
            weights = [sum(len(vs) for _, vs in part)
                       for part, *_ in parts]
            # Largest-remainder apportionment: per-item disk shares sum
            # *exactly* to the partition's stored/raw bytes at any batch
            # size, so the disk counters are invariant under re-batching.
            disk_shares = apportion_bytes(disk_bytes, weights)
            raw_shares = apportion_bytes(disk_raw, weights)
            for ((part, launches, wkeys, w_id, w_last), pairs_here,
                 d_stored, d_raw) in zip(parts, weights, disk_shares,
                                         raw_shares):
                items.append(_ReduceItem(
                    index=index, pid=pid, groups=part,
                    nbytes=self.app.inter_schema.size_of(
                        (k, v) for k, vs in part for v in vs),
                    disk_bytes=d_stored,
                    disk_raw=d_raw,
                    merge_items=pairs_here * run_bits,
                    launches=launches, window_keys=wkeys,
                    window_id=w_id, last=w_last,
                ))
                self._pid_by_index[index] = pid
                self._items_by_index[index] = items[-1]
                self._first_index_of_pid.setdefault(pid, index)
                index += 1
        # Pipeline work items are the modeled launch windows; each window
        # entry carries its sub-items (one, unless batch_size < window).
        windows: List[List[_ReduceItem]] = []
        for it in items:
            if not windows or windows[-1][-1].window_id != it.window_id:
                windows.append([])
            windows[-1].append(it)
        return windows

    # -- stage bodies ------------------------------------------------------------
    def _read(self, window: List[_ReduceItem]) -> Generator:
        chunks: List[KeyGroupChunk] = []
        for item in window:
            if item.disk_bytes:
                yield from self.node.disk.read(item.disk_bytes,
                                               stream=f"p{item.pid}")
            cpu = (self.config.compression.decompress_seconds(item.disk_raw)
                   + self.costs.merge_seconds(item.merge_items)
                   + self.costs.group_seconds(
                       sum(len(vs) for _, vs in item.groups)))
            if cpu:
                yield self.node.host_work(1, cpu, tag="reduce.read")
            chunks.append(KeyGroupChunk(index=item.index, groups=item.groups,
                                        nbytes=item.nbytes))
        return chunks if len(chunks) > 1 else chunks[0]

    def _stage(self, chunk: KeyGroupChunk) -> Generator:
        yield from self.device.transfer(chunk.nbytes, "h2d")
        return chunk

    def _kernel(self, chunk: KeyGroupChunk) -> Generator:
        cfg = self.config
        item = self._items_by_index[chunk.index]
        # Real reduction.
        out_pairs: List[Tuple[Any, Any]] = []
        if self.app.map_only_output:
            for key, values in chunk.groups:
                out_pairs.extend((key, v) for v in values)
            cost = KernelCost(launches=0)
        else:
            for key, values in chunk.groups:
                out_pairs.extend(self.app.reduce(key, values))
            # Scratch-buffer relaunches for oversized value lists (§III-C).
            relaunches = sum(len(vs) // cfg.max_values_per_launch
                             for _, vs in chunk.groups)
            base = self.app.reduce_cost(self.device.spec, chunk.n_keys,
                                        chunk.n_values)
            cost = KernelCost(flops=base.flops,
                              device_bytes=base.device_bytes,
                              atomic_intensity=base.atomic_intensity,
                              launches=item.launches + relaunches)
        # Thread count comes from the modeled launch window, which may
        # span several simulation items (batch_size < window keys).
        threads = min(item.window_keys or chunk.n_keys, cfg.concurrent_keys) \
            * cfg.reduce_threads_per_key
        if self.faults is not None:
            yield from self._rerun_reduce_failures(chunk, cost, threads)
        yield from self.device.execute_cost(cost, threads=threads)
        self.keys_reduced += chunk.n_keys
        nbytes = self.app.output_schema.size_of(out_pairs)
        return ReduceOutput(chunk_index=chunk.index, pairs=out_pairs,
                            nbytes=nbytes)

    def _rerun_reduce_failures(self, chunk: KeyGroupChunk, cost: KernelCost,
                               threads: int) -> Generator:
        """Reduce-task crash/retry bookkeeping (§III-E).

        A reduce-task failure is planned per *partition*; the first chunk
        of the partition carries it (one logical reduce task per pid).
        Each crashed attempt loses its partial kernel work and must
        re-fetch its input from the durable intermediate runs before the
        relaunch.
        """
        pid = self._pid_by_index[chunk.index]
        if self._first_index_of_pid.get(pid) != chunk.index:
            return
        attempt = 0
        while self.faults.should_fail_reduce(pid, attempt):
            progress = self.faults.progress_for(pid, attempt)
            start = self.sim.now
            yield from self.device.execute_cost(cost.scaled(progress),
                                                threads=threads)
            # Restart: pull the chunk's share of the partition back off
            # disk and redo the decompress/merge/group work the reader
            # already charged once.
            item = self._items_by_index[chunk.index]
            if item.disk_bytes:
                yield from self.node.disk.read(item.disk_bytes,
                                               stream=f"p{pid}.retry")
            cpu = (self.config.compression.decompress_seconds(item.disk_raw)
                   + self.costs.merge_seconds(item.merge_items)
                   + self.costs.group_seconds(
                       sum(len(vs) for _, vs in item.groups)))
            if cpu:
                yield self.node.host_work(1, cpu, tag="reduce.retry")
            wasted = self.sim.now - start
            self.faults.record(pid, attempt, self.node.name, self.sim.now,
                               wasted, kind="reduce")
            self.timeline.record("reduce.task_failure", self.node.name,
                                 start, self.sim.now, pid=pid,
                                 attempt=attempt)
            attempt += 1
            if attempt >= self.config.max_attempts:
                raise TaskFailedError(
                    f"reduce task for partition {pid} failed {attempt} "
                    f"attempts (max_attempts={self.config.max_attempts})")
            backoff = self.config.backoff_base * (2 ** (attempt - 1))
            if backoff > 0:
                yield self.sim.timeout(backoff)

    def _retrieve(self, out: ReduceOutput) -> Generator:
        yield from self.device.transfer(out.nbytes, "d2h")
        return out

    def _write(self, out: ReduceOutput) -> Generator:
        pid = self._pid_by_index[out.chunk_index]
        item = self._items_by_index[out.chunk_index]
        # One write per modeled launch window: sub-items bank their bytes
        # and the window's last one issues the (replicated) append, so the
        # write-call count — and its per-call JNI/replica-latency costs —
        # does not depend on the simulation batch size.
        banked = self._window_bytes.pop(item.window_id, 0) + out.nbytes
        if item.last:
            yield from self.backend.write_chunk(
                self.node.node_id, banked, self.config.output_replication)
        else:
            self._window_bytes[item.window_id] = banked
        self.output_pairs.setdefault(pid, []).extend(out.pairs)
        return out


def _merge_pairs(app: MapReduceApp, runs) -> Generator:
    """Real multi-way merge of sorted runs (heap-based, stable enough).

    A single run is already in order — the common case on large clusters,
    where each partition receives one run per mapper that touched it —
    so it skips the heap (and its per-item key calls) entirely.
    """
    if len(runs) == 1:
        return iter(runs[0].pairs)
    import heapq
    return heapq.merge(*[r.pairs for r in runs],
                       key=lambda kv: app.sort_key(kv[0]))


def _group_pairs(pairs: List[Tuple[Any, Any]]) -> List[Tuple[Any, List[Any]]]:
    """Group a sorted pair stream into (key, [values]) entries."""
    groups: List[Tuple[Any, List[Any]]] = []
    for key, vals in itertools.groupby(pairs, key=lambda kv: kv[0]):
        groups.append((key, [v for _, v in vals]))
    return groups
