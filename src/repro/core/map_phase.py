"""The map-phase pipeline instantiation (§III-A of the paper).

Stage bodies:

1. **Input** — read one split from storage, cut it into records.
2. **Stage** — deliver the chunk to the compute device (disabled for
   unified-memory devices).
3. **Kernel** — run the application's map function over the whole chunk in
   parallel, collect output through the configured collector (hash table
   with optional combiner, or shared buffer pool).
4. **Retrieve** — bring the produced pairs back to host memory (disabled
   for unified memory).
5. **Output/Partition** — sort the pairs, cut them into Partitions, write
   all of them to local disk for durability, then push each Partition to
   its owner node (local ones join the in-memory cache directly; remote
   ones travel the network asynchronously).

Fault tolerance (§III-E) threads through every stage body:

* the kernel stage retries crashed task attempts with per-attempt
  progress, exponential backoff and a ``max_attempts`` ceiling;
* straggling splits run their kernel at a plan-given slowdown, and the
  :class:`~repro.core.recovery.SpeculationController` may race a
  speculative copy on another node — first finisher wins, the loser is
  interrupted;
* the output stage registers the durable spill copy and every delivery
  with the job's :class:`~repro.core.coordinator.ShuffleRegistry`, which
  is what makes node-crash recovery pure bookkeeping;
* pushes check cluster health and report whether the payload actually
  reached a live owner.

A ``recovery`` phase (re-executing a dead node's splits) additionally
skips buckets the ledger already shows delivered to surviving managers,
so re-execution never duplicates data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Tuple

from repro.hw.node import Node
from repro.net.transport import Network
from repro.ocl.runtime import Buffer, Context, Device
from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.batching import apportion_bytes, resolve_batch_size, \
    slice_batches
from repro.core.collector import KeyInterner, collect_map_output
from repro.core.config import JobConfig
from repro.core.coordinator import ShuffleRegistry, Split
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts, sort_seconds
from repro.core.data import Chunk, MapOutput, SortedRun
from repro.core.faults import ClusterHealth, FaultPlan, TaskFailedError
from repro.core.intermediate import IntermediateManager
from repro.core.io import StorageBackend
from repro.core.pipeline import Pipeline
from repro.core.sched import Scheduler
from repro.core.splitread import read_split_records

__all__ = ["MapPhase"]


@dataclass
class _SplitAccumulator:
    """Partition-stage state of a split processed as several batches.

    Buckets fill batch by batch; the per-split work that must see the
    whole split (bucket sort, compression, the durable spill, registry
    bookkeeping, pushes) runs once when the last batch arrives.  A node
    crash mid-split simply drops the accumulator with the pipeline — the
    split was never marked durable, so recovery re-executes it whole and
    no partial batch is ever delivered twice.
    """

    buckets: Dict[int, List] = field(default_factory=dict)
    raw_bytes: int = 0
    decode_items: int = 0


class MapPhase:
    """One node's map pipeline plus its partition-push bookkeeping."""

    def __init__(self, sim: Simulator, node: Node, device: Device,
                 app: MapReduceApp, config: JobConfig,
                 backend: StorageBackend, timeline: Timeline,
                 scheduler: Scheduler,
                 managers: Dict[int, IntermediateManager],
                 network: Network,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 faults: FaultPlan | None = None,
                 health: ClusterHealth | None = None,
                 registry: ShuffleRegistry | None = None,
                 speculation: Optional["SpeculationController"] = None,
                 recovery: bool = False,
                 device_key: Optional[str] = None,
                 meter=None):
        self.sim = sim
        self.node = node
        self.device = device
        self.app = app
        self.config = config
        self.backend = backend
        self.timeline = timeline
        self.scheduler = scheduler
        self.managers = managers          # node_id -> manager (all nodes)
        self.network = network
        self.n_nodes = len(managers)
        self.costs = costs
        self.faults = faults
        self.health = health
        self.registry = registry
        self.speculation = speculation
        self.recovery = recovery
        #: optional per-tenant TrafficMeter threading through every push
        self.meter = meter
        # ``device_key`` marks this pipeline as one member of a multi-
        # device pool: work is then acquired through the scheduler's
        # waiting-capable pool gate instead of the plain per-node pull.
        self.device_key = device_key
        self.phase_kind = "recovery" if recovery else "map"
        self._splits_by_index: Dict[int, Split] = {}
        self.push_procs: List = []        # in-flight remote pushes
        self.records_mapped = 0
        self.pairs_emitted = 0
        # Batched hot path: records per pipeline payload (the split is the
        # ceiling — the autotuned default never slices).
        self.batch_records = resolve_batch_size(config, app.record_format)
        self._split_totals: Dict[int, Tuple[int, int]] = {}
        self._acc: Dict[int, _SplitAccumulator] = {}
        self._interner = KeyInterner() if config.collector == "hash" else None
        stage_fn = None if device.spec.unified_memory else self._stage
        retrieve_fn = None if device.spec.unified_memory else self._retrieve
        # Real device-buffer allocation: the §III-D trade-off ("more
        # buffers ... may be a limited resource for GPUs") is enforced by
        # the OpenCL layer's memory accounting, not by a separate check.
        self._ctx: Context | None = None
        self._buffers: List[Buffer] = []
        if not device.spec.unified_memory:
            self._ctx = Context(sim, [device])
            for group in ("in", "out"):
                for i in range(config.buffering):
                    self._buffers.append(self._ctx.alloc_buffer(
                        device, config.chunk_size,
                        name=f"{node.name}.map.{group}{i}"))
        name = "map.recovery" if recovery else "map"
        if device_key is None:
            # Classic shape: one pipeline per node, pulling splits from
            # the scheduler as the input stage becomes ready for them.
            items = self._feed()
            read_fn = self._read
        else:
            # Device pool: the read body itself negotiates with the
            # scheduler's pool gate (it may wait, or end the stream).
            scheduler.register_device(node.node_id, device_key,
                                      device.spec.gflops)
            items = itertools.count()
            read_fn = self._read_pooled
        self.pipeline = Pipeline(
            sim, timeline, name=name, instance=node.name,
            buffering=config.buffering, items=items,
            read_fn=read_fn, kernel_fn=self._kernel,
            output_fn=self._partition,
            stage_fn=stage_fn, retrieve_fn=retrieve_fn)

    def _feed(self):
        """Lazy work acquisition: ask the scheduler for the next split
        only when the input stage is ready to read it."""
        while True:
            split = self.scheduler.next_for(self.node.node_id,
                                            self.phase_kind)
            if split is None:
                return
            self._splits_by_index[split.index] = split
            yield split

    def release_buffers(self) -> None:
        """Free the phase's device buffers (the engine calls this when
        the map phase completes, before the reduce phase allocates)."""
        if self._ctx is not None:
            for buf in self._buffers:
                self._ctx.release(buf)
            self._buffers = []

    def run(self):
        """Start the pipeline; returns its completion event."""
        return self.pipeline.run()

    def kill(self) -> None:
        """Node crash: stop the pipeline and every in-flight push."""
        self.pipeline.kill()
        for proc in self.push_procs:
            if proc.is_alive:
                proc.interrupt("node crash")

    # -- stage bodies ------------------------------------------------------
    def _read_pooled(self, _seq: int) -> Generator:
        """Input body for one device of a multi-device pool: acquire the
        next operation through the scheduler's gate (which may wait for
        in-flight work to drain, or retire this device)."""
        split = yield from self.scheduler.pool_acquire(
            self.node.node_id, self.device_key, self.phase_kind)
        if split is None:
            return Pipeline.END
        self._splits_by_index[split.index] = split
        return (yield from self._read(split))

    def _read(self, split: Split) -> Generator:
        records, nbytes = yield from read_split_records(
            self.backend, self.node.node_id, split, self.app.record_format)
        self._split_totals[split.index] = (len(records), nbytes)
        if len(records) <= self.batch_records:
            return Chunk(index=split.index, records=records, nbytes=nbytes)
        # Fine-grained simulation: slice the split into batch payloads.
        # The read itself (and its I/O cost, already charged above)
        # happened once; byte shares are apportioned exactly so input
        # counters are invariant under re-batching.
        batches = slice_batches(records, self.batch_records)
        sizes = apportion_bytes(nbytes, [len(b) for b in batches])
        chunks: List[Chunk] = []
        offset = 0
        for i, (recs, size) in enumerate(zip(batches, sizes)):
            chunks.append(Chunk(index=split.index, records=recs, nbytes=size,
                                seq=i, last=(i == len(batches) - 1),
                                start=offset))
            offset += len(recs)
        return chunks

    def _stage(self, chunk: Chunk) -> Generator:
        yield from self.device.transfer(chunk.nbytes, "h2d")
        return chunk

    def _kernel(self, chunk: Chunk) -> Generator:
        if chunk.seq == 0:
            # Task-level fault injection: a crash costs (and restarts) the
            # whole map task, so only the split's first batch carries it.
            chunk = yield from self._rerun_failures(chunk)
        pairs = self.app.map_batch(chunk.records)      # the real map work
        self.records_mapped += len(chunk.records)
        use_combiner = self.config.use_combiner and self.app.has_combiner
        out, extra = collect_map_output(
            self.config.collector, self.app, self.device.spec, pairs,
            use_combiner, chunk.index, interner=self._interner)
        base = self.app.map_cost(self.device.spec, len(chunk.records),
                                 chunk.nbytes)
        if chunk.seq:
            # One modeled kernel launch covers the whole split; later
            # batches of that launch charge roofline work only, keeping
            # launch overhead granularity-invariant.
            base = replace(base, launches=0)
        cost = base + extra
        threads = self.config.kernel_threads
        if threads is None:
            threads = self.app.preferred_threads(self.device.spec)
        slow = self.faults.slowdown_for(chunk.index) if self.faults else 1.0
        charged = cost.scaled(slow) if slow != 1.0 else cost
        start = self.sim.now
        if self.speculation is None:
            yield from self.device.execute_cost(charged, threads=threads)
        else:
            yield from self._race_speculative(chunk, charged, threads)
            self.speculation.observe(self.sim.now - start)
        self.pairs_emitted += len(out.pairs)
        out.seq = chunk.seq
        out.last = chunk.last
        return out

    def _race_speculative(self, chunk: Chunk, charged, threads) -> Generator:
        """First-finisher-wins race between the local kernel launch and a
        speculative copy on another node (launched only if the local copy
        overruns the controller's straggler threshold).

        The watchdog re-arms: while the cohort has completed too few
        launches for a trustworthy mean, it sleeps until the next launch
        finishes anywhere, then re-evaluates how far this one has overrun.
        """
        sim = self.sim
        spec = self.speculation
        start = sim.now
        local = sim.process(
            self.device.execute_cost(charged, threads=threads),
            name=f"{self.node.name}.map.k{chunk.index}")
        slept_for = None    # last threshold we slept out in full
        while local.is_alive:
            threshold = spec.threshold()
            if threshold is None:
                yield sim.any_of([local, spec.progress_event()])
                continue
            remaining = threshold - (sim.now - start)
            # Only sleep when this threshold hasn't been slept out yet:
            # float rounding can leave ``remaining`` a few ulps above zero
            # after the timer fires, which must not re-arm it.
            if remaining > 0 and threshold != slept_for:
                slept_for = threshold
                idx, _ = yield sim.any_of([local, sim.timeout(remaining)])
                if idx == 0:
                    return    # finished within the straggler threshold
                continue
            helper = spec.pick_helper(self.node.node_id,
                                      split_index=chunk.index)
            if helper is None:
                break
            split = self._splits_by_index[chunk.index]
            copy_start = sim.now
            copy = spec.launch_copy(split, helper)
            idx2, _ = yield sim.any_of([local, copy])
            copy_won = idx2 == 1
            loser = local if copy_won else copy
            if loser.is_alive:
                loser.interrupt("lost the speculative race")
            spec.finish(helper, copy_won)
            # The loser's burn: the whole primary run if the copy won,
            # else the copy's run so far.
            wasted = (sim.now - start) if copy_won else (sim.now - copy_start)
            self.timeline.record(
                "map.speculative", self.node.name, copy_start,
                sim.now, split=chunk.index, helper=helper, won=copy_won,
                wasted=wasted)
            return
        yield local

    def _rerun_failures(self, chunk: Chunk) -> Generator:
        """Re-execution bookkeeping (§III-E): a crashing task discards its
        partial kernel work, backs off, and its input is rescheduled
        (re-read); ``max_attempts`` caps the retries."""
        if self.faults is None:
            return chunk
        attempt = 0
        total_records, total_bytes = self._split_totals.get(
            chunk.index, (len(chunk.records), chunk.nbytes))
        while self.faults.should_fail_map(chunk.index, attempt):
            # The wasted work is a fraction of the whole task's kernel,
            # regardless of how finely the simulation batches it.
            cost = self.app.map_cost(self.device.spec, total_records,
                                     total_bytes)
            progress = self.faults.progress_for(chunk.index, attempt)
            partial = cost.scaled(progress)
            start = self.sim.now
            yield from self.device.execute_cost(partial)
            wasted = self.sim.now - start
            self.faults.record(chunk.index, attempt, self.node.name,
                               self.sim.now, wasted, kind="map")
            self.timeline.record("map.task_failure", self.node.name,
                                 start, self.sim.now, split=chunk.index,
                                 attempt=attempt)
            attempt += 1
            if attempt >= self.config.max_attempts:
                raise TaskFailedError(
                    f"map task for split {chunk.index} failed "
                    f"{attempt} attempts (max_attempts="
                    f"{self.config.max_attempts})")
            backoff = self.config.backoff_base * (2 ** (attempt - 1))
            if backoff > 0:
                yield self.sim.timeout(backoff)
            # Reschedule: reload the split from (replicated) storage.
            split = self._splits_by_index[chunk.index]
            records, nbytes = yield from read_split_records(
                self.backend, self.node.node_id, split,
                self.app.record_format)
            if chunk.last and chunk.start == 0:
                chunk = Chunk(index=chunk.index, records=records,
                              nbytes=nbytes)
            else:
                # Batched split: this payload is only the first batch —
                # take back its exact record slice (the read is
                # deterministic) so the re-run neither drops nor
                # duplicates records of the other batches.
                n = len(chunk.records)
                chunk = Chunk(index=chunk.index,
                              records=records[chunk.start:chunk.start + n],
                              nbytes=chunk.nbytes, seq=chunk.seq,
                              last=chunk.last, start=chunk.start)
        return chunk

    def _retrieve(self, out: MapOutput) -> Generator:
        yield from self.device.transfer(out.raw_bytes, "d2h")
        return out

    def _partition(self, out: MapOutput) -> Generator:
        """Stage 5: sort, partition, persist, push.

        A split simulated as several batches accumulates its buckets here
        batch by batch (charging the linear decode share per batch); the
        whole-split work — bucket sort, compression, the durable spill,
        registry marks and pushes — runs once, on the final batch, so the
        charged totals and all byte counters match the single-batch run.
        """
        cfg = self.config
        registry = self.registry
        total_partitions = (registry.total_partitions if registry is not None
                            else self.n_nodes * cfg.partitions_per_node)
        split_index = out.chunk_index
        single = out.seq == 0 and out.last
        # Real work: bucket the pairs (into the split accumulator when
        # the split arrives in batches) and, once complete, sort buckets.
        buckets: Dict[int, List]
        buckets = {} if single else \
            self._acc.setdefault(split_index, _SplitAccumulator()).buckets
        for pair in out.pairs:
            pid = self.app.partition(pair[0], total_partitions)
            buckets.setdefault(pid, []).append(pair)
        if single:
            raw_total, decode_items = out.raw_bytes, out.decode_items
        else:
            acc = self._acc[split_index]
            acc.raw_bytes += out.raw_bytes
            acc.decode_items += out.decode_items
            # Decode is linear in items/bytes: charge this batch's share
            # as it streams through, leaving the superlinear sort (and
            # the compression of the complete output) to the last batch.
            cpu_start = self.sim.now
            yield self.node.host_work(
                cfg.partitioner_threads,
                self.costs.decode_seconds(out.decode_items, out.raw_bytes),
                tag="map.partition")
            self.timeline.record("map.partition_cpu", self.node.name,
                                 cpu_start, self.sim.now)
            if not out.last:
                return out
            del self._acc[split_index]
            raw_total, decode_items = acc.raw_bytes, acc.decode_items
        for pid in buckets:
            buckets[pid].sort(key=lambda kv: self.app.sort_key(kv[0]))
        # Cost: decode + sort + compress, spread over N partitioner threads.
        cpu = (sort_seconds(self.costs, decode_items)
               + cfg.compression.compress_seconds(raw_total))
        if single:
            cpu += self.costs.decode_seconds(decode_items, raw_total)
        cpu_start = self.sim.now
        yield self.node.host_work(cfg.partitioner_threads, cpu,
                                  tag="map.partition")
        # The CPU component alone, separate from the stage total (which
        # also contains the durability disk write): Table III's "no
        # contention from kernel threads" effect lives here.
        self.timeline.record("map.partition_cpu", self.node.name,
                             cpu_start, self.sim.now)
        # Durability: one full copy of the map output on the local disk,
        # appended to the node's spill area (one sequential write stream).
        stored_total = cfg.compression.compressed_size(raw_total)
        yield from self.node.disk.write(stored_total, stream="spill")
        runs = {pid: SortedRun(pairs, self.app.inter_schema.size_of(pairs))
                for pid, pairs in sorted(buckets.items())}
        if registry is not None:
            registry.mark_durable(self.node.node_id, split_index, runs)
            # Empty buckets are vacuously delivered — without an entry the
            # recovery planner would re-execute a fully delivered split.
            for pid in range(total_partitions):
                if pid not in runs:
                    registry.mark_delivered(split_index, pid,
                                            registry.owner_of(pid))
        # Push each Partition to its owner.  Pushes to the same peer are
        # batched into one message per chunk (one socket per peer), and
        # they run asynchronously: the pipeline's output stage does not
        # wait for the network.
        remote: Dict[int, List[tuple[int, SortedRun]]] = {}
        for pid, run in runs.items():
            if (self.recovery and registry is not None
                    and self.health is not None
                    and registry.delivered_to_live(split_index, pid,
                                                   self.health.alive)):
                continue    # this bucket survived the crash; don't duplicate
            owner = (registry.owner_of(pid) if registry is not None
                     else pid % self.n_nodes)
            if owner == self.node.node_id:
                self.managers[owner].add_run(pid, run)
                if registry is not None:
                    registry.mark_delivered(split_index, pid, owner)
            else:
                remote.setdefault(owner, []).append((pid, run))
        if remote:
            self.push_procs.append(self.sim.process(
                self._push(split_index, remote),
                name=f"{self.node.name}.push.s{split_index}"))
        if self.device_key is not None:
            # Pool accounting: this operation is off the device's plate.
            self.scheduler.note_done(self.node.node_id, self.device_key,
                                     float(self._splits_by_index[
                                         split_index].length))
        return out

    def _push(self, split_index: int,
              remote: Dict[int, List[tuple[int, SortedRun]]]) -> Generator:
        """Asynchronous remote Partition push (Glasswing pushes; Hadoop
        pulls — one of the paper's stated latency advantages).  One pusher
        thread per split: its per-message CPU overhead is charged up
        front and the messages — one per peer — go out back to back,
        which is how they leave the NIC anyway."""
        yield self.node.host_work(1, self.costs.push_overhead * len(remote),
                                  tag="push")
        for owner, runs in remote.items():
            stored = sum(self.config.compression.compressed_size(r.raw_bytes)
                         for _, r in runs)
            start = self.sim.now
            delivered = yield from self.network.send(self.node.node_id,
                                                     owner, stored,
                                                     meter=self.meter)
            self.timeline.record("map.push", self.node.name, start,
                                 self.sim.now, pids=len(runs), bytes=stored,
                                 delivered=bool(delivered),
                                 dst=self.managers[owner].node.name)
            if delivered is False:
                continue    # owner is gone; recovery re-routes these runs
            for pid, run in runs:
                self.managers[owner].add_run(pid, run)
                if self.registry is not None:
                    self.registry.mark_delivered(split_index, pid, owner)
