"""The map-phase pipeline instantiation (§III-A of the paper).

Stage bodies:

1. **Input** — read one split from storage, cut it into records.
2. **Stage** — deliver the chunk to the compute device (disabled for
   unified-memory devices).
3. **Kernel** — run the application's map function over the whole chunk in
   parallel, collect output through the configured collector (hash table
   with optional combiner, or shared buffer pool).
4. **Retrieve** — bring the produced pairs back to host memory (disabled
   for unified memory).
5. **Output/Partition** — sort the pairs, cut them into Partitions, write
   all of them to local disk for durability, then push each Partition to
   its owner node (local ones join the in-memory cache directly; remote
   ones travel the network asynchronously).
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.hw.node import Node
from repro.net.transport import Network
from repro.ocl.runtime import Buffer, Context, Device
from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.collector import collect_map_output
from repro.core.config import JobConfig
from repro.core.coordinator import Split
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts, sort_seconds
from repro.core.data import Chunk, MapOutput, SortedRun
from repro.core.faults import FaultInjector
from repro.core.intermediate import IntermediateManager
from repro.core.io import StorageBackend
from repro.core.pipeline import Pipeline
from repro.core.splitread import read_split_records

__all__ = ["MapPhase"]


class MapPhase:
    """One node's map pipeline plus its partition-push bookkeeping."""

    def __init__(self, sim: Simulator, node: Node, device: Device,
                 app: MapReduceApp, config: JobConfig,
                 backend: StorageBackend, timeline: Timeline,
                 splits: List[Split],
                 managers: Dict[int, IntermediateManager],
                 network: Network,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 faults: FaultInjector | None = None):
        self.sim = sim
        self.node = node
        self.device = device
        self.app = app
        self.config = config
        self.backend = backend
        self.timeline = timeline
        self.managers = managers          # node_id -> manager (all nodes)
        self.network = network
        self.n_nodes = len(managers)
        self.costs = costs
        self.faults = faults
        self._splits_by_index = {s.index: s for s in splits}
        self.push_procs: List = []        # in-flight remote pushes
        self.records_mapped = 0
        self.pairs_emitted = 0
        stage_fn = None if device.spec.unified_memory else self._stage
        retrieve_fn = None if device.spec.unified_memory else self._retrieve
        # Real device-buffer allocation: the §III-D trade-off ("more
        # buffers ... may be a limited resource for GPUs") is enforced by
        # the OpenCL layer's memory accounting, not by a separate check.
        self._ctx: Context | None = None
        self._buffers: List[Buffer] = []
        if not device.spec.unified_memory:
            self._ctx = Context(sim, [device])
            for group in ("in", "out"):
                for i in range(config.buffering):
                    self._buffers.append(self._ctx.alloc_buffer(
                        device, config.chunk_size,
                        name=f"{node.name}.map.{group}{i}"))
        self.pipeline = Pipeline(
            sim, timeline, name="map", instance=node.name,
            buffering=config.buffering, items=splits,
            read_fn=self._read, kernel_fn=self._kernel,
            output_fn=self._partition,
            stage_fn=stage_fn, retrieve_fn=retrieve_fn)

    def release_buffers(self) -> None:
        """Free the phase's device buffers (the engine calls this when
        the map phase completes, before the reduce phase allocates)."""
        if self._ctx is not None:
            for buf in self._buffers:
                self._ctx.release(buf)
            self._buffers = []

    def run(self):
        """Start the pipeline; returns its completion event."""
        return self.pipeline.run()

    # -- stage bodies ------------------------------------------------------
    def _read(self, split: Split) -> Generator:
        records, nbytes = yield from read_split_records(
            self.backend, self.node.node_id, split, self.app.record_format)
        return Chunk(index=split.index, records=records, nbytes=nbytes)

    def _stage(self, chunk: Chunk) -> Generator:
        yield from self.device.transfer(chunk.nbytes, "h2d")
        return chunk

    def _kernel(self, chunk: Chunk) -> Generator:
        chunk = yield from self._rerun_failures(chunk)
        pairs = self.app.map_batch(chunk.records)      # the real map work
        self.records_mapped += len(chunk.records)
        use_combiner = self.config.use_combiner and self.app.has_combiner
        out, extra = collect_map_output(
            self.config.collector, self.app, self.device.spec, pairs,
            use_combiner, chunk.index)
        cost = self.app.map_cost(self.device.spec, len(chunk.records),
                                 chunk.nbytes) + extra
        threads = self.config.kernel_threads
        if threads is None:
            threads = self.app.preferred_threads(self.device.spec)
        yield from self.device.execute_cost(cost, threads=threads)
        self.pairs_emitted += len(out.pairs)
        return out

    def _rerun_failures(self, chunk: Chunk) -> Generator:
        """Re-execution bookkeeping (§III-E): a crashing task discards its
        partial kernel work and its input is rescheduled (re-read)."""
        if self.faults is None:
            return chunk
        attempt = 0
        while self.faults.should_fail(chunk.index, attempt):
            cost = self.app.map_cost(self.device.spec, len(chunk.records),
                                     chunk.nbytes)
            partial = cost.scaled(self.faults.progress_at_failure)
            start = self.sim.now
            yield from self.device.execute_cost(partial)
            wasted = self.sim.now - start
            self.faults.record(chunk.index, attempt, self.node.name,
                               self.sim.now, wasted)
            self.timeline.record("map.task_failure", self.node.name,
                                 start, self.sim.now, split=chunk.index,
                                 attempt=attempt)
            # Reschedule: reload the split from (replicated) storage.
            split = self._splits_by_index[chunk.index]
            records, nbytes = yield from read_split_records(
                self.backend, self.node.node_id, split,
                self.app.record_format)
            chunk = Chunk(index=chunk.index, records=records, nbytes=nbytes)
            attempt += 1
        return chunk

    def _retrieve(self, out: MapOutput) -> Generator:
        yield from self.device.transfer(out.raw_bytes, "d2h")
        return out

    def _partition(self, out: MapOutput) -> Generator:
        """Stage 5: sort, partition, persist, push."""
        cfg = self.config
        total_partitions = self.n_nodes * cfg.partitions_per_node
        # Real work: bucket the pairs and sort each bucket.
        buckets: Dict[int, List] = {}
        for pair in out.pairs:
            pid = self.app.partition(pair[0], total_partitions)
            buckets.setdefault(pid, []).append(pair)
        for pid in buckets:
            buckets[pid].sort(key=lambda kv: self.app.sort_key(kv[0]))
        # Cost: decode + sort + compress, spread over N partitioner threads.
        cpu = (self.costs.decode_seconds(out.decode_items, out.raw_bytes)
               + sort_seconds(self.costs, out.decode_items)
               + cfg.compression.compress_seconds(out.raw_bytes))
        cpu_start = self.sim.now
        yield self.node.host_work(cfg.partitioner_threads, cpu,
                                  tag="map.partition")
        # The CPU component alone, separate from the stage total (which
        # also contains the durability disk write): Table III's "no
        # contention from kernel threads" effect lives here.
        self.timeline.record("map.partition_cpu", self.node.name,
                             cpu_start, self.sim.now)
        # Durability: one full copy of the map output on the local disk,
        # appended to the node's spill area (one sequential write stream).
        stored_total = cfg.compression.compressed_size(out.raw_bytes)
        yield from self.node.disk.write(stored_total, stream="spill")
        # Push each Partition to its owner.  Pushes to the same peer are
        # batched into one message per chunk (one socket per peer), and
        # they run asynchronously: the pipeline's output stage does not
        # wait for the network.
        remote: Dict[int, List[tuple[int, SortedRun]]] = {}
        for pid, pairs in sorted(buckets.items()):
            raw = self.app.inter_schema.size_of(pairs)
            run = SortedRun(pairs, raw)
            owner = pid % self.n_nodes
            if owner == self.node.node_id:
                self.managers[owner].add_run(pid, run)
            else:
                remote.setdefault(owner, []).append((pid, run))
        for owner, runs in remote.items():
            self.push_procs.append(self.sim.process(
                self._push(owner, runs),
                name=f"{self.node.name}.push.n{owner}"))
        return out

    def _push(self, owner: int,
              runs: List[tuple[int, SortedRun]]) -> Generator:
        """Asynchronous remote Partition push (Glasswing pushes; Hadoop
        pulls — one of the paper's stated latency advantages)."""
        stored = sum(self.config.compression.compressed_size(r.raw_bytes)
                     for _, r in runs)
        yield self.node.host_work(1, self.costs.push_overhead, tag="push")
        start = self.sim.now
        yield from self.network.send(self.node.node_id, owner, stored)
        self.timeline.record("map.push", self.node.name, start, self.sim.now,
                             pids=len(runs), bytes=stored)
        for pid, run in runs:
            self.managers[owner].add_run(pid, run)
