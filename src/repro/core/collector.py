"""Map-output collection mechanisms (§III-F of the paper).

Glasswing offers two ways for map kernels to emit key/value pairs:

* **shared buffer pool** — each emit allocates space with a single atomic
  operation.  The kernel is fast (low contention), but the partitioning
  stage must decode *every pair individually*, which for high-volume
  workloads (WordCount) makes partitioning the dominant pipeline stage —
  Table II configuration (iii).
* **hash table** — pairs are aggregated per key inside device memory.
  Threads contend on buckets (the kernel slows down with key repetition,
  more on devices with expensive atomics), but the partitioner touches one
  entry per *unique key* and the combiner can shrink the data before it
  ever leaves the device — configurations (i) and (ii).  Without a
  combiner, a *compaction kernel* runs after map() to place values of the
  same key contiguously (the paper's explanation for config (ii)'s higher
  kernel time).

The collector transforms the map kernel's raw emits into a
:class:`~repro.core.data.MapOutput` plus an extra :class:`KernelCost`
charged to the kernel stage.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.hw.specs import DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.core.api import MapReduceApp
from repro.core.data import MapOutput

__all__ = ["collect_map_output", "hash_contention", "COLLECTORS",
           "KeyInterner"]

Pair = Tuple[Any, Any]


class KeyInterner:
    """Canonicalises equal keys to one object (hash-table interning).

    The hash collector touches every emitted key; on batched runs the
    same hot keys recur in every batch, and CPython compares interned
    keys by identity before falling back to ``__eq__``.  Interning is
    free of virtual time (the hash probe is already part of the
    collector's charged cost) and never changes results — only object
    identity.  Unhashable keys pass through untouched.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    def intern(self, key: Any) -> Any:
        try:
            return self._table.setdefault(key, key)
        except TypeError:            # unhashable key: nothing to intern
            return key

#: emitting one pair costs a handful of device ops regardless of collector
_EMIT_FLOPS = 8.0
#: extra probe/insert work per pair for the hash table
_HASH_FLOPS = 24.0


def hash_contention(n_pairs: int, n_unique: int) -> float:
    """Atomic-contention intensity in [0, 1] from key repetition.

    WordCount-like workloads repeat a small set of hot keys, so threads
    loop on bucket atomics; PVC-like sparse key spaces barely contend.
    """
    if n_pairs == 0:
        return 0.0
    repetition = 1.0 - (n_unique / n_pairs)
    return max(0.0, min(1.0, repetition))


def _buffer_collect(app: MapReduceApp, device: DeviceSpec, pairs: List[Pair],
                    use_combiner: bool, chunk_index: int) -> Tuple[MapOutput, KernelCost]:
    raw = app.inter_schema.size_of(pairs)
    extra = KernelCost(
        flops=_EMIT_FLOPS * len(pairs),
        device_bytes=float(raw),
        atomic_intensity=0.05,   # one uncontended atomic per allocation
        launches=0,
    )
    out = MapOutput(chunk_index=chunk_index, pairs=pairs, raw_bytes=raw,
                    decode_items=len(pairs))
    return out, extra


def _hash_collect(app: MapReduceApp, device: DeviceSpec, pairs: List[Pair],
                  use_combiner: bool, chunk_index: int,
                  interner: KeyInterner | None = None
                  ) -> Tuple[MapOutput, KernelCost]:
    if interner is not None:
        pairs = [(interner.intern(k), v) for k, v in pairs]
    n_unique = len({k for k, _ in pairs})
    contention = hash_contention(len(pairs), n_unique)
    raw_in = app.inter_schema.size_of(pairs)
    extra = KernelCost(
        flops=(_EMIT_FLOPS + _HASH_FLOPS) * len(pairs),
        device_bytes=float(raw_in),
        atomic_intensity=contention,
        launches=0,
    )
    if use_combiner:
        out_pairs = app.run_combine(pairs)
        extra = extra + app.combine_cost(device, len(pairs))
    else:
        # Compaction kernel: gather each key's values contiguously so the
        # partitioner need not walk the whole hash-table memory space.
        out_pairs = sorted(pairs, key=lambda kv: app.sort_key(kv[0]))
        raw_out = app.inter_schema.size_of(out_pairs)
        extra = extra + KernelCost(flops=2.0 * len(pairs),
                                   device_bytes=2.0 * raw_out,
                                   launches=1)
    raw = app.inter_schema.size_of(out_pairs)
    out = MapOutput(chunk_index=chunk_index, pairs=out_pairs, raw_bytes=raw,
                    decode_items=n_unique)
    return out, extra


COLLECTORS = {
    "buffer": _buffer_collect,
    "hash": _hash_collect,
}


def collect_map_output(collector: str, app: MapReduceApp, device: DeviceSpec,
                       pairs: List[Pair], use_combiner: bool,
                       chunk_index: int,
                       interner: KeyInterner | None = None
                       ) -> Tuple[MapOutput, KernelCost]:
    """Run the configured collector over one kernel launch's emits.

    ``interner`` (hash collector only) canonicalises repeated keys to one
    object across launches — a host-memory optimisation with no effect on
    the collected output or the charged cost.
    """
    try:
        fn = COLLECTORS[collector]
    except KeyError:
        raise ValueError(f"unknown collector {collector!r}") from None
    if use_combiner and collector != "hash":
        raise ValueError("the combiner requires the hash-table collector")
    if fn is _hash_collect:
        return fn(app, device, pairs, use_combiner, chunk_index,
                  interner=interner)
    return fn(app, device, pairs, use_combiner, chunk_index)
