"""Job coordination: input splitting, affinity-aware assignment, and the
shuffle registry behind node-crash recovery.

"Glasswing's job coordinator is like Hadoop's: both use a dedicated master
node; Glasswing's scheduler considers file affinity in its job
allocation."  Splits are sized by the job's chunk size; when the backend
exposes block locations, each split goes to the least-loaded node holding
a replica of its first byte, otherwise round-robin.  Assignment can be
restricted to a subset of nodes — the recovery path reschedules a dead
node's splits onto the survivors while still honouring affinity.

The :class:`ShuffleRegistry` is the coordinator's global view of the
shuffle: which node owns each partition (re-assignable after a crash),
which ``(split, partition)`` runs have been delivered where, and which
map outputs are durable on which node's local disk.  Recovery is pure
bookkeeping over this registry: anything delivered to a dead node, or
never delivered at all, must be re-fetched from a durable copy or
re-executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.data import SortedRun
from repro.core.io import StorageBackend

__all__ = ["Split", "make_splits", "assign_splits", "ShuffleRegistry"]


@dataclass(frozen=True)
class Split:
    """One unit of map work: a byte range of one input file."""

    index: int
    path: str
    offset: int
    length: int


def make_splits(backend: StorageBackend, paths: Sequence[str],
                chunk_size: int, record_size: Optional[int] = None
                ) -> List[Split]:
    """Cut the input files into chunk-sized splits.

    ``record_size`` (fixed-record formats) forces split boundaries onto
    record multiples; text records are handled by the reader's
    skip-partial-first / read-ahead-last protocol instead.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if record_size is not None:
        if record_size > chunk_size:
            raise ValueError("records larger than the chunk size")
        chunk_size -= chunk_size % record_size
    splits: List[Split] = []
    for path in paths:
        total = backend.size(path)
        offset = 0
        while offset < total:
            length = min(chunk_size, total - offset)
            splits.append(Split(len(splits), path, offset, length))
            offset += length
    return splits


def assign_splits(splits: Sequence[Split], backend: StorageBackend,
                  n_nodes: int,
                  allowed: Optional[Sequence[int]] = None
                  ) -> Dict[int, List[Split]]:
    """Map each split to a node, preferring replica holders (affinity).

    The affinity logic itself lives in :mod:`repro.core.sched.affinity`
    (it is shared by every scheduling policy); this wrapper survives as
    the coordinator-level entry point for callers that want a one-shot
    static assignment (e.g. the Hadoop baseline).
    """
    from repro.core.sched.affinity import affinity_assign
    return affinity_assign(splits, backend, n_nodes, allowed=allowed)


class ShuffleRegistry:
    """Global shuffle bookkeeping: ownership, deliveries, durable output.

    One instance per job, shared by the coordinator, every map pipeline
    and the recovery layer.  Three tables:

    * ``owner_of(pid)`` — which node reduces partition ``pid``; initially
      ``pid % n_nodes``, re-assigned to survivors after a node crash;
    * the **delivery ledger** — ``(split, pid) -> node`` recorded when a
      sorted run reaches its owner's intermediate manager.  An entry
      pointing at a dead node (or missing entirely: shuffle data lost in
      flight) marks data that recovery must reproduce;
    * the **durable index** — per ``(node, split)`` the partition buckets
      whose full copy the map output stage persisted to that node's local
      disk (§III-A stage 5).  Buckets durable on a survivor are recovered
      by a cheap disk re-read + re-push; everything else needs the split
      re-executed.
    """

    def __init__(self, n_nodes: int, partitions_per_node: int,
                 nodes: Optional[Sequence[int]] = None):
        """``nodes`` restricts the partition space to an explicit active
        set (elastic jobs start on a subset of the hardware): the
        partition count and initial ownership follow the *active* nodes,
        so later joins/leaves never change the output partitioning.
        ``nodes=None`` keeps the classic ``pid % n_nodes`` layout."""
        self.n_nodes = n_nodes
        owners = list(nodes) if nodes is not None else list(range(n_nodes))
        if not owners or any(not (0 <= n < n_nodes) for n in owners):
            raise ValueError(
                f"registry nodes {owners} outside the {n_nodes}-node cluster")
        self.total_partitions = len(owners) * partitions_per_node
        self._owner: Dict[int, int] = {pid: owners[pid % len(owners)]
                                       for pid in range(self.total_partitions)}
        self.delivered: Dict[Tuple[int, int], int] = {}
        self.durable: Dict[Tuple[int, int], Dict[int, SortedRun]] = {}

    # -- ownership ---------------------------------------------------------
    def owner_of(self, pid: int) -> int:
        return self._owner[pid]

    def owned_by(self, node: int) -> List[int]:
        return sorted(p for p, o in self._owner.items() if o == node)

    def reassign(self, pid: int, new_owner: int) -> None:
        self._owner[pid] = new_owner

    # -- delivery ledger ---------------------------------------------------
    def mark_delivered(self, split: int, pid: int, node: int) -> None:
        self.delivered[(split, pid)] = node

    def delivered_to_live(self, split: int, pid: int, alive) -> bool:
        """True when this run already sits in a surviving manager."""
        node = self.delivered.get((split, pid))
        return node is not None and alive(node)

    # -- durable map output ------------------------------------------------
    def mark_durable(self, node: int, split: int,
                     buckets: Dict[int, SortedRun]) -> None:
        self.durable[(node, split)] = buckets

    def executed_splits(self, node: int) -> List[int]:
        """Splits whose map output is durable on ``node``'s local disk."""
        return sorted(s for (n, s) in self.durable if n == node)

    # -- recovery planning -------------------------------------------------
    def recovery_plan(self, all_splits: Sequence[Split], alive,
                      durable_alive=None
                      ) -> Tuple[Dict[Tuple[int, int], List[Tuple[int, int, SortedRun]]],
                                 List[Split]]:
        """What the survivors must do after node loss.

        Returns ``(repushes, reexec_splits)``: ``repushes`` maps a
        ``(source_node, owner_node)`` pair to the ``(split, pid, run)``
        entries the source must re-read from its durable spill and
        re-push; ``reexec_splits`` lists splits needing full re-execution
        (their mapper died, taking the durable copy with it — or they
        never completed at all).  Every ``(split, pid)`` the ledger shows
        as lost is covered by exactly one of the two.

        ``durable_alive`` widens the durable-holder predicate beyond
        ``alive``: a *departed* (drained) node takes no new work but its
        local spill is still readable, so it remains a re-push source —
        the difference between decommissioning a node and losing it.
        """
        repushes: Dict[Tuple[int, int], List[Tuple[int, int, SortedRun]]] = {}
        reexec: List[Split] = []
        can_serve = durable_alive if durable_alive is not None else alive
        for split in all_splits:
            durable_holder = None
            for (node, s) in self.durable:
                if s == split.index and can_serve(node):
                    durable_holder = node
                    break
            lost_pids = [pid for pid in range(self.total_partitions)
                         if not self.delivered_to_live(split.index, pid, alive)]
            if not lost_pids:
                continue
            if durable_holder is None:
                reexec.append(split)
                continue
            buckets = self.durable[(durable_holder, split.index)]
            for pid in lost_pids:
                run = buckets.get(pid)
                if run is None:
                    continue    # split produced nothing for this partition
                owner = self.owner_of(pid)
                repushes.setdefault((durable_holder, owner), []).append(
                    (split.index, pid, run))
        return repushes, reexec
