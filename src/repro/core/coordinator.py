"""Job coordination: input splitting and affinity-aware assignment.

"Glasswing's job coordinator is like Hadoop's: both use a dedicated master
node; Glasswing's scheduler considers file affinity in its job
allocation."  Splits are sized by the job's chunk size; when the backend
exposes block locations, each split goes to the least-loaded node holding
a replica of its first byte, otherwise round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.storage.dfs import BlockLocation

from repro.core.io import StorageBackend

__all__ = ["Split", "make_splits", "assign_splits"]


@dataclass(frozen=True)
class Split:
    """One unit of map work: a byte range of one input file."""

    index: int
    path: str
    offset: int
    length: int


def make_splits(backend: StorageBackend, paths: Sequence[str],
                chunk_size: int, record_size: Optional[int] = None
                ) -> List[Split]:
    """Cut the input files into chunk-sized splits.

    ``record_size`` (fixed-record formats) forces split boundaries onto
    record multiples; text records are handled by the reader's
    skip-partial-first / read-ahead-last protocol instead.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if record_size is not None:
        if record_size > chunk_size:
            raise ValueError("records larger than the chunk size")
        chunk_size -= chunk_size % record_size
    splits: List[Split] = []
    for path in paths:
        total = backend.size(path)
        offset = 0
        while offset < total:
            length = min(chunk_size, total - offset)
            splits.append(Split(len(splits), path, offset, length))
            offset += length
    return splits


def assign_splits(splits: Sequence[Split], backend: StorageBackend,
                  n_nodes: int) -> Dict[int, List[Split]]:
    """Map each split to a node, preferring replica holders (affinity).

    Greedy least-loaded-replica assignment; falls back to round-robin when
    the backend has no locality information.
    """
    assignment: Dict[int, List[Split]] = {n: [] for n in range(n_nodes)}
    locations: Dict[str, List[BlockLocation]] = {}
    for split in splits:
        if split.path not in locations:
            locations[split.path] = backend.locations(split.path) or []
        candidates = _replica_holders(locations[split.path], split.offset)
        if candidates:
            node = min(candidates, key=lambda nid: (len(assignment[nid]), nid))
        else:
            node = split.index % n_nodes
        assignment[node].append(split)
    return assignment


def _replica_holders(locs: List[BlockLocation], offset: int) -> List[int]:
    for loc in locs:
        if loc.offset <= offset < loc.offset + max(loc.length, 1):
            return list(loc.replicas)
    return []
