"""Node-crash recovery and speculative execution (§III-E).

Two cooperating pieces live here:

* :func:`run_recovery` — the coordinator's recovery wave, run between the
  map/shuffle phase and the merge finalisation once a node has died.  It
  re-assigns the dead node's partitions to survivors, then executes the
  :meth:`~repro.core.coordinator.ShuffleRegistry.recovery_plan`: sorted
  runs that are durable on a surviving node's local spill are re-read and
  re-pushed (cheap), splits whose durable output died with their mapper
  are re-executed on the survivors (full map work, but only the buckets
  the ledger shows as lost are re-delivered).

* :class:`SpeculationController` — the straggler detector.  It tracks
  completed map-kernel durations; once a launch overruns
  ``speculation_factor ×`` the observed mean, the map phase races a
  speculative copy of the task on the least-loaded surviving node.  First
  finisher wins and the loser is interrupted.  The real data
  transformation runs exactly once on the primary, so speculation changes
  timing only — never output.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.net.transport import Network
from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.coordinator import ShuffleRegistry, Split
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.data import SortedRun
from repro.core.faults import ClusterHealth
from repro.core.intermediate import IntermediateManager
from repro.core.io import StorageBackend
from repro.core.sched import Scheduler
from repro.core.splitread import read_split_records

__all__ = ["SpeculationController", "run_recovery"]


class SpeculationController:
    """Straggler detection + speculative copy execution (one per job).

    The controller owns the cross-node view the map pipelines lack: mean
    kernel duration (the straggler baseline), how many speculative copies
    each node is currently running (for least-loaded helper choice), and
    the win/launch counters the metrics layer reports.
    """

    #: completed launches needed before the mean is trusted
    MIN_SAMPLES = 3

    def __init__(self, sim: Simulator, app: MapReduceApp, config: JobConfig,
                 backend: StorageBackend, health: ClusterHealth,
                 devices: Sequence, nodes: Sequence,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 scheduler: Optional[Scheduler] = None):
        self.sim = sim
        self.app = app
        self.config = config
        self.backend = backend
        self.health = health
        self.devices = list(devices)
        self.nodes = list(nodes)
        self.costs = costs
        self.scheduler = scheduler
        self.durations: List[float] = []
        self.active: Dict[int, int] = {n: 0 for n in range(len(self.nodes))}
        self.launches = 0
        self.wins = 0
        self._progress_waiters: List[Event] = []

    # -- straggler detection ----------------------------------------------
    def observe(self, duration: float) -> None:
        """Feed one completed kernel-launch duration into the baseline."""
        self.durations.append(duration)
        waiters, self._progress_waiters = self._progress_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(None)

    def progress_event(self) -> Event:
        """Event fired at the next :meth:`observe` — lets a watchdog with
        no baseline yet sleep until the cohort makes progress instead of
        polling at an arbitrary interval."""
        ev = Event(self.sim)
        self._progress_waiters.append(ev)
        return ev

    def threshold(self) -> float | None:
        """Seconds after which a launch counts as straggling, or ``None``
        while too few launches completed to trust the mean."""
        if len(self.durations) < self.MIN_SAMPLES:
            return None
        mean = sum(self.durations) / len(self.durations)
        return self.config.speculation_factor * mean

    # -- speculative copies ------------------------------------------------
    def pick_helper(self, exclude: int,
                    split_index: Optional[int] = None) -> int | None:
        """Node to run a speculative copy on — delegated to the job's
        scheduling policy (the base policy picks the least-loaded
        surviving node other than ``exclude``)."""
        if self.scheduler is not None:
            return self.scheduler.pick_helper(
                exclude, self.health.alive_nodes, self.active,
                split_index=split_index)
        candidates = [n for n in self.health.alive_nodes if n != exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda n: (self.active[n], n))

    def launch_copy(self, split: Split, helper: int):
        """Start the speculative duplicate on ``helper``; returns its
        process (raced against the primary by the map phase)."""
        self.launches += 1
        return self.sim.process(
            self._copy(split, helper),
            name=f"spec.s{split.index}.n{helper}")

    def finish(self, helper: int, copy_won: bool) -> None:
        if copy_won:
            self.wins += 1

    def _copy(self, split: Split, helper: int) -> Generator:
        """Charge the duplicate's costs: re-read the split on the helper
        and run the map kernel at full speed (the straggler slowdown is a
        property of the sick node, not of the task)."""
        self.active[helper] += 1
        try:
            records, nbytes = yield from read_split_records(
                self.backend, helper, split, self.app.record_format)
            device = self.devices[helper]
            cost = self.app.map_cost(device.spec, len(records), nbytes)
            threads = self.config.kernel_threads
            if threads is None:
                threads = self.app.preferred_threads(device.spec)
            yield from device.execute_cost(cost, threads=threads)
        finally:
            self.active[helper] -= 1


def run_recovery(sim: Simulator, timeline: Timeline, cluster,
                 app: MapReduceApp, config: JobConfig,
                 backend: StorageBackend,
                 managers: Dict[int, IntermediateManager],
                 devices: Sequence, network: Network,
                 registry: ShuffleRegistry, health: ClusterHealth,
                 splits: Sequence[Split], scheduler: Scheduler,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 meter=None) -> Generator:
    """The post-crash recovery wave (process body; yields until done).

    Returns ``(n_repushed_runs, n_reexecuted_splits)`` for the stats
    block.  On return every ``(split, partition)`` run the shuffle lost is
    re-delivered to a surviving manager, and partition ownership points
    only at survivors — the merge and reduce phases then run exactly as in
    the fault-free case.
    """
    from repro.core.map_phase import MapPhase   # cycle: map_phase ↔ recovery

    survivors = health.alive_nodes
    if not survivors:
        raise RuntimeError("every node died; the job cannot complete")
    # 1. Re-home the gone nodes' partitions (crashed *and* departed — both
    #    stop reducing): the scheduling policy picks each partition's new
    #    owner (the base policy keeps the original deterministic spread;
    #    load-aware policies balance ownership).
    for gone in getattr(health, "gone_nodes", health.dead_nodes):
        for pid in registry.owned_by(gone):
            new_owner = scheduler.rehome(pid, survivors, registry)
            registry.reassign(pid, new_owner)
            managers[new_owner].adopt_partition(pid)
    # 2. Plan: cheap durable re-pushes vs full split re-execution.  A
    #    departed (drained) node still serves its durable spill — that is
    #    what makes a drain cheaper than a crash.
    repushes, reexec = registry.recovery_plan(
        splits, health.alive,
        durable_alive=getattr(health, "storage_alive", None))
    n_repushed = sum(len(entries) for entries in repushes.values())
    for split in reexec:
        timeline.record("recovery.reexec", "job", sim.now, sim.now,
                        split=split.index)
    # 3. Durable re-pushes: spill re-read on the source, one batched send
    #    per (source, owner) pair, runs join the owner's cache.
    procs = [sim.process(
        _repush(sim, timeline, cluster[source], network, managers,
                registry, config, costs, owner, entries, meter=meter),
        name=f"recover.n{source}->n{owner}")
        for (source, owner), entries in sorted(repushes.items())]
    # 4. Re-execution: the lost splits go back through the scheduler
    #    (restricted to survivors) and a recovery map phase pulls them on
    #    every node the policy nominates.  The ledger keeps already
    #    delivered buckets from being pushed twice.
    phases = []
    if reexec:
        scheduler.plan_recovery(reexec, backend, survivors)
        for node_id in scheduler.recovery_nodes():
            phases.append(MapPhase(
                sim, cluster[node_id], devices[node_id], app, config,
                backend, timeline, scheduler=scheduler, managers=managers,
                network=network, costs=costs, faults=None, health=health,
                registry=registry, recovery=True, meter=meter))
    waits = procs + [ph.run() for ph in phases]
    if waits:
        yield sim.all_of(waits)
    pushes = [p for ph in phases for p in ph.push_procs]
    if pushes:
        yield sim.all_of(pushes)
    for ph in phases:
        ph.release_buffers()
    return n_repushed, len(reexec)


def _repush(sim: Simulator, timeline: Timeline, node, network: Network,
            managers: Dict[int, IntermediateManager],
            registry: ShuffleRegistry, config: JobConfig, costs: HostCosts,
            owner: int,
            entries: List[Tuple[int, int, SortedRun]],
            meter=None) -> Generator:
    """Re-deliver durable runs from ``node``'s spill to ``owner``."""
    stored = sum(config.compression.compressed_size(run.raw_bytes)
                 for _, _, run in entries)
    start = sim.now
    yield from node.disk.read(stored, stream="spill.recover")
    yield node.host_work(1, costs.push_overhead, tag="push")
    delivered = yield from network.send(node.node_id, owner, stored,
                                        meter=meter)
    timeline.record("recovery.repush", node.name, start, sim.now,
                    owner=owner, runs=len(entries), bytes=stored,
                    delivered=bool(delivered))
    if delivered is False:    # owner died during recovery — not modelled
        return
    for split_index, pid, run in entries:
        managers[owner].add_run(pid, run)
        registry.mark_delivered(split_index, pid, owner)
