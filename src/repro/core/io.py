"""Storage backends: the engines' view of DFS vs node-local files.

The paper evaluates Glasswing both against HDFS (instrumented to use
libhdfs so it has "no file access time advantage over Hadoop") and against
node-local storage where files are fully replicated per node (the GPMR
comparison layout).  A :class:`StorageBackend` abstracts the two.

``install`` places input data with **zero simulated time** — the paper's
timings exclude input generation.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.hw.node import Cluster
from repro.storage.dfs import DFS, BlockLocation
from repro.storage.localfs import LocalFS

__all__ = ["StorageBackend", "DFSBackend", "LocalBackend", "make_backend"]


class StorageBackend:
    """Interface the phases program against."""

    def read(self, node_id: int, path: str, offset: int,
             length: int) -> Generator:
        """Read a range from ``node_id``; returns bytes."""
        raise NotImplementedError

    def write_chunk(self, node_id: int, nbytes: int,
                    replication: int) -> Generator:
        """Charge the cost of appending ``nbytes`` of job output."""
        raise NotImplementedError

    def size(self, path: str) -> int:
        raise NotImplementedError

    def locations(self, path: str) -> Optional[List[BlockLocation]]:
        """Block locations for affinity scheduling; None when meaningless
        (node-local storage has every byte everywhere)."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        """True when ``path`` is already installed (long-lived backends
        shared across jobs skip re-installation of unchanged inputs)."""
        raise NotImplementedError

    def install(self, path: str, data: bytes) -> None:
        """Place input data with zero simulated time."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        """Delete ``path`` with zero simulated time (the DAG runner
        replaces a mutated input by remove + install)."""
        raise NotImplementedError

    def purge_caches(self) -> None:
        raise NotImplementedError


class DFSBackend(StorageBackend):
    """HDFS-like backend (with the libhdfs JNI overhead model)."""

    def __init__(self, dfs: DFS):
        self.dfs = dfs

    def read(self, node_id: int, path: str, offset: int,
             length: int) -> Generator:
        """DFS range read with locality, JNI overhead and block streaming."""
        data = yield from self.dfs.read(path, offset, length, reader=node_id)
        return data

    def write_chunk(self, node_id: int, nbytes: int,
                    replication: int) -> Generator:
        """Replicated output append: local disk + pipelined remote copies.

        Replica targets skip dead nodes (a crashed node's disk cannot
        accept output), clamping to the surviving node count.
        """
        cluster = self.dfs.cluster
        health = self.dfs.health
        targets = [n for n in range(len(cluster))
                   if health is None or health.alive(n)]
        # Rotate so the writer (always alive) gets the first copy.
        pivot = targets.index(node_id) if node_id in targets else 0
        targets = targets[pivot:] + targets[:pivot]
        rep = min(replication, len(targets))
        yield from self.dfs._jni_charge(node_id, nbytes)
        procs = [cluster.sim.process(
            self._replica_write(node_id, targets[r], nbytes))
            for r in range(rep)]
        yield cluster.sim.all_of(procs)

    def _replica_write(self, writer: int, replica: int,
                       nbytes: int) -> Generator:
        if replica != writer:
            yield from self.dfs.cluster.network.send(writer, replica, nbytes,
                                                     meter=self.dfs.meter)
        yield from self.dfs.cluster[replica].disk.write(nbytes, stream="out")

    def size(self, path: str) -> int:
        """Total file length in bytes."""
        return self.dfs.size(path)

    def locations(self, path: str) -> Optional[List[BlockLocation]]:
        """Block locations for the affinity scheduler."""
        return self.dfs.block_locations(path)

    def exists(self, path: str) -> bool:
        return self.dfs.exists(path)

    def remove(self, path: str) -> None:
        self.dfs.delete(path)

    def install(self, path: str, data: bytes) -> None:
        """Zero-time block placement mirroring :meth:`DFS.create`."""
        if self.dfs.exists(path):
            raise FileExistsError(path)
        from repro.storage.dfs import _Block
        # Writers spread over the placement pool (the initially-active
        # subset for elastic jobs, the whole cluster otherwise) so an
        # elastic baseline never depends on standby hardware.
        pool = self.dfs.placement_nodes \
            if self.dfs.placement_nodes is not None \
            else list(range(len(self.dfs.cluster)))
        rep = min(self.dfs.replication, len(pool))
        blocks = []
        for index, start in enumerate(
                range(0, max(len(data), 1), self.dfs.block_size)):
            chunk = data[start:start + self.dfs.block_size]
            writer = pool[index % len(pool)]
            block = _Block(next(self.dfs._block_ids), len(chunk),
                           self.dfs._place_replicas(writer, rep, index))
            for replica in block.replicas:
                self.dfs.node_fs[replica]._files[block.local_path] = chunk
            blocks.append(block)
        self.dfs._meta[path] = blocks

    def purge_caches(self) -> None:
        """Drop every node's page cache (pre-test ritual)."""
        self.dfs.purge_caches()


class LocalBackend(StorageBackend):
    """Node-local storage with inputs fully replicated on every node."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.node_fs: List[LocalFS] = [LocalFS(node) for node in cluster]

    def read(self, node_id: int, path: str, offset: int,
             length: int) -> Generator:
        """Local read — every node holds a full replica of each input."""
        data = yield from self.node_fs[node_id].read(path, offset, length)
        return data

    def write_chunk(self, node_id: int, nbytes: int,
                    replication: int) -> Generator:
        # Local output: one copy on the local disk (the GPMR layout).
        yield from self.cluster[node_id].disk.write(nbytes, stream="out")

    def size(self, path: str) -> int:
        """Total file length in bytes."""
        return self.node_fs[0].size(path)

    def locations(self, path: str) -> Optional[List[BlockLocation]]:
        """No locality information: every byte is everywhere."""
        return None

    def exists(self, path: str) -> bool:
        return self.node_fs[0].exists(path)

    def remove(self, path: str) -> None:
        for fs in self.node_fs:
            if fs.exists(path):
                fs.delete(path)

    def install(self, path: str, data: bytes) -> None:
        blob = data if isinstance(data, bytes) else bytes(data)
        for fs in self.node_fs:
            # One immutable blob shared by every replica (no n-fold copy).
            fs._files[path] = blob

    def purge_caches(self) -> None:
        """Drop every node's page cache (pre-test ritual)."""
        for fs in self.node_fs:
            fs.purge_cache()


def make_backend(kind: str, cluster: Cluster, **dfs_kwargs) -> StorageBackend:
    """Factory: ``"dfs"`` or ``"local"``."""
    if kind == "dfs":
        return DFSBackend(DFS(cluster, **dfs_kwargs))
    if kind == "local":
        return LocalBackend(cluster)
    raise ValueError(f"unknown storage backend {kind!r}")
