"""Job orchestration: map phase ∥ merge phase, then reduce phase.

"Execution starts with launching the map phase and, concurrently, the
merge phase at each node.  After the map phase completes, the merge phase
continues until it has received all data sent to it by map pipeline
instantiations at other nodes.  After the merge phase completes, the
reduce phase is started."  (§III)

Fault tolerance (§III-E) is orchestrated here: a per-job
:class:`~repro.core.faults.ClusterHealth` view and
:class:`~repro.core.coordinator.ShuffleRegistry` thread through the
storage, network and phase layers.  Node crashes from the
:class:`~repro.core.faults.FaultPlan` are armed as monitor processes that
race the shuffle — a node that dies during the map/shuffle window takes
its pipeline, its in-flight pushes and its intermediate cache with it,
and a recovery wave (:func:`~repro.core.recovery.run_recovery`) rebuilds
the lost shuffle state on the survivors before merging finalises.  The
headline guarantee: any fault schedule produces the same job output as
the fault-free run, at gracefully degraded job time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import ClusterSpec, DeviceKind
from repro.net.transport import TrafficMeter
from repro.ocl.runtime import Device
from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.coordinator import ShuffleRegistry, make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.faults import ClusterHealth, FaultPlan, NodeCrash
from repro.core.intermediate import IntermediateManager
from repro.core.io import DFSBackend, StorageBackend, make_backend
from repro.core.map_phase import MapPhase
from repro.core.metrics import JobMetrics
from repro.core.recovery import SpeculationController, run_recovery
from repro.core.reduce_phase import ReducePhase
from repro.core.sched import make_scheduler
from repro.storage.records import FixedRecordFormat

__all__ = ["run_glasswing", "GlasswingResult", "ClusterSession",
           "JobExecution"]


@dataclass
class GlasswingResult:
    """Everything a finished Glasswing job produced."""

    app_name: str
    config: JobConfig
    n_nodes: int
    job_time: float                       # total virtual seconds
    map_time: float                       # map-phase extent
    merge_delay: float                    # post-map merge completion time
    reduce_time: float                    # reduce-phase extent
    output: Dict[int, List[Tuple[Any, Any]]]   # pid -> output pairs
    timeline: Timeline
    metrics: JobMetrics
    stats: Dict[str, Any] = field(default_factory=dict)
    #: live :class:`~repro.obs.telemetry.Telemetry` hub when the job ran
    #: with ``config.metrics_interval`` set; ``None`` otherwise
    telemetry: Optional[Any] = None

    def output_pairs(self) -> Iterator[Tuple[Any, Any]]:
        """All output pairs in partition order (TeraSort's total order)."""
        for pid in sorted(self.output):
            yield from self.output[pid]

    def sorted_output(self) -> List[Tuple[Any, Any]]:
        """Output pairs sorted by key — canonical form for comparisons.

        Keys sort by their natural order (so integer keys sort
        numerically, not as ``repr`` strings where "10" < "2"), grouped
        by type name so mixed-type key sets still have a total order;
        keys of a type without a natural order fall back to ``repr``
        within their type group.
        """
        pairs = list(self.output_pairs())
        try:
            return sorted(pairs,
                          key=lambda kv: (kv[0].__class__.__name__, kv[0]))
        except TypeError:
            return sorted(pairs, key=lambda kv: (kv[0].__class__.__name__,
                                                 repr(kv[0])))

    def to_report(self) -> Dict[str, Any]:
        """Structured JSON-serialisable job report: stats, per-stage
        breakdowns, utilization/overlap analysis, fault/recovery metrics
        and the monotonic byte/slot/wait counters (see
        :mod:`repro.obs.report` for the schema)."""
        from repro.obs.report import build_job_report
        return build_job_report(self)


class ClusterSession:
    """The long-lived substrate one or many jobs execute on.

    Owns exactly the state that is *shared* when several jobs run
    concurrently: the simulator, the session timeline (and its optional
    telemetry hub), the cluster hardware, and the per-(node, device-kind)
    :class:`~repro.ocl.runtime.Device` objects — two jobs mapping on the
    same node's GPU must queue on one execution engine, not conjure a
    second GPU.  Everything per-job (storage namespace, shuffle registry,
    health view, scheduler, phases) lives on :class:`JobExecution`.
    """

    def __init__(self, cluster_spec: ClusterSpec,
                 metrics_interval: Optional[float] = None):
        self.sim = Simulator()
        self.timeline = Timeline()
        self.telemetry = None
        if metrics_interval is not None:
            # Lazy import: the core layer only depends on obs when
            # sampling is actually requested.  Must attach before Cluster
            # construction so every layer registers its gauges as it is
            # built.
            from repro.obs.telemetry import Telemetry
            self.telemetry = Telemetry(self.sim, interval=metrics_interval)
            self.timeline.telemetry = self.telemetry
        self.cluster = Cluster(self.sim, cluster_spec, timeline=self.timeline)
        self._devices: Dict[Tuple[int, DeviceKind], Device] = {}

    def __len__(self) -> int:
        return len(self.cluster)

    def device(self, node_id: int, kind: DeviceKind) -> Device:
        """The shared device of ``kind`` on ``node_id`` (created lazily)."""
        key = (node_id, kind)
        dev = self._devices.get(key)
        if dev is None:
            dev = self._devices[key] = _make_device(
                self.sim, self.cluster[node_id], kind)
        return dev

    def run(self) -> None:
        """Drive the simulation to completion (telemetry bracketed)."""
        if self.telemetry is not None:
            self.telemetry.start()
        self.sim.run()


class JobExecution:
    """One job as a schedulable entity on a (possibly shared) session.

    Construction performs the job's zero-sim-time setup — storage
    namespace + input install, health view, shuffle registry, splits,
    scheduler plan, device wiring, managers and map pipelines — exactly
    as the single-tenant path always has; :meth:`start` launches the
    orchestrator process.  Isolation boundaries:

    * **storage/shuffle/recovery state** is private: each job gets its
      own backend namespace, :class:`ShuffleRegistry` and
      :class:`ClusterHealth`, so one job's node crash (executor-crash
      semantics) triggers *its* recovery wave without touching tenants
      sharing the node;
    * **hardware** is shared through the session: CPU fluid shares, disk
      and NIC queues, fabric slots and device engines all contend across
      jobs — that contention is the phenomenon a multi-job service
      exists to model;
    * **accounting** is split by a :class:`TrafficMeter` and, for
      concurrent jobs, a per-job :class:`~repro.simt.trace.TimelineFork`
      whose spans are job-tagged in the session trace.

    ``exclusive=True`` is the classic single-tenant mode: the job's
    health view is also installed as the network-wide one and telemetry
    stops when the job ends (bit-identical to the historical
    ``run_glasswing`` behaviour).
    """

    def __init__(self, session: ClusterSession, app: MapReduceApp,
                 inputs: Dict[str, bytes],
                 config: Optional[JobConfig] = None,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 faults: Optional[FaultPlan] = None,
                 name: str = "glasswing-job",
                 exclusive: bool = False,
                 timeline: Optional[Timeline] = None,
                 backend: Optional[StorageBackend] = None,
                 splits: Optional[List] = None):
        self.session = session
        self.app = app
        self.name = name
        self.exclusive = exclusive
        self.config = config = config or JobConfig()
        self.costs = costs
        self.faults = faults
        self.timeline = timeline = (timeline if timeline is not None
                                    else session.timeline)
        sim = session.sim
        cluster = session.cluster
        n = len(cluster)
        self._box: Dict[str, Any] = {}

        if backend is None:
            backend_kwargs = {}
            if config.storage == "dfs":
                backend_kwargs = dict(block_size=config.chunk_size,
                                      replication=config.input_replication)
            self.backend = backend = make_backend(config.storage, cluster,
                                                  **backend_kwargs)
            for path, data in inputs.items():
                backend.install(path, data)
            backend.purge_caches()
        else:
            # Session-lived backend shared by a *sequence* of jobs (the
            # DAG/iterative path): inputs already installed in an earlier
            # round stay put, and the caches are deliberately NOT purged —
            # warm page caches and cache-aside entries across rounds are
            # the point of sharing the backend.
            self.backend = backend
            for path, data in inputs.items():
                if not backend.exists(path):
                    backend.install(path, data)

        # Per-job fault-tolerance state: the health view gates storage
        # reads/writes and network deliveries; the registry is the
        # shuffle's global ledger that recovery replans from.
        self.health = health = ClusterHealth(n)
        if exclusive:
            cluster.network.health = health
        self.meter = TrafficMeter(timeline=timeline, health=health)
        # A cache-aside wrapper (repro.storage.cache) exposes the real
        # backend as ``.base``; the DFS wiring must reach through it.
        base_backend = getattr(backend, "base", backend)
        if isinstance(base_backend, DFSBackend):
            base_backend.dfs.health = health
            base_backend.dfs.meter = self.meter
        self.registry = registry = ShuffleRegistry(
            n, config.partitions_per_node)

        if splits is None:
            record_size = (app.record_format.record_size
                           if isinstance(app.record_format, FixedRecordFormat)
                           else None)
            splits = make_splits(backend, sorted(inputs), config.chunk_size,
                                 record_size=record_size)
        self.splits = splits
        self.scheduler = scheduler = make_scheduler(
            config.scheduler, sim=sim, timeline=timeline)
        scheduler.plan(splits, backend, n)

        # Per-node device pools: one Device object per distinct kind (a
        # kind appearing in both phases shares its device, as before),
        # one concurrently scheduled map pipeline per pool member.
        # Devices come from the session cache, so concurrent jobs queue
        # on the same engines.
        map_kinds = config.map_device_pool
        self.reduce_kinds = reduce_kinds = config.reduce_device_pool
        all_kinds = list(dict.fromkeys(map_kinds + reduce_kinds))
        self.device_objs: List[Dict[DeviceKind, Device]] = [
            {kind: session.device(i, kind) for kind in all_kinds}
            for i in range(n)
        ]
        self.map_devices = [self.device_objs[i][map_kinds[0]]
                            for i in range(n)]

        self.speculation = None
        if config.speculative_execution:
            self.speculation = SpeculationController(
                sim, app, config, backend, health, self.map_devices,
                [cluster[i] for i in range(n)], costs=costs,
                scheduler=scheduler)

        self.managers = managers = {
            i: IntermediateManager(
                sim, cluster[i], app, config, timeline,
                owned_pids=registry.owned_by(i),
                costs=costs)
            for i in range(n)
        }
        pooled_map = len(map_kinds) > 1
        self.map_phases_by_node: List[List[MapPhase]] = [
            [MapPhase(sim, cluster[i], self.device_objs[i][kind], app,
                      config, backend, timeline, scheduler=scheduler,
                      managers=managers, network=cluster.network,
                      costs=costs, faults=faults, health=health,
                      registry=registry, speculation=self.speculation,
                      device_key=kind.value if pooled_map else None,
                      meter=self.meter)
             for kind in map_kinds]
            for i in range(n)
        ]
        self.map_phases = [mp for phases in self.map_phases_by_node
                           for mp in phases]

        # Node-crash monitors: armed for the map/shuffle window only (a
        # crash after the shuffle completed is out of this model's scope
        # and is ignored — the monitor loses its race against
        # ``shuffle_done``).
        self.shuffle_done = Event(sim)
        crashes: Tuple[NodeCrash, ...] = faults.node_crashes if faults else ()
        for crash in crashes:
            if crash.node >= n:
                raise ValueError(
                    f"node crash targets node {crash.node} but the "
                    f"cluster has {n} nodes")
            sim.process(self._crash_monitor(crash),
                        name=f"crash.n{crash.node}")

    # -- orchestration -----------------------------------------------------
    def _crash_monitor(self, crash: NodeCrash):
        sim = self.session.sim
        health = self.health
        idx, _ = yield sim.any_of([sim.timeout(crash.at), self.shuffle_done])
        if idx != 0 or not health.alive(crash.node):
            return
        health.mark_dead(crash.node, sim.now)
        self.timeline.record("node.crash",
                             self.session.cluster[crash.node].name,
                             sim.now, sim.now, node=crash.node)
        for mp in self.map_phases_by_node[crash.node]:
            mp.kill()
        self.managers[crash.node].kill()

    def start(self):
        """Launch the orchestrator; returns its process (yieldable)."""
        self.proc = self.session.sim.process(self._job(), name=self.name)
        return self.proc

    def _job(self):
        sim = self.session.sim
        cluster = self.session.cluster
        timeline = self.timeline
        health = self.health
        managers = self.managers
        scheduler = self.scheduler
        config = self.config
        result_box = self._box
        t0 = sim.now
        yield sim.all_of([mp.run() for mp in self.map_phases])
        # The merge phase continues until all pushed Partitions arrive.
        pushes = [p for mp in self.map_phases for p in mp.push_procs]
        if pushes:
            yield sim.all_of(pushes)
        if not self.shuffle_done.triggered:
            self.shuffle_done.succeed(None)
        recovery_stats = (0, 0)
        if health.any_dead:
            t_r = sim.now
            recovery_stats = yield from run_recovery(
                sim, timeline, cluster, self.app, config, self.backend,
                managers, self.map_devices, cluster.network, self.registry,
                health, self.splits, scheduler, costs=self.costs,
                meter=self.meter)
            timeline.record("phase.recovery", "job", t_r, sim.now)
        timeline.record("phase.map", "job", t0, sim.now)
        for mp in self.map_phases:
            mp.release_buffers()
        t1 = sim.now
        survivors = health.alive_nodes
        yield sim.all_of([sim.process(managers[i].finalize(),
                                      name=f"finalize{i}")
                          for i in survivors])
        timeline.record("phase.merge", "job", t1, sim.now)
        t2 = sim.now
        reduce_phases = []
        for i in survivors:
            if len(self.reduce_kinds) == 1:
                scheduler.place_reduce(i, managers[i].owned)
                reduce_phases.append(ReducePhase(
                    sim, cluster[i],
                    self.device_objs[i][self.reduce_kinds[0]], self.app,
                    config, self.backend, timeline, managers[i],
                    costs=self.costs, faults=self.faults))
                continue
            # Device pool: split the node's partitions across its devices
            # proportionally to their speed (each partition's merged data
            # is node-local either way, so this is a pure compute split).
            shares = _partition_pids(
                list(managers[i].owned),
                [(kind, self.device_objs[i][kind].spec.gflops)
                 for kind in self.reduce_kinds])
            for kind in self.reduce_kinds:
                pids = shares[kind]
                if not pids:
                    continue
                scheduler.place_reduce(i, pids, device=kind.value)
                reduce_phases.append(ReducePhase(
                    sim, cluster[i], self.device_objs[i][kind], self.app,
                    config, self.backend, timeline, managers[i],
                    costs=self.costs, faults=self.faults, pids=pids))
        yield sim.all_of([rp.run() for rp in reduce_phases])
        timeline.record("phase.reduce", "job", t2, sim.now)
        for rp in reduce_phases:
            rp.release_buffers()
        result_box["reduce_phases"] = reduce_phases
        result_box["recovery"] = recovery_stats
        result_box["times"] = (t1 - t0, t2 - t1, sim.now - t2)
        result_box["t_start"] = t0
        result_box["t_end"] = sim.now
        if self.exclusive and self.session.telemetry is not None:
            self.session.telemetry.stop()

    # -- results -----------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once the orchestrator ran to completion."""
        return "times" in self._box

    @property
    def leaked_buffer_slots(self) -> int:
        """Buffer-slot balance over every pipeline the job ran."""
        return (sum(mp.pipeline.slots_leaked for mp in self.map_phases)
                + sum(rp.pipeline.slots_leaked
                      for rp in self._box.get("reduce_phases", ())))

    def result(self) -> GlasswingResult:
        """Assemble the finished job's :class:`GlasswingResult`."""
        if not self.finished:
            raise RuntimeError(
                "the job deadlocked: the event queue drained before the "
                "orchestrator finished (fault schedule wedged the "
                "pipeline?)")
        result_box = self._box
        map_time, merge_delay, reduce_time = result_box["times"]
        output: Dict[int, List[Tuple[Any, Any]]] = {}
        for rp in result_box["reduce_phases"]:
            for pid, pairs in rp.output_pairs.items():
                output[pid] = pairs

        n = len(self.session)
        metrics = JobMetrics(self.timeline, n)
        repushed_runs, reexecuted_splits = result_box["recovery"]
        map_phases = self.map_phases
        scheduler = self.scheduler
        faults = self.faults
        speculation = self.speculation
        stats = {
            "batch_size": (map_phases[0].batch_records
                           if map_phases else None),
            "batch_autotuned": self.config.batch_size is None,
            "records_mapped": sum(mp.records_mapped for mp in map_phases),
            "pairs_emitted": sum(mp.pairs_emitted for mp in map_phases),
            "keys_reduced": sum(rp.keys_reduced
                                for rp in result_box["reduce_phases"]),
            # Exclusive tenancy owns the whole fabric; a shared session
            # reports the per-tenant meter (the fabric total would charge
            # this job with its neighbours' traffic).
            "network_bytes": (self.session.cluster.network.bytes_moved
                              if self.exclusive else self.meter.bytes_moved),
            "splits": len(self.splits),
            "dead_nodes": self.health.dead_nodes,
            "repushed_runs": repushed_runs,
            "reexecuted_splits": reexecuted_splits,
            "task_failures": faults.total_failures if faults else 0,
            "speculative_launches": speculation.launches if speculation else 0,
            "speculative_wins": speculation.wins if speculation else 0,
            "scheduler": scheduler.name,
            "sched_placements": scheduler.placements,
            "sched_locality_hits": scheduler.locality_hits,
            "sched_locality_misses": scheduler.locality_misses,
            "sched_locality_hit_rate": scheduler.locality_hit_rate,
            "sched_speculative_placements":
                scheduler.speculative_placements,
            # Buffer-slot balance: every acquired pipeline slot must be
            # returned, even by pipelines a node crash killed mid-flight
            # (phantom occupancy would poison the utilization reports).
            "leaked_buffer_slots": self.leaked_buffer_slots,
        }
        # Pending fault-plan events (a crash timer that lost its race, a
        # speculation watchdog) can outlive the job in the event heap, so
        # the job end time comes from the orchestrator, not the drained
        # clock.
        return GlasswingResult(
            app_name=self.app.name, config=self.config, n_nodes=n,
            job_time=result_box["t_end"],
            map_time=map_time, merge_delay=merge_delay,
            reduce_time=reduce_time,
            output=output, timeline=self.timeline, metrics=metrics,
            stats=stats,
            telemetry=self.session.telemetry if self.exclusive else None)


def run_glasswing(app: MapReduceApp, inputs: Dict[str, bytes],
                  cluster_spec: ClusterSpec,
                  config: Optional[JobConfig] = None,
                  costs: HostCosts = DEFAULT_HOST_COSTS,
                  faults: Optional[FaultPlan] = None
                  ) -> GlasswingResult:
    """Run one Glasswing job on a fresh simulated cluster.

    ``inputs`` maps file paths to their content; installation is free of
    simulated time (the paper excludes input generation from timings) and
    the page caches are purged before the job starts, as in §IV.
    ``faults`` optionally injects task failures, stragglers and node
    crashes, which the job survives through re-execution, speculation and
    the shuffle-recovery wave (§III-E).

    This is the single-tenant convenience wrapper: one
    :class:`ClusterSession`, one exclusive :class:`JobExecution`.  A
    multi-job service (:mod:`repro.service`) drives the same two classes
    with many concurrent jobs instead.
    """
    config = config or JobConfig()
    session = ClusterSession(cluster_spec,
                             metrics_interval=config.metrics_interval)
    execution = JobExecution(session, app, inputs, config=config,
                             costs=costs, faults=faults, exclusive=True)
    execution.start()
    session.run()
    return execution.result()


def _make_device(sim: Simulator, node, kind: DeviceKind) -> Device:
    return Device(sim, node.spec.device(kind), node)


def _partition_pids(pids: List[int], devices: List[Tuple[DeviceKind, float]]
                    ) -> Dict[DeviceKind, List[int]]:
    """Split a node's partitions across its device pool proportionally to
    device speed: each pid goes to the device whose *per-speed* load
    after taking it is smallest (ties broken by pool order), so a 20x
    faster device ends up with ~20x the partitions."""
    shares: Dict[DeviceKind, List[int]] = {kind: [] for kind, _ in devices}
    for pid in sorted(pids):
        kind = min(
            ((kind, speed, order)
             for order, (kind, speed) in enumerate(devices)),
            key=lambda t: ((len(shares[t[0]]) + 1) / max(t[1], 1e-9), t[2])
        )[0]
        shares[kind].append(pid)
    return shares
