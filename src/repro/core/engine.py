"""Job orchestration: map phase ∥ merge phase, then reduce phase.

"Execution starts with launching the map phase and, concurrently, the
merge phase at each node.  After the map phase completes, the merge phase
continues until it has received all data sent to it by map pipeline
instantiations at other nodes.  After the merge phase completes, the
reduce phase is started."  (§III)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import ClusterSpec, DeviceKind
from repro.ocl.runtime import Device
from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.coordinator import assign_splits, make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.faults import FaultInjector
from repro.core.intermediate import IntermediateManager
from repro.core.io import make_backend
from repro.core.map_phase import MapPhase
from repro.core.metrics import JobMetrics
from repro.core.reduce_phase import ReducePhase
from repro.storage.records import FixedRecordFormat

__all__ = ["run_glasswing", "GlasswingResult"]


@dataclass
class GlasswingResult:
    """Everything a finished Glasswing job produced."""

    app_name: str
    config: JobConfig
    n_nodes: int
    job_time: float                       # total virtual seconds
    map_time: float                       # map-phase extent
    merge_delay: float                    # post-map merge completion time
    reduce_time: float                    # reduce-phase extent
    output: Dict[int, List[Tuple[Any, Any]]]   # pid -> output pairs
    timeline: Timeline
    metrics: JobMetrics
    stats: Dict[str, Any] = field(default_factory=dict)

    def output_pairs(self) -> Iterator[Tuple[Any, Any]]:
        """All output pairs in partition order (TeraSort's total order)."""
        for pid in sorted(self.output):
            yield from self.output[pid]

    def sorted_output(self) -> List[Tuple[Any, Any]]:
        """Output pairs sorted by key — canonical form for comparisons."""
        return sorted(self.output_pairs(), key=lambda kv: repr(kv[0]))


def run_glasswing(app: MapReduceApp, inputs: Dict[str, bytes],
                  cluster_spec: ClusterSpec,
                  config: Optional[JobConfig] = None,
                  costs: HostCosts = DEFAULT_HOST_COSTS,
                  faults: Optional["FaultInjector"] = None
                  ) -> GlasswingResult:
    """Run one Glasswing job on a fresh simulated cluster.

    ``inputs`` maps file paths to their content; installation is free of
    simulated time (the paper excludes input generation from timings) and
    the page caches are purged before the job starts, as in §IV.
    ``faults`` optionally injects map-task failures, which the pipeline
    survives through re-execution (§III-E).
    """
    config = config or JobConfig()
    sim = Simulator()
    timeline = Timeline()
    cluster = Cluster(sim, cluster_spec, timeline=timeline)
    n = len(cluster)

    backend_kwargs = {}
    if config.storage == "dfs":
        backend_kwargs = dict(block_size=config.chunk_size,
                              replication=config.input_replication)
    backend = make_backend(config.storage, cluster, **backend_kwargs)
    for path, data in inputs.items():
        backend.install(path, data)
    backend.purge_caches()

    record_size = (app.record_format.record_size
                   if isinstance(app.record_format, FixedRecordFormat) else None)
    splits = make_splits(backend, sorted(inputs), config.chunk_size,
                         record_size=record_size)
    assignment = assign_splits(splits, backend, n)

    map_devices = [_make_device(sim, cluster[i],
                                config.effective_map_device)
                   for i in range(n)]
    if config.effective_reduce_device == config.effective_map_device:
        reduce_devices = map_devices
    else:
        reduce_devices = [_make_device(sim, cluster[i],
                                       config.effective_reduce_device)
                          for i in range(n)]

    managers = {
        i: IntermediateManager(
            sim, cluster[i], app, config, timeline,
            owned_pids=[pid for pid in range(n * config.partitions_per_node)
                        if pid % n == i],
            costs=costs)
        for i in range(n)
    }
    map_phases = [
        MapPhase(sim, cluster[i], map_devices[i], app, config, backend,
                 timeline, splits=assignment[i], managers=managers,
                 network=cluster.network, costs=costs, faults=faults)
        for i in range(n)
    ]

    result_box: Dict[str, Any] = {}

    def job():
        t0 = sim.now
        yield sim.all_of([mp.run() for mp in map_phases])
        # The merge phase continues until all pushed Partitions arrive.
        pushes = [p for mp in map_phases for p in mp.push_procs]
        if pushes:
            yield sim.all_of(pushes)
        timeline.record("phase.map", "job", t0, sim.now)
        for mp in map_phases:
            mp.release_buffers()
        t1 = sim.now
        yield sim.all_of([sim.process(m.finalize(),
                                      name=f"finalize{i}")
                          for i, m in managers.items()])
        timeline.record("phase.merge", "job", t1, sim.now)
        t2 = sim.now
        reduce_phases = [
            ReducePhase(sim, cluster[i], reduce_devices[i], app, config,
                        backend, timeline, managers[i], costs=costs)
            for i in range(n)
        ]
        yield sim.all_of([rp.run() for rp in reduce_phases])
        timeline.record("phase.reduce", "job", t2, sim.now)
        for rp in reduce_phases:
            rp.release_buffers()
        result_box["reduce_phases"] = reduce_phases
        result_box["times"] = (t1 - t0, t2 - t1, sim.now - t2)

    sim.process(job(), name="glasswing-job")
    sim.run()

    map_time, merge_delay, reduce_time = result_box["times"]
    output: Dict[int, List[Tuple[Any, Any]]] = {}
    for rp in result_box["reduce_phases"]:
        for pid, pairs in rp.output_pairs.items():
            output[pid] = pairs

    metrics = JobMetrics(timeline, n)
    stats = {
        "records_mapped": sum(mp.records_mapped for mp in map_phases),
        "pairs_emitted": sum(mp.pairs_emitted for mp in map_phases),
        "keys_reduced": sum(rp.keys_reduced
                            for rp in result_box["reduce_phases"]),
        "network_bytes": cluster.network.bytes_moved,
        "splits": len(splits),
    }
    return GlasswingResult(
        app_name=app.name, config=config, n_nodes=n, job_time=sim.now,
        map_time=map_time, merge_delay=merge_delay, reduce_time=reduce_time,
        output=output, timeline=timeline, metrics=metrics, stats=stats)


def _make_device(sim: Simulator, node, kind: DeviceKind) -> Device:
    return Device(sim, node.spec.device(kind), node)
