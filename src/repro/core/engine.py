"""Job orchestration: map phase ∥ merge phase, then reduce phase.

"Execution starts with launching the map phase and, concurrently, the
merge phase at each node.  After the map phase completes, the merge phase
continues until it has received all data sent to it by map pipeline
instantiations at other nodes.  After the merge phase completes, the
reduce phase is started."  (§III)

Fault tolerance (§III-E) is orchestrated here: a per-job
:class:`~repro.core.faults.ClusterHealth` view and
:class:`~repro.core.coordinator.ShuffleRegistry` thread through the
storage, network and phase layers.  Node crashes from the
:class:`~repro.core.faults.FaultPlan` are armed as monitor processes that
race the shuffle — a node that dies during the map/shuffle window takes
its pipeline, its in-flight pushes and its intermediate cache with it,
and a recovery wave (:func:`~repro.core.recovery.run_recovery`) rebuilds
the lost shuffle state on the survivors before merging finalises.  The
headline guarantee: any fault schedule produces the same job output as
the fault-free run, at gracefully degraded job time.

Elastic membership (docs/elasticity.md) generalises the crash machinery:
a job may start on a subset of the hardware (``active`` /
``JobConfig.active_nodes``) with the rest standing by; ``NodeJoin``
events (or the saturation-driven
:class:`~repro.core.membership.ElasticController`) activate standbys
mid-map — the joiner registers with the scheduler and starts pulling
queued splits through the ordinary ``next_for`` seam — while
``NodeLeave`` events drain actives through the same recovery wave a
crash uses (but with their durable spill still readable).  The control
plane itself is a replicated
:class:`~repro.core.membership.CoordinatorGroup`; membership transitions
and phase commits pass through its ``require_leader`` barrier, so a
``CoordinatorCrash`` costs one deterministic failover delay and nothing
else.  The partition space stays pinned to the *initial* active set, so
every membership schedule produces output byte-identical to the static
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import ClusterSpec, DeviceKind
from repro.net.transport import TrafficMeter
from repro.ocl.runtime import Device
from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.coordinator import ShuffleRegistry, make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.faults import ClusterHealth, FaultPlan, NodeCrash
from repro.core.intermediate import IntermediateManager
from repro.core.io import DFSBackend, StorageBackend, make_backend
from repro.core.map_phase import MapPhase
from repro.core.membership import (CoordinatorGroup, ElasticController,
                                   ElasticPolicy)
from repro.core.metrics import JobMetrics
from repro.core.recovery import SpeculationController, run_recovery
from repro.core.reduce_phase import ReducePhase
from repro.core.sched import make_scheduler
from repro.storage.records import FixedRecordFormat

__all__ = ["run_glasswing", "GlasswingResult", "ClusterSession",
           "JobExecution"]


@dataclass
class GlasswingResult:
    """Everything a finished Glasswing job produced."""

    app_name: str
    config: JobConfig
    n_nodes: int
    job_time: float                       # total virtual seconds
    map_time: float                       # map-phase extent
    merge_delay: float                    # post-map merge completion time
    reduce_time: float                    # reduce-phase extent
    output: Dict[int, List[Tuple[Any, Any]]]   # pid -> output pairs
    timeline: Timeline
    metrics: JobMetrics
    stats: Dict[str, Any] = field(default_factory=dict)
    #: live :class:`~repro.obs.telemetry.Telemetry` hub when the job ran
    #: with ``config.metrics_interval`` set; ``None`` otherwise
    telemetry: Optional[Any] = None

    def output_pairs(self) -> Iterator[Tuple[Any, Any]]:
        """All output pairs in partition order (TeraSort's total order)."""
        for pid in sorted(self.output):
            yield from self.output[pid]

    def sorted_output(self) -> List[Tuple[Any, Any]]:
        """Output pairs sorted by key — canonical form for comparisons.

        Keys sort by their natural order (so integer keys sort
        numerically, not as ``repr`` strings where "10" < "2"), grouped
        by type name so mixed-type key sets still have a total order;
        keys of a type without a natural order fall back to ``repr``
        within their type group.
        """
        pairs = list(self.output_pairs())
        try:
            return sorted(pairs,
                          key=lambda kv: (kv[0].__class__.__name__, kv[0]))
        except TypeError:
            return sorted(pairs, key=lambda kv: (kv[0].__class__.__name__,
                                                 repr(kv[0])))

    def to_report(self) -> Dict[str, Any]:
        """Structured JSON-serialisable job report: stats, per-stage
        breakdowns, utilization/overlap analysis, fault/recovery metrics
        and the monotonic byte/slot/wait counters (see
        :mod:`repro.obs.report` for the schema)."""
        from repro.obs.report import build_job_report
        return build_job_report(self)


class ClusterSession:
    """The long-lived substrate one or many jobs execute on.

    Owns exactly the state that is *shared* when several jobs run
    concurrently: the simulator, the session timeline (and its optional
    telemetry hub), the cluster hardware, and the per-(node, device-kind)
    :class:`~repro.ocl.runtime.Device` objects — two jobs mapping on the
    same node's GPU must queue on one execution engine, not conjure a
    second GPU.  Everything per-job (storage namespace, shuffle registry,
    health view, scheduler, phases) lives on :class:`JobExecution`.
    """

    def __init__(self, cluster_spec: ClusterSpec,
                 metrics_interval: Optional[float] = None):
        self.sim = Simulator()
        self.timeline = Timeline()
        self.telemetry = None
        if metrics_interval is not None:
            # Lazy import: the core layer only depends on obs when
            # sampling is actually requested.  Must attach before Cluster
            # construction so every layer registers its gauges as it is
            # built.
            from repro.obs.telemetry import Telemetry
            self.telemetry = Telemetry(self.sim, interval=metrics_interval)
            self.timeline.telemetry = self.telemetry
        self.cluster = Cluster(self.sim, cluster_spec, timeline=self.timeline)
        self._devices: Dict[Tuple[int, DeviceKind], Device] = {}

    def __len__(self) -> int:
        return len(self.cluster)

    def device(self, node_id: int, kind: DeviceKind) -> Device:
        """The shared device of ``kind`` on ``node_id`` (created lazily)."""
        key = (node_id, kind)
        dev = self._devices.get(key)
        if dev is None:
            dev = self._devices[key] = _make_device(
                self.sim, self.cluster[node_id], kind)
        return dev

    def run(self) -> None:
        """Drive the simulation to completion (telemetry bracketed)."""
        if self.telemetry is not None:
            self.telemetry.start()
        self.sim.run()


class JobExecution:
    """One job as a schedulable entity on a (possibly shared) session.

    Construction performs the job's zero-sim-time setup — storage
    namespace + input install, health view, shuffle registry, splits,
    scheduler plan, device wiring, managers and map pipelines — exactly
    as the single-tenant path always has; :meth:`start` launches the
    orchestrator process.  Isolation boundaries:

    * **storage/shuffle/recovery state** is private: each job gets its
      own backend namespace, :class:`ShuffleRegistry` and
      :class:`ClusterHealth`, so one job's node crash (executor-crash
      semantics) triggers *its* recovery wave without touching tenants
      sharing the node;
    * **hardware** is shared through the session: CPU fluid shares, disk
      and NIC queues, fabric slots and device engines all contend across
      jobs — that contention is the phenomenon a multi-job service
      exists to model;
    * **accounting** is split by a :class:`TrafficMeter` and, for
      concurrent jobs, a per-job :class:`~repro.simt.trace.TimelineFork`
      whose spans are job-tagged in the session trace.

    ``exclusive=True`` is the classic single-tenant mode: the job's
    health view is also installed as the network-wide one and telemetry
    stops when the job ends (bit-identical to the historical
    ``run_glasswing`` behaviour).
    """

    def __init__(self, session: ClusterSession, app: MapReduceApp,
                 inputs: Dict[str, bytes],
                 config: Optional[JobConfig] = None,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 faults: Optional[FaultPlan] = None,
                 name: str = "glasswing-job",
                 exclusive: bool = False,
                 timeline: Optional[Timeline] = None,
                 backend: Optional[StorageBackend] = None,
                 splits: Optional[List] = None,
                 active: Optional[Sequence[int]] = None,
                 elastic: Optional[ElasticPolicy] = None):
        self.session = session
        self.app = app
        self.name = name
        self.exclusive = exclusive
        self.config = config = config or JobConfig()
        self.costs = costs
        self.faults = faults
        self.timeline = timeline = (timeline if timeline is not None
                                    else session.timeline)
        sim = session.sim
        cluster = session.cluster
        n = len(cluster)
        self._box: Dict[str, Any] = {}

        # Resolve the initially-active node set.  The default — every
        # node active — is the classic static cluster; a strict subset
        # leaves the rest standing by for NodeJoin events or the elastic
        # controller.  The partition space, the input placement and the
        # schedule are all pinned to this set so any later membership
        # churn leaves the output byte-identical.
        if active is not None:
            active_ids = sorted(set(active))
        elif config.active_nodes is not None:
            if config.active_nodes > n:
                raise ValueError(
                    f"active_nodes={config.active_nodes} exceeds the "
                    f"cluster size {n}")
            active_ids = list(range(config.active_nodes))
        else:
            active_ids = list(range(n))
        if not active_ids or any(not (0 <= i < n) for i in active_ids):
            raise ValueError(
                f"active node set {active_ids} invalid for a "
                f"{n}-node cluster")
        self.initial_active = active_ids
        restricted = len(active_ids) < n

        if backend is None:
            backend_kwargs = {}
            if config.storage == "dfs":
                backend_kwargs = dict(block_size=config.chunk_size,
                                      replication=config.input_replication)
                if restricted:
                    # Standby hardware must never hold input replicas the
                    # baseline run depends on.
                    backend_kwargs["placement_nodes"] = list(active_ids)
            self.backend = backend = make_backend(config.storage, cluster,
                                                  **backend_kwargs)
            for path, data in inputs.items():
                backend.install(path, data)
            backend.purge_caches()
        else:
            # Session-lived backend shared by a *sequence* of jobs (the
            # DAG/iterative path): inputs already installed in an earlier
            # round stay put, and the caches are deliberately NOT purged —
            # warm page caches and cache-aside entries across rounds are
            # the point of sharing the backend.
            self.backend = backend
            for path, data in inputs.items():
                if not backend.exists(path):
                    backend.install(path, data)

        # Per-job fault-tolerance state: the health view gates storage
        # reads/writes and network deliveries; the registry is the
        # shuffle's global ledger that recovery replans from.
        self.health = health = ClusterHealth(
            n, active=active_ids if restricted else None)
        if exclusive:
            cluster.network.health = health
        self.meter = TrafficMeter(timeline=timeline, health=health)
        # A cache-aside wrapper (repro.storage.cache) exposes the real
        # backend as ``.base``; the DFS wiring must reach through it.
        base_backend = getattr(backend, "base", backend)
        if isinstance(base_backend, DFSBackend):
            base_backend.dfs.health = health
            base_backend.dfs.meter = self.meter
        self.registry = registry = ShuffleRegistry(
            n, config.partitions_per_node,
            nodes=active_ids if restricted else None)

        # The replicated control plane.  With one replica and no
        # CoordinatorCrash events this is pure bookkeeping: every
        # ``require_leader`` barrier returns without yielding.
        self.coordinator = CoordinatorGroup(
            sim, timeline=timeline, replicas=config.coordinator_replicas,
            failover_timeout=config.failover_timeout,
            name=f"{name}.coord")

        if splits is None:
            record_size = (app.record_format.record_size
                           if isinstance(app.record_format, FixedRecordFormat)
                           else None)
            splits = make_splits(backend, sorted(inputs), config.chunk_size,
                                 record_size=record_size)
        self.splits = splits
        self.scheduler = scheduler = make_scheduler(
            config.scheduler, sim=sim, timeline=timeline)
        scheduler.plan(splits, backend, n, active=active_ids)

        # Per-node device pools: one Device object per distinct kind (a
        # kind appearing in both phases shares its device, as before),
        # one concurrently scheduled map pipeline per pool member.
        # Devices come from the session cache, so concurrent jobs queue
        # on the same engines.
        self.map_kinds = map_kinds = config.map_device_pool
        self.reduce_kinds = reduce_kinds = config.reduce_device_pool
        all_kinds = list(dict.fromkeys(map_kinds + reduce_kinds))
        self.device_objs: List[Dict[DeviceKind, Device]] = [
            {kind: session.device(i, kind) for kind in all_kinds}
            for i in range(n)
        ]
        self.map_devices = [self.device_objs[i][map_kinds[0]]
                            for i in range(n)]

        self.speculation = None
        if config.speculative_execution:
            self.speculation = SpeculationController(
                sim, app, config, backend, health, self.map_devices,
                [cluster[i] for i in range(n)], costs=costs,
                scheduler=scheduler)

        # Managers and map pipelines exist only on active nodes; a
        # standby gets both the moment it joins (see ``_on_join``).
        self.managers = managers = {
            i: IntermediateManager(
                sim, cluster[i], app, config, timeline,
                owned_pids=registry.owned_by(i),
                costs=costs)
            for i in active_ids
        }
        self._pooled_map = pooled_map = len(map_kinds) > 1
        active_set = set(active_ids)
        self.map_phases_by_node: List[List[MapPhase]] = [
            ([MapPhase(sim, cluster[i], self.device_objs[i][kind], app,
                       config, backend, timeline, scheduler=scheduler,
                       managers=managers, network=cluster.network,
                       costs=costs, faults=faults, health=health,
                       registry=registry, speculation=self.speculation,
                       device_key=kind.value if pooled_map else None,
                       meter=self.meter)
              for kind in map_kinds]
             if i in active_set else [])
            for i in range(n)
        ]
        self.map_phases = [mp for phases in self.map_phases_by_node
                           for mp in phases]
        # Phases existing at construction: the orchestrator launches
        # these itself; phases a join adds later get their run processes
        # appended to ``_map_waits`` by ``_on_join``.
        self._initial_phases = list(self.map_phases)
        self._map_waits: List[Any] = []
        self.membership_events: List[Dict[str, Any]] = []

        # Node-crash monitors: armed for the map/shuffle window only (a
        # crash after the shuffle completed is out of this model's scope
        # and is ignored — the monitor loses its race against
        # ``shuffle_done``).
        self.shuffle_done = Event(sim)
        #: resolved when the orchestrator finishes; coordinator-crash
        #: monitors race it (the control plane may be killed in *any*
        #: phase, unlike node crashes)
        self.job_done = Event(sim)
        crashes: Tuple[NodeCrash, ...] = faults.node_crashes if faults else ()
        for crash in crashes:
            if crash.node >= n:
                raise ValueError(
                    f"node crash targets node {crash.node} but the "
                    f"cluster has {n} nodes")
            sim.process(self._crash_monitor(crash),
                        name=f"crash.n{crash.node}")

        # Membership + control-plane fault monitors.
        if faults is not None:
            for join in faults.node_joins:
                if join.node is not None and join.node >= n:
                    raise ValueError(
                        f"node join targets node {join.node} but the "
                        f"cluster has {n} nodes")
                sim.process(
                    self._membership_monitor("join", join.node, join.at),
                    name=f"join.{join.node if join.node is not None else 'auto'}")
            for leave in faults.node_leaves:
                if leave.node is not None and leave.node >= n:
                    raise ValueError(
                        f"node leave targets node {leave.node} but the "
                        f"cluster has {n} nodes")
                sim.process(
                    self._membership_monitor("leave", leave.node, leave.at),
                    name=f"leave.{leave.node if leave.node is not None else 'auto'}")
            for ccrash in faults.coordinator_crashes:
                sim.process(self._coord_crash_monitor(ccrash),
                            name=f"coordcrash@{ccrash.at}")

        self._elastic: Optional[ElasticController] = None
        if elastic is not None:
            self._elastic = ElasticController(self, elastic)

        if session.telemetry is not None:
            from repro.obs.telemetry import register_membership_gauges
            register_membership_gauges(session.telemetry, health,
                                       coordinator=self.coordinator,
                                       job=name)

    # -- orchestration -----------------------------------------------------
    def _crash_monitor(self, crash: NodeCrash):
        sim = self.session.sim
        health = self.health
        idx, _ = yield sim.any_of([sim.timeout(crash.at), self.shuffle_done])
        if idx != 0 or not health.alive(crash.node):
            return
        health.mark_dead(crash.node, sim.now)
        self.timeline.record("node.crash",
                             self.session.cluster[crash.node].name,
                             sim.now, sim.now, node=crash.node)
        for mp in self.map_phases_by_node[crash.node]:
            mp.kill()
        manager = self.managers.get(crash.node)
        if manager is not None:
            manager.kill()

    # -- elastic membership ------------------------------------------------
    def _membership_monitor(self, kind: str, node: Optional[int], at: float):
        """Fire a planned join/leave at ``at`` unless the shuffle already
        completed (membership is frozen from merge finalisation on, the
        same window rule node crashes follow)."""
        sim = self.session.sim
        idx, _ = yield sim.any_of([sim.timeout(at), self.shuffle_done])
        if idx != 0:
            return
        if kind == "join":
            yield from self._on_join(node)
        else:
            yield from self._on_leave(node)

    def _coord_crash_monitor(self, crash):
        sim = self.session.sim
        idx, _ = yield sim.any_of([sim.timeout(crash.at), self.job_done])
        if idx != 0:
            return
        self.coordinator.crash_leader()

    def inject_join(self, node: Optional[int] = None):
        """Activate a standby now (``None`` picks the lowest-id standby).

        Spawns the transition as its own process so callers — the elastic
        controller, the service layer's scale hooks — need not be
        generators themselves.  Harmless no-op when nothing can join.
        """
        return self.session.sim.process(self._on_join(node),
                                        name=f"{self.name}.join")

    def inject_leave(self, node: Optional[int] = None):
        """Drain an active node now (``None`` picks the highest-id one)."""
        return self.session.sim.process(self._on_leave(node),
                                        name=f"{self.name}.leave")

    def _on_join(self, node: Optional[int]):
        """Standby → active: one coordinator round-trip, then the node
        gets a manager + map pipelines and registers with the scheduler —
        from where the ordinary pull loop lets it steal queued splits
        with zero further engine involvement."""
        sim = self.session.sim
        health = self.health
        if self.shuffle_done.triggered:
            return
        if node is not None and node not in health.inactive:
            return
        # Admission is a control-plane operation: it blocks (and charges
        # the failover delay) while the coordinator seat is vacant.  An
        # ``auto`` node resolves *after* the barrier so transitions
        # queued behind one failover pick distinct standbys.
        yield from self.coordinator.require_leader()
        if self.shuffle_done.triggered:
            return
        if node is None:
            standbys = sorted(health.inactive)
            if not standbys:
                return
            node = standbys[0]
        elif node not in health.inactive:
            return
        health.activate(node, sim.now)
        cluster = self.session.cluster
        self.timeline.record("node.join", cluster[node].name,
                             sim.now, sim.now, node=node)
        self.membership_events.append(
            {"kind": "join", "node": node, "at": sim.now})
        cache = getattr(self.backend, "mark_rejoined", None)
        if cache is not None:
            cache(node)
        # A joiner owns no shuffle partitions (the partition space stays
        # pinned to the initial active set) — it contributes map/merge
        # work and receives rehomed partitions only through recovery.
        self.managers[node] = IntermediateManager(
            sim, cluster[node], self.app, self.config, self.timeline,
            owned_pids=[], costs=self.costs)
        self.scheduler.node_joined(node)
        phases = [MapPhase(sim, cluster[node],
                           self.device_objs[node][kind], self.app,
                           self.config, self.backend, self.timeline,
                           scheduler=self.scheduler, managers=self.managers,
                           network=cluster.network, costs=self.costs,
                           faults=self.faults, health=health,
                           registry=self.registry,
                           speculation=self.speculation,
                           device_key=(kind.value if self._pooled_map
                                       else None),
                           meter=self.meter)
                  for kind in self.map_kinds]
        self.map_phases_by_node[node] = phases
        self.map_phases.extend(phases)
        self._map_waits.extend(mp.run() for mp in phases)

    def _on_leave(self, node: Optional[int]):
        """Active → departed: drain through the recovery path.  The
        node's pipelines die like a crash's would, but its durable spill
        and replicas stay readable — so recovery re-pushes from it
        instead of re-executing its splits."""
        sim = self.session.sim
        health = self.health
        if self.shuffle_done.triggered:
            return
        if node is not None and node not in health.alive_nodes:
            return
        yield from self.coordinator.require_leader()
        alive = health.alive_nodes
        if self.shuffle_done.triggered or len(alive) <= 1:
            return
        if node is None:
            node = max(alive)
        elif node not in alive:
            return
        health.mark_departed(node, sim.now)
        cluster = self.session.cluster
        self.timeline.record("node.leave", cluster[node].name,
                             sim.now, sim.now, node=node)
        self.membership_events.append(
            {"kind": "leave", "node": node, "at": sim.now})
        for mp in self.map_phases_by_node[node]:
            mp.kill()
        manager = self.managers.get(node)
        if manager is not None:
            manager.kill()
        self.scheduler.node_left(node)
        # Evict the departing node's cache-aside entries (its RAM left
        # with it); its *disk* state deliberately survives.
        cache = getattr(self.backend, "mark_departed", None)
        if cache is not None:
            cache(node)

    def start(self):
        """Launch the orchestrator; returns its process (yieldable)."""
        self.proc = self.session.sim.process(self._job(), name=self.name)
        if self._elastic is not None:
            self.session.sim.process(self._elastic.run(),
                                     name=f"{self.name}.elastic")
        return self.proc

    def _job(self):
        sim = self.session.sim
        cluster = self.session.cluster
        timeline = self.timeline
        health = self.health
        managers = self.managers
        scheduler = self.scheduler
        config = self.config
        result_box = self._box
        t0 = sim.now
        # Growth loop: joins may append freshly spawned pipelines (and
        # their push processes) to ``_map_waits`` while we are blocked on
        # an earlier batch, so keep draining until the lists stop
        # growing.  With a static membership this degenerates to exactly
        # the classic two waits: one all_of over every map run, then one
        # all_of over every push process.
        waits = self._map_waits
        waits.extend(mp.run() for mp in self._initial_phases)
        done = 0
        waited_pushes = set()
        while True:
            if done < len(waits):
                batch = waits[done:]
                done = len(waits)
                yield sim.all_of(batch)
                continue
            # The merge phase continues until all pushed Partitions
            # arrive.
            pushes = [p for mp in self.map_phases for p in mp.push_procs
                      if id(p) not in waited_pushes]
            if not pushes:
                break
            for p in pushes:
                waited_pushes.add(id(p))
            yield sim.all_of(pushes)
        if not self.shuffle_done.triggered:
            self.shuffle_done.succeed(None)
        # Committing the shuffle is a control-plane step: a coordinator
        # crash during the map window stalls here for one failover.
        yield from self.coordinator.require_leader()
        recovery_stats = (0, 0)
        if health.needs_recovery:
            t_r = sim.now
            recovery_stats = yield from run_recovery(
                sim, timeline, cluster, self.app, config, self.backend,
                managers, self.map_devices, cluster.network, self.registry,
                health, self.splits, scheduler, costs=self.costs,
                meter=self.meter)
            timeline.record("phase.recovery", "job", t_r, sim.now)
        timeline.record("phase.map", "job", t0, sim.now)
        for mp in self.map_phases:
            mp.release_buffers()
        t1 = sim.now
        survivors = health.alive_nodes
        yield sim.all_of([sim.process(managers[i].finalize(),
                                      name=f"finalize{i}")
                          for i in survivors])
        timeline.record("phase.merge", "job", t1, sim.now)
        # Launching reduce is the second control-plane commit point (a
        # coordinator killed between map-commit and here is caught now).
        yield from self.coordinator.require_leader()
        t2 = sim.now
        reduce_phases = []
        for i in survivors:
            if not managers[i].owned:
                # A node that joined mid-map owns no shuffle partitions
                # (unless recovery rehomed some to it): map/merge help
                # only, nothing to reduce.
                continue
            if len(self.reduce_kinds) == 1:
                scheduler.place_reduce(i, managers[i].owned)
                reduce_phases.append(ReducePhase(
                    sim, cluster[i],
                    self.device_objs[i][self.reduce_kinds[0]], self.app,
                    config, self.backend, timeline, managers[i],
                    costs=self.costs, faults=self.faults))
                continue
            # Device pool: split the node's partitions across its devices
            # proportionally to their speed (each partition's merged data
            # is node-local either way, so this is a pure compute split).
            shares = _partition_pids(
                list(managers[i].owned),
                [(kind, self.device_objs[i][kind].spec.gflops)
                 for kind in self.reduce_kinds])
            for kind in self.reduce_kinds:
                pids = shares[kind]
                if not pids:
                    continue
                scheduler.place_reduce(i, pids, device=kind.value)
                reduce_phases.append(ReducePhase(
                    sim, cluster[i], self.device_objs[i][kind], self.app,
                    config, self.backend, timeline, managers[i],
                    costs=self.costs, faults=self.faults, pids=pids))
        yield sim.all_of([rp.run() for rp in reduce_phases])
        # Final commit: a coordinator crash mid-reduce resolves here, so
        # the job's end time deterministically absorbs one failover.
        yield from self.coordinator.require_leader()
        timeline.record("phase.reduce", "job", t2, sim.now)
        for rp in reduce_phases:
            rp.release_buffers()
        result_box["reduce_phases"] = reduce_phases
        result_box["recovery"] = recovery_stats
        result_box["times"] = (t1 - t0, t2 - t1, sim.now - t2)
        result_box["t_start"] = t0
        result_box["t_end"] = sim.now
        if not self.job_done.triggered:
            self.job_done.succeed(None)
        if self.exclusive and self.session.telemetry is not None:
            self.session.telemetry.stop()

    # -- results -----------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once the orchestrator ran to completion."""
        return "times" in self._box

    @property
    def leaked_buffer_slots(self) -> int:
        """Buffer-slot balance over every pipeline the job ran."""
        return (sum(mp.pipeline.slots_leaked for mp in self.map_phases)
                + sum(rp.pipeline.slots_leaked
                      for rp in self._box.get("reduce_phases", ())))

    def result(self) -> GlasswingResult:
        """Assemble the finished job's :class:`GlasswingResult`."""
        if not self.finished:
            raise RuntimeError(
                "the job deadlocked: the event queue drained before the "
                "orchestrator finished (fault schedule wedged the "
                "pipeline?)")
        result_box = self._box
        map_time, merge_delay, reduce_time = result_box["times"]
        output: Dict[int, List[Tuple[Any, Any]]] = {}
        for rp in result_box["reduce_phases"]:
            for pid, pairs in rp.output_pairs.items():
                output[pid] = pairs

        n = len(self.session)
        metrics = JobMetrics(self.timeline, n)
        repushed_runs, reexecuted_splits = result_box["recovery"]
        map_phases = self.map_phases
        scheduler = self.scheduler
        faults = self.faults
        speculation = self.speculation
        stats = {
            "batch_size": (map_phases[0].batch_records
                           if map_phases else None),
            "batch_autotuned": self.config.batch_size is None,
            "records_mapped": sum(mp.records_mapped for mp in map_phases),
            "pairs_emitted": sum(mp.pairs_emitted for mp in map_phases),
            "keys_reduced": sum(rp.keys_reduced
                                for rp in result_box["reduce_phases"]),
            # Exclusive tenancy owns the whole fabric; a shared session
            # reports the per-tenant meter (the fabric total would charge
            # this job with its neighbours' traffic).
            "network_bytes": (self.session.cluster.network.bytes_moved
                              if self.exclusive else self.meter.bytes_moved),
            "splits": len(self.splits),
            "dead_nodes": self.health.dead_nodes,
            "initial_active_nodes": len(self.initial_active),
            "final_active_nodes": len(self.health.alive_nodes),
            "joined_nodes": sorted(self.health.joined_at),
            "departed_nodes": self.health.departed_nodes,
            "membership_events": list(self.membership_events),
            "coordinator_replicas": self.config.coordinator_replicas,
            "coordinator_failovers": self.coordinator.failovers,
            "coordinator_epoch": self.coordinator.epoch,
            "elastic_scale_outs": (self._elastic.scale_outs
                                   if self._elastic else 0),
            "elastic_scale_ins": (self._elastic.scale_ins
                                  if self._elastic else 0),
            "repushed_runs": repushed_runs,
            "reexecuted_splits": reexecuted_splits,
            "task_failures": faults.total_failures if faults else 0,
            "speculative_launches": speculation.launches if speculation else 0,
            "speculative_wins": speculation.wins if speculation else 0,
            "scheduler": scheduler.name,
            "sched_placements": scheduler.placements,
            "sched_locality_hits": scheduler.locality_hits,
            "sched_locality_misses": scheduler.locality_misses,
            "sched_locality_hit_rate": scheduler.locality_hit_rate,
            "sched_speculative_placements":
                scheduler.speculative_placements,
            # Buffer-slot balance: every acquired pipeline slot must be
            # returned, even by pipelines a node crash killed mid-flight
            # (phantom occupancy would poison the utilization reports).
            "leaked_buffer_slots": self.leaked_buffer_slots,
        }
        # Pending fault-plan events (a crash timer that lost its race, a
        # speculation watchdog) can outlive the job in the event heap, so
        # the job end time comes from the orchestrator, not the drained
        # clock.
        return GlasswingResult(
            app_name=self.app.name, config=self.config, n_nodes=n,
            job_time=result_box["t_end"],
            map_time=map_time, merge_delay=merge_delay,
            reduce_time=reduce_time,
            output=output, timeline=self.timeline, metrics=metrics,
            stats=stats,
            telemetry=self.session.telemetry if self.exclusive else None)


def run_glasswing(app: MapReduceApp, inputs: Dict[str, bytes],
                  cluster_spec: ClusterSpec,
                  config: Optional[JobConfig] = None,
                  costs: HostCosts = DEFAULT_HOST_COSTS,
                  faults: Optional[FaultPlan] = None,
                  elastic: Optional[ElasticPolicy] = None
                  ) -> GlasswingResult:
    """Run one Glasswing job on a fresh simulated cluster.

    ``inputs`` maps file paths to their content; installation is free of
    simulated time (the paper excludes input generation from timings) and
    the page caches are purged before the job starts, as in §IV.
    ``faults`` optionally injects task failures, stragglers and node
    crashes, which the job survives through re-execution, speculation and
    the shuffle-recovery wave (§III-E).

    This is the single-tenant convenience wrapper: one
    :class:`ClusterSession`, one exclusive :class:`JobExecution`.  A
    multi-job service (:mod:`repro.service`) drives the same two classes
    with many concurrent jobs instead.
    """
    config = config or JobConfig()
    session = ClusterSession(cluster_spec,
                             metrics_interval=config.metrics_interval)
    execution = JobExecution(session, app, inputs, config=config,
                             costs=costs, faults=faults, exclusive=True,
                             elastic=elastic)
    execution.start()
    session.run()
    return execution.result()


def _make_device(sim: Simulator, node, kind: DeviceKind) -> Device:
    return Device(sim, node.spec.device(kind), node)


def _partition_pids(pids: List[int], devices: List[Tuple[DeviceKind, float]]
                    ) -> Dict[DeviceKind, List[int]]:
    """Split a node's partitions across its device pool proportionally to
    device speed: each pid goes to the device whose *per-speed* load
    after taking it is smallest (ties broken by pool order), so a 20x
    faster device ends up with ~20x the partitions."""
    shares: Dict[DeviceKind, List[int]] = {kind: [] for kind, _ in devices}
    for pid in sorted(pids):
        kind = min(
            ((kind, speed, order)
             for order, (kind, speed) in enumerate(devices)),
            key=lambda t: ((len(shares[t[0]]) + 1) / max(t[1], 1e-9), t[2])
        )[0]
        shares[kind].append(pid)
    return shares
