"""Job orchestration: map phase ∥ merge phase, then reduce phase.

"Execution starts with launching the map phase and, concurrently, the
merge phase at each node.  After the map phase completes, the merge phase
continues until it has received all data sent to it by map pipeline
instantiations at other nodes.  After the merge phase completes, the
reduce phase is started."  (§III)

Fault tolerance (§III-E) is orchestrated here: a per-job
:class:`~repro.core.faults.ClusterHealth` view and
:class:`~repro.core.coordinator.ShuffleRegistry` thread through the
storage, network and phase layers.  Node crashes from the
:class:`~repro.core.faults.FaultPlan` are armed as monitor processes that
race the shuffle — a node that dies during the map/shuffle window takes
its pipeline, its in-flight pushes and its intermediate cache with it,
and a recovery wave (:func:`~repro.core.recovery.run_recovery`) rebuilds
the lost shuffle state on the survivors before merging finalises.  The
headline guarantee: any fault schedule produces the same job output as
the fault-free run, at gracefully degraded job time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import ClusterSpec, DeviceKind
from repro.ocl.runtime import Device
from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.coordinator import ShuffleRegistry, make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.faults import ClusterHealth, FaultPlan, NodeCrash
from repro.core.intermediate import IntermediateManager
from repro.core.io import DFSBackend, make_backend
from repro.core.map_phase import MapPhase
from repro.core.metrics import JobMetrics
from repro.core.recovery import SpeculationController, run_recovery
from repro.core.reduce_phase import ReducePhase
from repro.core.sched import make_scheduler
from repro.storage.records import FixedRecordFormat

__all__ = ["run_glasswing", "GlasswingResult"]


@dataclass
class GlasswingResult:
    """Everything a finished Glasswing job produced."""

    app_name: str
    config: JobConfig
    n_nodes: int
    job_time: float                       # total virtual seconds
    map_time: float                       # map-phase extent
    merge_delay: float                    # post-map merge completion time
    reduce_time: float                    # reduce-phase extent
    output: Dict[int, List[Tuple[Any, Any]]]   # pid -> output pairs
    timeline: Timeline
    metrics: JobMetrics
    stats: Dict[str, Any] = field(default_factory=dict)
    #: live :class:`~repro.obs.telemetry.Telemetry` hub when the job ran
    #: with ``config.metrics_interval`` set; ``None`` otherwise
    telemetry: Optional[Any] = None

    def output_pairs(self) -> Iterator[Tuple[Any, Any]]:
        """All output pairs in partition order (TeraSort's total order)."""
        for pid in sorted(self.output):
            yield from self.output[pid]

    def sorted_output(self) -> List[Tuple[Any, Any]]:
        """Output pairs sorted by key — canonical form for comparisons.

        Keys sort by their natural order (so integer keys sort
        numerically, not as ``repr`` strings where "10" < "2"), grouped
        by type name so mixed-type key sets still have a total order;
        keys of a type without a natural order fall back to ``repr``
        within their type group.
        """
        pairs = list(self.output_pairs())
        try:
            return sorted(pairs,
                          key=lambda kv: (kv[0].__class__.__name__, kv[0]))
        except TypeError:
            return sorted(pairs, key=lambda kv: (kv[0].__class__.__name__,
                                                 repr(kv[0])))

    def to_report(self) -> Dict[str, Any]:
        """Structured JSON-serialisable job report: stats, per-stage
        breakdowns, utilization/overlap analysis, fault/recovery metrics
        and the monotonic byte/slot/wait counters (see
        :mod:`repro.obs.report` for the schema)."""
        from repro.obs.report import build_job_report
        return build_job_report(self)


def run_glasswing(app: MapReduceApp, inputs: Dict[str, bytes],
                  cluster_spec: ClusterSpec,
                  config: Optional[JobConfig] = None,
                  costs: HostCosts = DEFAULT_HOST_COSTS,
                  faults: Optional[FaultPlan] = None
                  ) -> GlasswingResult:
    """Run one Glasswing job on a fresh simulated cluster.

    ``inputs`` maps file paths to their content; installation is free of
    simulated time (the paper excludes input generation from timings) and
    the page caches are purged before the job starts, as in §IV.
    ``faults`` optionally injects task failures, stragglers and node
    crashes, which the job survives through re-execution, speculation and
    the shuffle-recovery wave (§III-E).
    """
    config = config or JobConfig()
    sim = Simulator()
    timeline = Timeline()
    telemetry = None
    if config.metrics_interval is not None:
        # Lazy import: the core layer only depends on obs when sampling
        # is actually requested.  Must attach before Cluster construction
        # so every layer registers its gauges as it is built.
        from repro.obs.telemetry import Telemetry
        telemetry = Telemetry(sim, interval=config.metrics_interval)
        timeline.telemetry = telemetry
    cluster = Cluster(sim, cluster_spec, timeline=timeline)
    n = len(cluster)

    backend_kwargs = {}
    if config.storage == "dfs":
        backend_kwargs = dict(block_size=config.chunk_size,
                              replication=config.input_replication)
    backend = make_backend(config.storage, cluster, **backend_kwargs)
    for path, data in inputs.items():
        backend.install(path, data)
    backend.purge_caches()

    # Cluster-wide fault-tolerance state: the health view gates storage
    # reads/writes and network deliveries; the registry is the shuffle's
    # global ledger that recovery replans from.
    health = ClusterHealth(n)
    cluster.network.health = health
    if isinstance(backend, DFSBackend):
        backend.dfs.health = health
    registry = ShuffleRegistry(n, config.partitions_per_node)

    record_size = (app.record_format.record_size
                   if isinstance(app.record_format, FixedRecordFormat) else None)
    splits = make_splits(backend, sorted(inputs), config.chunk_size,
                         record_size=record_size)
    scheduler = make_scheduler(config.scheduler, sim=sim, timeline=timeline)
    scheduler.plan(splits, backend, n)

    # Per-node device pools: one Device object per distinct kind (a kind
    # appearing in both phases shares its device, as before), one
    # concurrently scheduled map pipeline per pool member.
    map_kinds = config.map_device_pool
    reduce_kinds = config.reduce_device_pool
    all_kinds = list(dict.fromkeys(map_kinds + reduce_kinds))
    device_objs: List[Dict[DeviceKind, Device]] = [
        {kind: _make_device(sim, cluster[i], kind) for kind in all_kinds}
        for i in range(n)
    ]
    map_devices = [device_objs[i][map_kinds[0]] for i in range(n)]

    speculation = None
    if config.speculative_execution:
        speculation = SpeculationController(
            sim, app, config, backend, health, map_devices,
            [cluster[i] for i in range(n)], costs=costs,
            scheduler=scheduler)

    managers = {
        i: IntermediateManager(
            sim, cluster[i], app, config, timeline,
            owned_pids=registry.owned_by(i),
            costs=costs)
        for i in range(n)
    }
    pooled_map = len(map_kinds) > 1
    map_phases_by_node: List[List[MapPhase]] = [
        [MapPhase(sim, cluster[i], device_objs[i][kind], app, config,
                  backend, timeline, scheduler=scheduler, managers=managers,
                  network=cluster.network, costs=costs, faults=faults,
                  health=health, registry=registry, speculation=speculation,
                  device_key=kind.value if pooled_map else None)
         for kind in map_kinds]
        for i in range(n)
    ]
    map_phases = [mp for phases in map_phases_by_node for mp in phases]

    # Node-crash monitors: armed for the map/shuffle window only (a crash
    # after the shuffle completed is out of this model's scope and is
    # ignored — the monitor loses its race against ``shuffle_done``).
    shuffle_done = Event(sim)
    crashes: Tuple[NodeCrash, ...] = faults.node_crashes if faults else ()

    def crash_monitor(crash: NodeCrash):
        idx, _ = yield sim.any_of([sim.timeout(crash.at), shuffle_done])
        if idx != 0 or not health.alive(crash.node):
            return
        health.mark_dead(crash.node, sim.now)
        timeline.record("node.crash", cluster[crash.node].name,
                        sim.now, sim.now, node=crash.node)
        for mp in map_phases_by_node[crash.node]:
            mp.kill()
        managers[crash.node].kill()

    for crash in crashes:
        if crash.node >= n:
            raise ValueError(f"node crash targets node {crash.node} but the "
                             f"cluster has {n} nodes")
        sim.process(crash_monitor(crash), name=f"crash.n{crash.node}")

    result_box: Dict[str, Any] = {}

    def job():
        t0 = sim.now
        yield sim.all_of([mp.run() for mp in map_phases])
        # The merge phase continues until all pushed Partitions arrive.
        pushes = [p for mp in map_phases for p in mp.push_procs]
        if pushes:
            yield sim.all_of(pushes)
        if not shuffle_done.triggered:
            shuffle_done.succeed(None)
        recovery_stats = (0, 0)
        if health.any_dead:
            t_r = sim.now
            recovery_stats = yield from run_recovery(
                sim, timeline, cluster, app, config, backend, managers,
                map_devices, cluster.network, registry, health, splits,
                scheduler, costs=costs)
            timeline.record("phase.recovery", "job", t_r, sim.now)
        timeline.record("phase.map", "job", t0, sim.now)
        for mp in map_phases:
            mp.release_buffers()
        t1 = sim.now
        survivors = health.alive_nodes
        yield sim.all_of([sim.process(managers[i].finalize(),
                                      name=f"finalize{i}")
                          for i in survivors])
        timeline.record("phase.merge", "job", t1, sim.now)
        t2 = sim.now
        reduce_phases = []
        for i in survivors:
            if len(reduce_kinds) == 1:
                scheduler.place_reduce(i, managers[i].owned)
                reduce_phases.append(ReducePhase(
                    sim, cluster[i], device_objs[i][reduce_kinds[0]], app,
                    config, backend, timeline, managers[i], costs=costs,
                    faults=faults))
                continue
            # Device pool: split the node's partitions across its devices
            # proportionally to their speed (each partition's merged data
            # is node-local either way, so this is a pure compute split).
            shares = _partition_pids(
                list(managers[i].owned),
                [(kind, device_objs[i][kind].spec.gflops)
                 for kind in reduce_kinds])
            for kind in reduce_kinds:
                pids = shares[kind]
                if not pids:
                    continue
                scheduler.place_reduce(i, pids, device=kind.value)
                reduce_phases.append(ReducePhase(
                    sim, cluster[i], device_objs[i][kind], app, config,
                    backend, timeline, managers[i], costs=costs,
                    faults=faults, pids=pids))
        yield sim.all_of([rp.run() for rp in reduce_phases])
        timeline.record("phase.reduce", "job", t2, sim.now)
        for rp in reduce_phases:
            rp.release_buffers()
        result_box["reduce_phases"] = reduce_phases
        result_box["recovery"] = recovery_stats
        result_box["times"] = (t1 - t0, t2 - t1, sim.now - t2)
        result_box["t_end"] = sim.now
        if telemetry is not None:
            telemetry.stop()

    sim.process(job(), name="glasswing-job")
    if telemetry is not None:
        telemetry.start()
    sim.run()

    if "times" not in result_box:
        raise RuntimeError(
            "the job deadlocked: the event queue drained before the "
            "orchestrator finished (fault schedule wedged the pipeline?)")
    map_time, merge_delay, reduce_time = result_box["times"]
    output: Dict[int, List[Tuple[Any, Any]]] = {}
    for rp in result_box["reduce_phases"]:
        for pid, pairs in rp.output_pairs.items():
            output[pid] = pairs

    metrics = JobMetrics(timeline, n)
    repushed_runs, reexecuted_splits = result_box["recovery"]
    stats = {
        "batch_size": map_phases[0].batch_records if map_phases else None,
        "batch_autotuned": config.batch_size is None,
        "records_mapped": sum(mp.records_mapped for mp in map_phases),
        "pairs_emitted": sum(mp.pairs_emitted for mp in map_phases),
        "keys_reduced": sum(rp.keys_reduced
                            for rp in result_box["reduce_phases"]),
        "network_bytes": cluster.network.bytes_moved,
        "splits": len(splits),
        "dead_nodes": health.dead_nodes,
        "repushed_runs": repushed_runs,
        "reexecuted_splits": reexecuted_splits,
        "task_failures": faults.total_failures if faults else 0,
        "speculative_launches": speculation.launches if speculation else 0,
        "speculative_wins": speculation.wins if speculation else 0,
        "scheduler": scheduler.name,
        "sched_placements": scheduler.placements,
        "sched_locality_hits": scheduler.locality_hits,
        "sched_locality_misses": scheduler.locality_misses,
        "sched_locality_hit_rate": scheduler.locality_hit_rate,
        "sched_speculative_placements": scheduler.speculative_placements,
        # Buffer-slot balance: every acquired pipeline slot must be
        # returned, even by pipelines a node crash killed mid-flight
        # (phantom occupancy would poison the utilization reports).
        "leaked_buffer_slots": (
            sum(mp.pipeline.slots_leaked for mp in map_phases)
            + sum(rp.pipeline.slots_leaked
                  for rp in result_box["reduce_phases"])),
    }
    # Pending fault-plan events (a crash timer that lost its race, a
    # speculation watchdog) can outlive the job in the event heap, so the
    # job end time comes from the orchestrator, not the drained clock.
    return GlasswingResult(
        app_name=app.name, config=config, n_nodes=n,
        job_time=result_box["t_end"],
        map_time=map_time, merge_delay=merge_delay, reduce_time=reduce_time,
        output=output, timeline=timeline, metrics=metrics, stats=stats,
        telemetry=telemetry)


def _make_device(sim: Simulator, node, kind: DeviceKind) -> Device:
    return Device(sim, node.spec.device(kind), node)


def _partition_pids(pids: List[int], devices: List[Tuple[DeviceKind, float]]
                    ) -> Dict[DeviceKind, List[int]]:
    """Split a node's partitions across its device pool proportionally to
    device speed: each pid goes to the device whose *per-speed* load
    after taking it is smallest (ties broken by pool order), so a 20x
    faster device ends up with ~20x the partitions."""
    shares: Dict[DeviceKind, List[int]] = {kind: [] for kind, _ in devices}
    for pid in sorted(pids):
        kind = min(
            ((kind, speed, order)
             for order, (kind, speed) in enumerate(devices)),
            key=lambda t: ((len(shares[t[0]]) + 1) / max(t[1], 1e-9), t[2])
        )[0]
        shares[kind].append(pid)
    return shares
