"""Per-node intermediate data management (§III-B of the paper).

Each node runs, in parallel with its map pipeline, a group of merger
threads that manage intermediate data:

1. an in-memory cache of partitions, merged and flushed to local disk when
   the aggregate size exceeds a configurable threshold;
2. partitions received from other cluster nodes join the cache;
3. on-disk runs are continuously merged (multi-way) so the file count per
   partition stays below a configurable limit.

The **merge delay** — the paper's §III-B metric — is the time spent
finishing this work after the map phase completes and before reduction can
start.  It emerges here from the backlog the merger threads could not
clear while competing with the map kernel and partitioner threads for CPU.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.hw.node import Node
from repro.simt.core import Event, Simulator
from repro.simt.resources import Store, StoreClosed
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.data import SortedRun

__all__ = ["IntermediateManager", "DiskRun"]


@dataclass
class DiskRun:
    """A sorted, compressed run persisted on the node-local disk."""

    path: str
    pairs: List            # real data (kept in memory; bytes are modeled)
    raw_bytes: int         # uncompressed serialized size
    stored_bytes: int      # compressed size actually on disk


class IntermediateManager:
    """Owns the partitions assigned to one node.

    Global partition ``pid`` is owned by node ``pid % n_nodes``; this
    manager stores runs for its owned pids, keyed locally.
    """

    def __init__(self, sim: Simulator, node: Node,
                 app: MapReduceApp, config: JobConfig, timeline: Timeline,
                 owned_pids: List[int],
                 costs: HostCosts = DEFAULT_HOST_COSTS):
        self.sim = sim
        self.node = node
        self.app = app
        self.config = config
        self.timeline = timeline
        self.costs = costs
        self.owned = list(owned_pids)
        self._mem_runs: Dict[int, List[SortedRun]] = {p: [] for p in owned_pids}
        self._disk_runs: Dict[int, List[DiskRun]] = {p: [] for p in owned_pids}
        self._mem_bytes = 0
        self._flush_pending: set[int] = set()
        self._queue = Store(sim, name=f"{node.name}.mergeq")
        # Tasks enqueued but not yet finished; counted at enqueue time so
        # the drain check cannot race with a worker picking up a task.
        self._pending = 0
        self._idle_event: Optional[Event] = None
        self._run_seq = 0
        self._workers = [
            sim.process(self._worker(), name=f"{node.name}.merger{i}")
            for i in range(config.effective_merger_threads)
        ]
        self.merge_delay: float = 0.0
        self.spilled_bytes = 0
        self.dead = False
        tele = timeline.telemetry
        if tele is not None:
            tele.gauge("glasswing_merge_cache_bytes",
                       help="partition-cache fill (flush threshold = "
                            "capacity)",
                       probe=lambda: self._mem_bytes,
                       capacity=config.cache_threshold, node=node.name)
            tele.gauge("glasswing_merge_backlog_tasks",
                       help="flush/compact tasks enqueued but unfinished",
                       probe=lambda: self._pending, node=node.name)
            tele.gauge("glasswing_merge_queue_depth",
                       help="merge tasks waiting for a merger thread",
                       probe=lambda: self._queue.probe()["depth"],
                       node=node.name)

    # -- ingestion ---------------------------------------------------------
    def add_run(self, pid: int, run: SortedRun) -> None:
        """Accept a sorted run for owned partition ``pid`` (cache insert).

        Called by the local partitioning stage and by the network receiver
        for remote pushes.  Cheap (pointer append); merging/flushing
        happens on the merger threads.
        """
        if pid not in self._mem_runs:
            raise KeyError(f"partition {pid} is not owned by {self.node.name}")
        if not run.pairs:
            return
        self._mem_runs[pid].append(run)
        self._mem_bytes += run.raw_bytes
        self._maybe_trigger_flush()

    def adopt_partition(self, pid: int) -> None:
        """Take ownership of a partition re-assigned from a dead node.

        Starts empty: the runs the dead owner held are reproduced by the
        recovery layer (durable re-push or split re-execution) and arrive
        through :meth:`add_run` like any other shuffle data.
        """
        if pid in self._mem_runs:
            return
        self.owned.append(pid)
        self._mem_runs[pid] = []
        self._disk_runs[pid] = []

    def kill(self) -> None:
        """Node crash: stop the merger workers and drop all cached state.

        The workers are *not* interrupted — they drain naturally off the
        closed queue (an interrupt mid-flush would leave a half-charged
        disk write; with the node dead, nobody observes the difference).
        """
        self.dead = True
        self._queue.close()
        self._mem_runs = {p: [] for p in self.owned}
        self._disk_runs = {p: [] for p in self.owned}
        self._mem_bytes = 0
        self._pending = 0
        self._signal_if_idle()

    # -- lifecycle -------------------------------------------------------------
    def finalize(self) -> Generator:
        """Finish all outstanding merge work; records the merge delay.

        Must be called after the map phase completed globally (all pushes
        delivered).  Consolidates every owned partition to at most
        ``max_intermediate_files`` disk runs.
        """
        start = self.sim.now
        for pid in self.owned:
            if len(self._disk_runs[pid]) > self.config.max_intermediate_files:
                self._enqueue(("compact", pid))
        yield from self._drain()
        self.merge_delay = self.sim.now - start
        self.timeline.record("merge.delay", self.node.name, start, self.sim.now)
        self._queue.close()

    def read_partition(self, pid: int) -> Tuple[List[SortedRun], int, int]:
        """Runs of an owned partition for the reduce input reader.

        Returns ``(runs, disk_bytes, disk_raw_bytes)`` — the stored
        (compressed) bytes that must come off disk and their inflated
        size, so the reader can charge I/O and decompression.
        """
        runs = list(self._mem_runs.get(pid, []))
        disk_bytes = 0
        disk_raw = 0
        for dr in self._disk_runs.get(pid, []):
            runs.append(SortedRun(dr.pairs, dr.raw_bytes))
            disk_bytes += dr.stored_bytes
            disk_raw += dr.raw_bytes
        return runs, disk_bytes, disk_raw

    # -- flush triggering ----------------------------------------------------------
    def _maybe_trigger_flush(self) -> None:
        if self._mem_bytes <= self.config.cache_threshold:
            return
        # Flush the largest cached partitions until we are half-drained.
        target = self.config.cache_threshold // 2
        by_size = sorted(
            ((sum(r.raw_bytes for r in runs), pid)
             for pid, runs in self._mem_runs.items()
             if runs and pid not in self._flush_pending),
            reverse=True)
        projected = self._mem_bytes
        for size, pid in by_size:
            if projected <= target:
                break
            self._flush_pending.add(pid)
            self._enqueue(("flush", pid))
            projected -= size

    # -- merger workers ----------------------------------------------------------
    def _enqueue(self, task: Tuple[str, int]) -> None:
        self._pending += 1
        self._queue.put(task)

    def _worker(self) -> Generator:
        while True:
            try:
                task, pid = yield self._queue.get()
            except StoreClosed:
                return
            try:
                if task == "flush":
                    yield from self._do_flush(pid)
                elif task == "compact":
                    yield from self._do_compact(pid)
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown merge task {task!r}")
            finally:
                # kill() zeroes the counter; a worker finishing its last
                # in-flight task afterwards must not drive it negative.
                self._pending = max(0, self._pending - 1)
                self._signal_if_idle()

    def _do_flush(self, pid: int) -> Generator:
        self._flush_pending.discard(pid)
        runs = self._mem_runs[pid]
        if not runs:
            return
        self._mem_runs[pid] = []
        raw = sum(r.raw_bytes for r in runs)
        self._mem_bytes -= raw
        merged = self._merge_runs(runs)
        start = self.sim.now
        items = len(merged.pairs)
        cpu = (self.costs.merge_seconds(items)
               + self.config.compression.compress_seconds(raw))
        yield self.node.host_work(1, cpu, tag="merge.flush")
        stored = self.config.compression.compressed_size(raw)
        path = self._new_run_path(pid)
        yield from self.node.disk.write(stored, stream=path)
        self._disk_runs[pid].append(DiskRun(path, merged.pairs, raw, stored))
        self.spilled_bytes += stored
        self.timeline.record("merge.flush", self.node.name, start, self.sim.now,
                             pid=pid, items=items, bytes=stored, raw_bytes=raw)
        if len(self._disk_runs[pid]) > self.config.max_intermediate_files:
            self._enqueue(("compact", pid))

    def _do_compact(self, pid: int) -> Generator:
        disk_runs = self._disk_runs[pid]
        if len(disk_runs) <= 1:
            return
        self._disk_runs[pid] = []
        start = self.sim.now
        raw = sum(r.raw_bytes for r in disk_runs)
        stored_in = sum(r.stored_bytes for r in disk_runs)
        # Read + decompress every input run, merge, compress, write back.
        for dr in disk_runs:
            yield from self.node.disk.read(dr.stored_bytes, stream=dr.path)
        runs = [SortedRun(dr.pairs, dr.raw_bytes) for dr in disk_runs]
        merged = self._merge_runs(runs)
        cpu = (self.config.compression.decompress_seconds(raw)
               + self.costs.merge_seconds(len(merged.pairs))
               + self.config.compression.compress_seconds(raw))
        yield self.node.host_work(1, cpu, tag="merge.compact")
        stored = self.config.compression.compressed_size(raw)
        path = self._new_run_path(pid)
        yield from self.node.disk.write(stored, stream=path)
        self._disk_runs[pid].append(DiskRun(path, merged.pairs, raw, stored))
        self.timeline.record("merge.compact", self.node.name, start,
                             self.sim.now, pid=pid, stored_in=stored_in,
                             bytes=stored, raw_bytes=raw)

    # -- helpers ----------------------------------------------------------------
    def _merge_runs(self, runs: List[SortedRun]) -> SortedRun:
        """Real multi-way merge preserving sort order (a single run is
        already sorted and skips the heap — the hot path when flushes
        drain one run per partition)."""
        if len(runs) == 1:
            return SortedRun(list(runs[0].pairs), runs[0].raw_bytes)
        key = self.app.sort_key
        merged = list(heapq.merge(*[r.pairs for r in runs],
                                  key=lambda kv: key(kv[0])))
        return SortedRun(merged, sum(r.raw_bytes for r in runs))

    def _new_run_path(self, pid: int) -> str:
        self._run_seq += 1
        return f".inter/p{pid}/run{self._run_seq}"

    def _drain(self) -> Generator:
        """Wait until every enqueued task has finished."""
        while self._pending:
            self._idle_event = Event(self.sim)
            yield self._idle_event
        return

    def _signal_if_idle(self) -> None:
        if (self._idle_event is not None and not self._idle_event.triggered
                and self._pending == 0):
            self._idle_event.succeed(None)

    # -- introspection ------------------------------------------------------------
    @property
    def cached_bytes(self) -> int:
        return self._mem_bytes

    def disk_run_count(self, pid: int) -> int:
        return len(self._disk_runs[pid])

    def total_pairs(self) -> int:
        n = 0
        for runs in self._mem_runs.values():
            n += sum(len(r.pairs) for r in runs)
        for drs in self._disk_runs.values():
            n += sum(len(dr.pairs) for dr in drs)
        return n
