"""Data units flowing through the pipelines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

__all__ = ["Chunk", "MapOutput", "SortedRun", "KeyGroupChunk", "ReduceOutput"]

Pair = Tuple[Any, Any]


@dataclass
class Chunk:
    """One map-pipeline payload: a batch of records from one input split.

    With the default batch size a chunk is a whole split; smaller
    ``JobConfig.batch_size`` values slice a split into several chunks
    (``seq``/``last`` give the batch's position, ``start`` its record
    offset within the split, and ``nbytes`` its exact byte share).
    """

    index: int              # index of the owning split
    records: List[bytes]
    nbytes: int
    seq: int = 0            # batch number within the split
    last: bool = True       # final batch of the split?
    start: int = 0          # record offset of this batch within the split


@dataclass
class MapOutput:
    """Result of one map-kernel launch, before partitioning."""

    chunk_index: int
    pairs: List[Pair]
    raw_bytes: int          # serialized size of ``pairs``
    decode_items: int       # items the partitioner must decode individually
    seq: int = 0            # batch position, carried over from the Chunk
    last: bool = True


@dataclass
class SortedRun:
    """A sorted sequence of intermediate pairs (one partition's unit of
    merging).  ``raw_bytes`` is the uncompressed serialized size."""

    pairs: List[Pair]
    raw_bytes: int

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class KeyGroupChunk:
    """Reduce input: up to ``concurrent_keys * keys_per_thread`` keys with
    their grouped values, as produced by the final multi-way merge."""

    index: int
    groups: List[Tuple[Any, List[Any]]]
    nbytes: int

    @property
    def n_keys(self) -> int:
        return len(self.groups)

    @property
    def n_values(self) -> int:
        return sum(len(vs) for _, vs in self.groups)


@dataclass
class ReduceOutput:
    """Result of one reduce-kernel launch."""

    chunk_index: int
    pairs: List[Pair]
    nbytes: int
