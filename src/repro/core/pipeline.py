"""The generic 5-stage Glasswing pipeline (§III-A, §III-C, §III-D).

Five stages — Input, Stage, Kernel, Retrieve, Output — connected by FIFO
stores, with data buffers interlocking them into two groups:

* the **input group** (Input, Stage, Kernel) shares ``buffering`` input
  buffer slots: the Input stage acquires a slot before loading a chunk and
  the Kernel stage releases it when the launch finishes;
* the **output group** (Kernel, Retrieve, Output) shares ``buffering``
  output slots: the Kernel acquires one before launching and the Output
  stage releases it after sinking the result.

With single buffering the stages within each group serialise (but the two
groups still overlap — they share no buffers); with double/triple
buffering the stages of a group run concurrently.  This is exactly the
paper's §III-D interlock description, and elapsed time converging to the
dominant stage (Tables II/III) is an emergent property.

The Stage and Retrieve stages are pass-throughs when the device has
unified memory (CPU devices), as in the paper.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.simt.core import Interrupt, Simulator
from repro.simt.resources import BufferPool, Store, StoreClosed
from repro.simt.trace import Timeline

__all__ = ["Pipeline", "StageFn"]

# A stage function receives the payload and yields simulation events,
# returning the (possibly transformed) payload for the next stage.
StageFn = Callable[[Any], Generator]


class Pipeline:
    """One pipeline instantiation on one node.

    Parameters
    ----------
    sim, timeline:
        Simulation context; spans are recorded as ``{name}.{stage}``.
    name:
        Trace prefix, e.g. ``"map"`` or ``"reduce"``.
    instance:
        Trace span label (typically the node name).
    buffering:
        1, 2 or 3 — the §III-D buffering level.
    items:
        Work-item descriptors consumed by ``read_fn`` (input splits for
        the map pipeline, merged-run cursors for the reduce pipeline).
        May be a lazy iterable: scheduler-fed pipelines pull their next
        item only when the input stage is ready for it.  A ``read_fn``
        may also return :data:`Pipeline.END` to terminate the input
        stream early (e.g. a device pool with no work left for this
        device).
    read_fn, kernel_fn, output_fn:
        Mandatory stage bodies (process-style generators).
    stage_fn, retrieve_fn:
        Optional host<->device transfer stages; ``None`` disables them
        (unified memory).
    """

    #: Sentinel a ``read_fn`` may return to end the input stream early.
    END = object()

    #: pipeline-instance tokens: a multi-device node runs several
    #: pipelines with the same ``(name, instance)`` concurrently, so
    #: spans and wait edges carry a per-pipeline ``op`` meta to keep
    #: the causal matcher's identities unambiguous.
    _uids = itertools.count()

    def __init__(self, sim: Simulator, timeline: Timeline, name: str,
                 instance: str, buffering: int,
                 items: Iterable[Any],
                 read_fn: StageFn,
                 kernel_fn: StageFn,
                 output_fn: StageFn,
                 stage_fn: Optional[StageFn] = None,
                 retrieve_fn: Optional[StageFn] = None):
        if buffering not in (1, 2, 3):
            raise ValueError("buffering level must be 1, 2 or 3")
        self.sim = sim
        self.timeline = timeline
        self.name = name
        self.instance = instance
        self.items = items
        self.read_fn = read_fn
        self.stage_fn = stage_fn
        self.kernel_fn = kernel_fn
        self.retrieve_fn = retrieve_fn
        self.output_fn = output_fn
        self.in_pool = BufferPool(sim, buffering, name=f"{instance}.{name}.in")
        self.out_pool = BufferPool(sim, buffering, name=f"{instance}.{name}.out")
        self._uid = next(Pipeline._uids)
        self.elapsed: Optional[float] = None
        self.outputs: List[Any] = []
        self.killed = False
        self._stage_procs: List = []
        # Wait-distribution instruments, bound in _drive() when the
        # timeline carries a live telemetry hub (None = sampling off).
        self._slot_wait_hist = None
        self._queue_wait_hist = None
        # Queues still holding (slot, payload) tuples when the pipeline is
        # killed; kill()'s reaper drains them so the slots return to their
        # pool instead of leaking with the dropped chunks.
        self._slot_queues: List[Tuple[Store, BufferPool]] = []

    # -- public ------------------------------------------------------------
    def run(self):
        """Start all five stage processes; returns the completion event."""
        return self.sim.process(self._drive(), name=f"{self.instance}.{self.name}")

    def kill(self) -> None:
        """Crash the pipeline mid-flight (node loss): every live stage
        process is interrupted at its current yield point, discarding the
        in-flight chunks.  The driver then completes normally with the
        outputs produced so far; the engine's recovery layer is
        responsible for re-executing what was lost.

        Buffer-slot accounting survives the crash: interrupted stages
        release the slots they hold from their interrupt handlers, and a
        reaper process (scheduled after every interrupt has been
        delivered) drains the inter-stage queues, returning the slots of
        the discarded in-flight chunks to their pools."""
        self.killed = True
        for proc in self._stage_procs:
            if proc.is_alive:
                proc.interrupt("node crash")
        if self._slot_queues:
            self.sim.process(self._reap(),
                             name=f"{self.instance}.{self.name}.reap")

    @property
    def slots_leaked(self) -> int:
        """Buffer slots still held once the pipeline has terminated."""
        return self.in_pool.outstanding + self.out_pool.outstanding

    # -- internals --------------------------------------------------------------
    def _drive(self) -> Generator:
        start = self.sim.now
        sim = self.sim
        q_read = Store(sim, name=f"{self.name}.q.read")
        q_stage = Store(sim, name=f"{self.name}.q.stage")
        q_kernel = Store(sim, name=f"{self.name}.q.kernel")
        q_retrieve = Store(sim, name=f"{self.name}.q.retrieve")
        # Items queued before the kernel carry input-group slots; items
        # queued after it carry output-group slots.
        self._slot_queues = [(q_read, self.in_pool), (q_stage, self.in_pool),
                             (q_kernel, self.out_pool),
                             (q_retrieve, self.out_pool)]

        tele = self.timeline.telemetry
        if tele is not None:
            base = dict(phase=self.name, node=self.instance)
            for qname, queue in (("read", q_read), ("stage", q_stage),
                                 ("kernel", q_kernel),
                                 ("retrieve", q_retrieve)):
                tele.gauge("glasswing_pipeline_queue_depth",
                           help="items waiting in the inter-stage queue",
                           probe=lambda q=queue: len(q),
                           queue=qname, **base)
            for pname, pool in (("in", self.in_pool), ("out", self.out_pool)):
                tele.gauge("glasswing_pipeline_slots_in_use",
                           help="buffer slots held by in-flight items "
                                "(capacity = the buffering level)",
                           probe=lambda p=pool: p.outstanding,
                           capacity=pool.slots, pool=pname, **base)
                tele.gauge("glasswing_pipeline_slot_waiters",
                           help="stages blocked waiting for a buffer slot",
                           probe=lambda p=pool: p.probe()["waiters"],
                           pool=pname, **base)
            self._slot_wait_hist = tele.histogram(
                "glasswing_pipeline_slot_wait_seconds",
                help="simulated seconds stages waited for buffer slots",
                **base)
            self._queue_wait_hist = tele.histogram(
                "glasswing_pipeline_queue_wait_seconds",
                help="simulated seconds stages waited on inter-stage queues",
                **base)

        procs = [
            sim.process(self._input_stage(q_read), name=f"{self.name}.input"),
            sim.process(self._mid_stage("stage", self.stage_fn, q_read, q_stage,
                                        self.in_pool),
                        name=f"{self.name}.stage"),
            sim.process(self._kernel_stage(q_stage, q_kernel),
                        name=f"{self.name}.kernel"),
            sim.process(self._mid_stage("retrieve", self.retrieve_fn,
                                        q_kernel, q_retrieve, self.out_pool),
                        name=f"{self.name}.retrieve"),
            sim.process(self._output_stage(q_retrieve),
                        name=f"{self.name}.output"),
        ]
        self._stage_procs = procs
        yield sim.all_of(procs)
        self.elapsed = sim.now - start
        self.timeline.record(
            f"{self.name}.elapsed", self.instance, start, sim.now,
            slots_acquired=self.in_pool.acquired + self.out_pool.acquired,
            slots_released=self.in_pool.released + self.out_pool.released,
            slots_leaked=self.slots_leaked,
            items=len(self.outputs), killed=self.killed)
        return self.outputs

    def _reap(self) -> Generator:
        """Post-kill slot reclamation: runs after the interrupt hooks have
        been delivered (same virtual time, later event order), so stage
        handlers have already cancelled their pending acquires and the
        queued chunks are truly orphaned.  Sub-batch entries carry ``None``
        (their modeled item's slot rides the final sub-batch only)."""
        yield self.sim.timeout(0.0)
        for queue, pool in self._slot_queues:
            while len(queue):
                slot, _payload = (yield queue.get())
                if slot is not None:
                    pool.release(slot)

    def _observe_waits(self, slot_wait: Optional[float] = None,
                       queue_wait: Optional[float] = None) -> None:
        if self._slot_wait_hist is None:
            return
        if slot_wait is not None:
            self._slot_wait_hist.observe(slot_wait)
        if queue_wait is not None:
            self._queue_wait_hist.observe(queue_wait)

    def _span(self, stage: str, start: float, **meta: Any) -> None:
        self.timeline.record(f"{self.name}.{stage}", self.instance,
                             start, self.sim.now, op=self._uid, **meta)

    def _wait_edge(self, stage: str, wait_class: str, resource: str,
                   start: float, end: float) -> None:
        """Attribute a blocking interval to the stage's next span.

        Called at span-record time (never eagerly at the wait site) so an
        op interrupted mid-flight leaves neither a span nor an orphan
        edge — the per-span decomposition invariant stays exact under the
        fault matrix."""
        self.timeline.record_wait(wait_class, resource,
                                  f"{self.name}.{stage}", self.instance,
                                  start, end, op=self._uid)

    @staticmethod
    def _payload_meta(payload: Any) -> dict:
        """Byte/chunk counters carried by the data units (observability)."""
        meta = {}
        nbytes = getattr(payload, "nbytes", None)
        if nbytes is None:
            nbytes = getattr(payload, "raw_bytes", None)
        if nbytes is not None:
            meta["bytes"] = nbytes
        chunk = getattr(payload, "index", None)
        if chunk is None:
            chunk = getattr(payload, "chunk_index", None)
        if chunk is not None:
            meta["chunk"] = chunk
        return meta

    def _input_stage(self, downstream: Store) -> Generator:
        for item in self.items:
            t_req = self.sim.now
            acq = self.in_pool.acquire()
            try:
                slot = yield acq
            except Interrupt:
                self.in_pool.cancel(acq)
                raise
            slot_wait = self.sim.now - t_req
            self._observe_waits(slot_wait=slot_wait)
            start = self.sim.now
            try:
                payload = yield from self.read_fn(item)
            except Interrupt:
                self.in_pool.release(slot)
                raise
            if payload is Pipeline.END:
                # The reader declared the stream over (scheduler-fed
                # device pools): hand the slot back and stop pulling.
                self.in_pool.release(slot)
                break
            # Batched fan-out: a read_fn may return a list of payloads
            # (one modeled item sliced into several simulation batches).
            # The whole item shares ONE input slot — the §III-D interlock
            # counts modeled items in flight, not simulation batches, so
            # virtual time is invariant under re-batching.  Only the final
            # batch carries the slot downstream (the kernel stage releases
            # it there); earlier batches carry ``None``.  The put enqueues
            # synchronously, so once the final batch is offered the slot
            # belongs to the queue (the kill-reaper reclaims it from
            # there), not to this stage.
            payloads = payload if isinstance(payload, list) else [payload]
            owned = True
            for n, part in enumerate(payloads):
                final = n == len(payloads) - 1
                # The slot wait belongs to the modeled item, not to each
                # simulation batch: only the first batch's span carries the
                # request time and the causal edge.
                span_req = t_req if n == 0 else start
                self._span("input", start, slot=slot, slot_wait=slot_wait,
                           t_req=span_req, **self._payload_meta(part))
                if n == 0:
                    self._wait_edge("input", "buffer-slot",
                                    self.in_pool.name, t_req,
                                    t_req + slot_wait)
                put_ev = downstream.put((slot if final else None, part))
                if final:
                    owned = False
                try:
                    yield put_ev
                except Interrupt:
                    if owned:
                        self.in_pool.release(slot)
                    raise
                start = self.sim.now
        downstream.close()

    def _mid_stage(self, stage_name: str, fn: Optional[StageFn],
                   upstream: Store, downstream: Store,
                   pool: BufferPool) -> Generator:
        while True:
            t_req = self.sim.now
            try:
                slot, payload = yield upstream.get()
            except StoreClosed:
                downstream.close()
                return
            queue_wait = self.sim.now - t_req
            self._observe_waits(queue_wait=queue_wait)
            if fn is not None:
                start = self.sim.now
                try:
                    payload = yield from fn(payload)
                except Interrupt:
                    if slot is not None:
                        pool.release(slot)
                    raise
                self._span(stage_name, start, queue_wait=queue_wait,
                           t_req=t_req, **self._payload_meta(payload))
            else:
                # Unified memory: the stage is a pass-through.  A
                # zero-length marker span keeps the five-stage shape
                # visible to trace exporters and breakdown tables.
                self._span(stage_name, self.sim.now, passthrough=True,
                           queue_wait=queue_wait, t_req=t_req,
                           **self._payload_meta(payload))
            self._wait_edge(stage_name, "queue", upstream.name,
                            t_req, t_req + queue_wait)
            yield downstream.put((slot, payload))

    def _kernel_stage(self, upstream: Store, downstream: Store) -> Generator:
        # One output slot per modeled item: acquired at the item's first
        # batch, carried downstream with its final batch (the output stage
        # releases it there).  Mirrors the input-group slot sharing, so the
        # interlock depth is measured in modeled items at any batch size.
        held_out = None
        while True:
            t_req = self.sim.now
            try:
                in_slot, payload = yield upstream.get()
            except StoreClosed:
                downstream.close()
                return
            except Interrupt:
                if held_out is not None:
                    self.out_pool.release(held_out)
                raise
            queue_wait = self.sim.now - t_req
            t_slot = self.sim.now
            if held_out is None:
                acq = self.out_pool.acquire()
                try:
                    held_out = yield acq
                except Interrupt:
                    self.out_pool.cancel(acq)
                    if in_slot is not None:
                        self.in_pool.release(in_slot)
                    raise
            slot_wait = self.sim.now - t_slot
            self._observe_waits(slot_wait=slot_wait, queue_wait=queue_wait)
            start = self.sim.now
            try:
                result = yield from self.kernel_fn(payload)
            except Interrupt:
                if in_slot is not None:
                    self.in_pool.release(in_slot)
                self.out_pool.release(held_out)
                raise
            final = in_slot is not None
            if final:
                self.in_pool.release(in_slot)
            self._span("kernel", start, slot=held_out, slot_wait=slot_wait,
                       queue_wait=queue_wait, t_req=t_req,
                       **self._payload_meta(result))
            self._wait_edge("kernel", "queue", upstream.name,
                            t_req, t_req + queue_wait)
            self._wait_edge("kernel", "buffer-slot", self.out_pool.name,
                            t_slot, t_slot + slot_wait)
            put_ev = downstream.put((held_out if final else None, result))
            out_slot = held_out
            if final:
                held_out = None
            try:
                yield put_ev
            except Interrupt:
                if held_out is not None:
                    self.out_pool.release(out_slot)
                raise

    def _output_stage(self, upstream: Store) -> Generator:
        while True:
            t_req = self.sim.now
            try:
                slot, payload = yield upstream.get()
            except StoreClosed:
                return
            queue_wait = self.sim.now - t_req
            self._observe_waits(queue_wait=queue_wait)
            start = self.sim.now
            try:
                sunk = yield from self.output_fn(payload)
            except Interrupt:
                if slot is not None:
                    self.out_pool.release(slot)
                raise
            if slot is not None:
                self.out_pool.release(slot)
            self._span("output", start, queue_wait=queue_wait, t_req=t_req,
                       **self._payload_meta(payload))
            self._wait_edge("output", "queue", upstream.name,
                            t_req, t_req + queue_wait)
            self.outputs.append(sunk if sunk is not None else payload)
