"""The generic 5-stage Glasswing pipeline (§III-A, §III-C, §III-D).

Five stages — Input, Stage, Kernel, Retrieve, Output — connected by FIFO
stores, with data buffers interlocking them into two groups:

* the **input group** (Input, Stage, Kernel) shares ``buffering`` input
  buffer slots: the Input stage acquires a slot before loading a chunk and
  the Kernel stage releases it when the launch finishes;
* the **output group** (Kernel, Retrieve, Output) shares ``buffering``
  output slots: the Kernel acquires one before launching and the Output
  stage releases it after sinking the result.

With single buffering the stages within each group serialise (but the two
groups still overlap — they share no buffers); with double/triple
buffering the stages of a group run concurrently.  This is exactly the
paper's §III-D interlock description, and elapsed time converging to the
dominant stage (Tables II/III) is an emergent property.

The Stage and Retrieve stages are pass-throughs when the device has
unified memory (CPU devices), as in the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.simt.core import Simulator
from repro.simt.resources import BufferPool, Store, StoreClosed
from repro.simt.trace import Timeline

__all__ = ["Pipeline", "StageFn"]

# A stage function receives the payload and yields simulation events,
# returning the (possibly transformed) payload for the next stage.
StageFn = Callable[[Any], Generator]


class Pipeline:
    """One pipeline instantiation on one node.

    Parameters
    ----------
    sim, timeline:
        Simulation context; spans are recorded as ``{name}.{stage}``.
    name:
        Trace prefix, e.g. ``"map"`` or ``"reduce"``.
    instance:
        Trace span label (typically the node name).
    buffering:
        1, 2 or 3 — the §III-D buffering level.
    items:
        Work-item descriptors consumed by ``read_fn`` (input splits for
        the map pipeline, merged-run cursors for the reduce pipeline).
    read_fn, kernel_fn, output_fn:
        Mandatory stage bodies (process-style generators).
    stage_fn, retrieve_fn:
        Optional host<->device transfer stages; ``None`` disables them
        (unified memory).
    """

    def __init__(self, sim: Simulator, timeline: Timeline, name: str,
                 instance: str, buffering: int,
                 items: Iterable[Any],
                 read_fn: StageFn,
                 kernel_fn: StageFn,
                 output_fn: StageFn,
                 stage_fn: Optional[StageFn] = None,
                 retrieve_fn: Optional[StageFn] = None):
        if buffering not in (1, 2, 3):
            raise ValueError("buffering level must be 1, 2 or 3")
        self.sim = sim
        self.timeline = timeline
        self.name = name
        self.instance = instance
        self.items = list(items)
        self.read_fn = read_fn
        self.stage_fn = stage_fn
        self.kernel_fn = kernel_fn
        self.retrieve_fn = retrieve_fn
        self.output_fn = output_fn
        self.in_pool = BufferPool(sim, buffering, name=f"{instance}.{name}.in")
        self.out_pool = BufferPool(sim, buffering, name=f"{instance}.{name}.out")
        self.elapsed: Optional[float] = None
        self.outputs: List[Any] = []
        self.killed = False
        self._stage_procs: List = []

    # -- public ------------------------------------------------------------
    def run(self):
        """Start all five stage processes; returns the completion event."""
        return self.sim.process(self._drive(), name=f"{self.instance}.{self.name}")

    def kill(self) -> None:
        """Crash the pipeline mid-flight (node loss): every live stage
        process is interrupted at its current yield point, discarding the
        in-flight chunks.  The driver then completes normally with the
        outputs produced so far; the engine's recovery layer is
        responsible for re-executing what was lost."""
        self.killed = True
        for proc in self._stage_procs:
            if proc.is_alive:
                proc.interrupt("node crash")

    # -- internals --------------------------------------------------------------
    def _drive(self) -> Generator:
        start = self.sim.now
        sim = self.sim
        q_read = Store(sim, name=f"{self.name}.q.read")
        q_stage = Store(sim, name=f"{self.name}.q.stage")
        q_kernel = Store(sim, name=f"{self.name}.q.kernel")
        q_retrieve = Store(sim, name=f"{self.name}.q.retrieve")

        procs = [
            sim.process(self._input_stage(q_read), name=f"{self.name}.input"),
            sim.process(self._mid_stage("stage", self.stage_fn, q_read, q_stage),
                        name=f"{self.name}.stage"),
            sim.process(self._kernel_stage(q_stage, q_kernel),
                        name=f"{self.name}.kernel"),
            sim.process(self._mid_stage("retrieve", self.retrieve_fn,
                                        q_kernel, q_retrieve),
                        name=f"{self.name}.retrieve"),
            sim.process(self._output_stage(q_retrieve),
                        name=f"{self.name}.output"),
        ]
        self._stage_procs = procs
        yield sim.all_of(procs)
        self.elapsed = sim.now - start
        self.timeline.record(f"{self.name}.elapsed", self.instance,
                             start, sim.now)
        return self.outputs

    def _span(self, stage: str, start: float, **meta: Any) -> None:
        self.timeline.record(f"{self.name}.{stage}", self.instance,
                             start, self.sim.now, **meta)

    def _input_stage(self, downstream: Store) -> Generator:
        for item in self.items:
            slot = yield self.in_pool.acquire()
            start = self.sim.now
            payload = yield from self.read_fn(item)
            self._span("input", start)
            yield downstream.put((slot, payload))
        downstream.close()

    def _mid_stage(self, stage_name: str, fn: Optional[StageFn],
                   upstream: Store, downstream: Store) -> Generator:
        while True:
            try:
                slot, payload = yield upstream.get()
            except StoreClosed:
                downstream.close()
                return
            if fn is not None:
                start = self.sim.now
                payload = yield from fn(payload)
                self._span(stage_name, start)
            yield downstream.put((slot, payload))

    def _kernel_stage(self, upstream: Store, downstream: Store) -> Generator:
        while True:
            try:
                in_slot, payload = yield upstream.get()
            except StoreClosed:
                downstream.close()
                return
            out_slot = yield self.out_pool.acquire()
            start = self.sim.now
            result = yield from self.kernel_fn(payload)
            self.in_pool.release(in_slot)
            self._span("kernel", start)
            yield downstream.put((out_slot, result))

    def _output_stage(self, upstream: Store) -> Generator:
        while True:
            try:
                slot, payload = yield upstream.get()
            except StoreClosed:
                return
            start = self.sim.now
            sunk = yield from self.output_fn(payload)
            self.out_pool.release(slot)
            self._span("output", start)
            self.outputs.append(sunk if sunk is not None else payload)
