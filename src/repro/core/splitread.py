"""Record-aligned split reading (Hadoop-style line protocol).

A text split owns exactly the records whose *first byte* lies inside its
byte range.  Non-first splits therefore skip the partial record at their
head (it belongs to the predecessor) and every split reads ahead past its
end to complete its last record.  This module implements that protocol as
a pure function plus the backend-reading wrapper, so the invariant —
every record appears in exactly one split — is directly testable.
"""

from __future__ import annotations

from typing import Generator, List

from repro.hw.specs import KiB
from repro.storage.records import FixedRecordFormat, TextRecordFormat

from repro.core.coordinator import Split
from repro.core.io import StorageBackend

__all__ = ["split_text_lines", "read_split_records", "LOOKAHEAD",
           "RecordTooLong"]

#: read-ahead past the split end; must exceed the longest input line.
#: Kept small (the generators produce sub-200-byte lines) because the
#: read-ahead may cross into a remote block.
LOOKAHEAD = 8 * KiB


class RecordTooLong(ValueError):
    """An input line exceeded the reader's look-ahead window.

    The split protocol completes a split's last record by reading
    ``LOOKAHEAD`` bytes past the boundary; a longer record cannot be
    reassembled and silently truncating it would corrupt the job's
    output, so it is an error instead.
    """


def split_text_lines(raw: bytes, base: int, split_end: int,
                     first: bool = None, at_eof: bool = True) -> List[bytes]:
    """Lines starting within the split's byte range of a file.

    ``raw`` is the file content from ``base`` through at least the end of
    the last owned line (or EOF).  For non-first splits ``base`` is
    ``offset - 1`` so the first byte tells whether ``offset`` starts a
    fresh line; ``first`` marks the split at offset 0 (default: inferred
    from ``base == 0``, which is only safe when no split starts at
    offset 1 — pass it explicitly).  ``at_eof`` says whether ``raw``
    reaches the end of the file: a missing final newline is only a valid
    last record at EOF, otherwise the record continues beyond the window
    and :class:`RecordTooLong` is raised.
    """
    if first is None:
        first = base == 0
    if first:
        pos = 0
    else:
        nl = raw.find(b"\n")
        if nl == -1:
            if not at_eof and len(raw) > split_end - base:
                raise RecordTooLong(
                    f"no record boundary within the {len(raw)}-byte window "
                    f"at offset {base}")
            return []  # the whole window is the middle of one long record
        pos = nl + 1
    records: List[bytes] = []
    while base + pos < split_end:
        nl = raw.find(b"\n", pos)
        if nl == -1:
            tail = raw[pos:]
            if tail:
                if not at_eof:
                    raise RecordTooLong(
                        f"record starting at offset {base + pos} exceeds "
                        "the reader's look-ahead window")
                records.append(tail)  # final line without trailing newline
            break
        records.append(raw[pos:nl])
        pos = nl + 1
    return records


def read_split_records(backend: StorageBackend, node_id: int, split: Split,
                       record_format, lookahead: int = LOOKAHEAD
                       ) -> Generator:
    """Read one split's records; returns ``(records, payload_bytes)``.

    ``payload_bytes`` is the split's own length — the amount of input data
    this chunk accounts for (read-ahead bytes are charged to I/O but not
    double-counted as payload).
    """
    if isinstance(record_format, FixedRecordFormat):
        if split.offset % record_format.record_size or \
                split.length % record_format.record_size:
            raise ValueError(
                f"split {split.index} not aligned to "
                f"{record_format.record_size}-byte records")
        data = yield from backend.read(node_id, split.path, split.offset,
                                       split.length)
        return record_format.split_records(data), split.length
    if isinstance(record_format, TextRecordFormat):
        first = split.offset == 0
        base = split.offset - 1 if not first else 0
        end = split.offset + split.length
        want = end - base + lookahead
        data = yield from backend.read(node_id, split.path, base, want)
        at_eof = base + len(data) >= backend.size(split.path)
        return (split_text_lines(data, base, end, first=first,
                                 at_eof=at_eof),
                split.length)
    raise TypeError(f"unsupported record format {record_format!r}")
