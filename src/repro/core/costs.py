"""Host-side (non-kernel) cost constants.

These parameterise the work the Glasswing host threads do around the
kernels: decoding collector output, sorting, partitioning, merging and
grouping.  They are calibrated once, globally, so that the pipeline-stage
ratios of the paper's Tables II/III hold (see EXPERIMENTS.md); every
engine (Glasswing and baselines) uses the same constants, keeping
comparisons honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["HostCosts", "DEFAULT_HOST_COSTS", "sort_seconds"]


@dataclass(frozen=True)
class HostCosts:
    """Per-operation host CPU costs (single-thread)."""

    #: decoding one collector item (key or pair) during partitioning —
    #: includes key extraction, partition-function evaluation and copy
    decode_item: float = 400e-9
    #: one comparison-move during sorting (multiplied by n log2 n);
    #: byte-string keys make comparisons several memory touches each
    sort_item: float = 80e-9
    #: moving one pair through a multi-way merge pass
    merge_item: float = 60e-9
    #: bulk throughput of scanning/serialising partition bytes
    stream_bw: float = 800e6
    #: grouping one value under its key in the reduce input reader
    group_item: float = 40e-9
    #: fixed cost of handling one partition push (framing, socket calls)
    push_overhead: float = 200e-6

    def decode_seconds(self, items: int, nbytes: int) -> float:
        """Partitioner cost of decoding ``items`` spread over ``nbytes``."""
        return items * self.decode_item + nbytes / self.stream_bw

    def merge_seconds(self, items: int) -> float:
        return items * self.merge_item

    def group_seconds(self, items: int) -> float:
        return items * self.group_item


def sort_seconds(costs: HostCosts, items: int) -> float:
    """Comparison-sort cost of ``items`` elements (n log2 n model)."""
    if items < 2:
        return 0.0
    return costs.sort_item * items * math.log2(items)


DEFAULT_HOST_COSTS = HostCosts()
