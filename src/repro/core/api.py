"""Application-facing API: map/combine/reduce logic plus cost models.

An application subclasses :class:`MapReduceApp` and provides

* the *real* data transformations (``map_batch``, ``reduce``, optionally
  ``combine``) — all engines (Glasswing, the Hadoop baseline, the GPMR
  baseline and the sequential reference) execute exactly these, which is
  how output equivalence across engines is guaranteed;
* analytic *cost models* (``map_cost``, ``reduce_cost``) describing what
  one batch costs on a given device — the OpenCL-kernel side of the app.

This mirrors Glasswing's split between host configuration code and OpenCL
compute kernels: the map/reduce bodies here stand in for the `.cl` sources
a real Glasswing application ships.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hw.specs import DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import KVSchema, TextRecordFormat

__all__ = ["MapReduceApp", "RecordMapReduceApp", "Emitter", "stable_hash"]

Pair = Tuple[Any, Any]


def stable_hash(key: Any) -> int:
    """Deterministic (cross-run) hash used for partitioning.

    Python's builtin ``hash`` is salted per process for strings; MapReduce
    partitioning must be stable so that repeated runs and different
    engines place keys identically.
    """
    if isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8")
    else:
        data = repr(key).encode("utf-8")
    return zlib.crc32(data)


class MapReduceApp:
    """Base class for the five paper applications (and user apps).

    Subclasses must set :attr:`name`, :attr:`inter_schema`,
    :attr:`output_schema` and implement :meth:`map_batch`,
    :meth:`reduce` and the two cost methods.
    """

    #: application identifier (used in traces and result files)
    name: str = "app"
    #: how input bytes split into records
    record_format = TextRecordFormat()
    #: serialized sizes of intermediate pairs
    inter_schema: KVSchema
    #: serialized sizes of final output pairs
    output_schema: KVSchema
    #: True when the app provides :meth:`combine`
    has_combiner: bool = False
    #: True when the job has no reduce logic (TeraSort): the framework
    #: writes the merged, sorted intermediate stream directly.
    map_only_output: bool = False

    # -- real data transformations ----------------------------------------
    def map_batch(self, records: Sequence[bytes]) -> List[Pair]:
        """Map one input chunk's records to intermediate pairs."""
        raise NotImplementedError

    def combine(self, key: Any, values: List[Any]) -> List[Any]:
        """Local reduction over one key's values within a map chunk.

        Only called when :attr:`has_combiner` and the job enables the
        combiner.  Must be associative/commutative with :meth:`reduce`.
        """
        raise NotImplementedError

    def reduce(self, key: Any, values: List[Any]) -> List[Pair]:
        """Reduce one key's full value list to output pairs."""
        raise NotImplementedError

    # -- partitioning / ordering --------------------------------------------
    def partition(self, key: Any, n_partitions: int) -> int:
        """Partition index for ``key`` (hash by default; TeraSort overrides
        with a sampled range partitioner to obtain total order)."""
        return stable_hash(key) % n_partitions

    def sort_key(self, key: Any):
        """Sorting key for intermediate ordering (identity by default)."""
        return key

    # -- cost models (the OpenCL kernel side) ----------------------------------
    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        """Device cost of mapping one chunk of ``n_records`` records."""
        raise NotImplementedError

    def combine_cost(self, device: DeviceSpec, n_pairs: int) -> KernelCost:
        """Device cost of combining ``n_pairs`` intermediate pairs."""
        return KernelCost(flops=4.0 * n_pairs, launches=0)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        """Device cost of reducing ``n_keys`` keys with ``n_values`` total
        values (excluding launch overhead, which the pipeline adds from
        its concurrent-keys configuration)."""
        raise NotImplementedError

    # -- workload-division hints -------------------------------------------------
    def preferred_threads(self, device: DeviceSpec) -> Optional[int]:
        """Optional per-device thread-count override (Glasswing's
        predominant tuning variable, §1 of the paper)."""
        return None

    # -- helpers ----------------------------------------------------------------
    def run_combine(self, pairs: Iterable[Pair]) -> List[Pair]:
        """Group ``pairs`` by key and apply :meth:`combine` per key."""
        grouped: Dict[Any, List[Any]] = {}
        for k, v in pairs:
            grouped.setdefault(k, []).append(v)
        out: List[Pair] = []
        for k, vs in grouped.items():
            for v in self.combine(k, vs):
                out.append((k, v))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MapReduceApp {self.name!r}>"


class Emitter:
    """Collects ``emit(key, value)`` calls from per-record map functions."""

    __slots__ = ("pairs",)

    def __init__(self) -> None:
        self.pairs: List[Pair] = []

    def __call__(self, key: Any, value: Any) -> None:
        self.pairs.append((key, value))

    def emit(self, key: Any, value: Any) -> None:
        self.pairs.append((key, value))


class RecordMapReduceApp(MapReduceApp):
    """Per-record, emit-style variant of the kernel API (§III-F).

    The paper's OpenCL API "strictly follows the MapReduce model: the
    user functions consume input and emit output in the form of key/value
    pairs".  Subclasses implement :meth:`map_record` (one record, one
    emitter) instead of :meth:`map_batch`; the base class handles the
    chunk-wise invocation the pipeline performs.
    """

    def map_record(self, record: bytes, emit: Emitter) -> None:
        """Process one input record; call ``emit(key, value)`` freely."""
        raise NotImplementedError

    def map_batch(self, records: Sequence[bytes]) -> List[Pair]:
        emitter = Emitter()
        for record in records:
            self.map_record(record, emitter)
        return emitter.pairs
