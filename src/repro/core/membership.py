"""Elastic cluster membership and coordinator replication.

The paper's cluster is fixed-size with a single immortal coordinator;
production clusters grow, shrink and lose their control plane.  This
module adds the three missing pieces:

* :class:`CoordinatorGroup` — a replicated control plane with
  deterministic leader election.  The data plane (pipelines, pushes,
  merges) never talks to the coordinator mid-flight; the *control*
  plane — membership transitions and phase commits — passes through
  :meth:`CoordinatorGroup.require_leader`, a barrier that charges one
  failover delay when the previous leader died and then elects the
  lowest-id surviving replica.  All job state a new leader needs (the
  :class:`~repro.core.coordinator.ShuffleRegistry` delivery ledger and
  the :class:`~repro.core.faults.ClusterHealth` view) is shared, so a
  failover changes job *time* but never job *output*.

* :class:`ElasticPolicy` / :class:`ElasticController` — auto-scaling-
  group style scale-out/in driven by the PR4 telemetry saturation
  signal (mean CPU busy fraction over the active nodes), with
  high/low watermarks and a cooldown so one load spike does not flap
  the pool.

* :class:`ElasticPool` — the service layer's shared view of which
  hardware nodes are currently active; scale events update the pool and
  are broadcast to every running job, while jobs dispatched later
  snapshot the new active set.

Membership semantics (see ``docs/elasticity.md``): a **joining** node
registers with the job's scheduler and starts stealing queued map work
with zero engine changes; a **leaving** node *drains* — its unfinished
work re-enters the scheduler through the PR1 recovery path (durable
re-push or split re-execution) and, unlike a *crashed* node, its durable
spill and DFS replicas remain readable (HDFS-decommissioning
semantics), so draining is usually a cheap re-push rather than a full
re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

__all__ = ["CoordinatorGroup", "ElasticPolicy", "ElasticController",
           "ElasticPool"]


class CoordinatorGroup:
    """A replicated coordinator with deterministic leader election.

    Replicas are logical control-plane instances numbered ``0..r-1``;
    replica 0 leads initially.  :meth:`crash_leader` (driven by the
    fault plan's ``coordinator_crashes``) kills the current leader;
    the next :meth:`require_leader` barrier then runs one election —
    every concurrent waiter joins the *same* election, so the
    ``failover_timeout`` is charged exactly once — and installs the
    lowest-id surviving replica.  Election is pure bookkeeping over
    shared state, hence deterministic and output-invariant.
    """

    def __init__(self, sim: Simulator, timeline: Optional[Timeline] = None,
                 replicas: int = 1, failover_timeout: float = 0.0,
                 name: str = "coord"):
        if replicas < 1:
            raise ValueError("coordinator_replicas must be >= 1")
        if failover_timeout < 0:
            raise ValueError("failover_timeout must be >= 0")
        self.sim = sim
        self.timeline = timeline
        self.name = name
        self.replicas = list(range(replicas))
        self.dead: Dict[int, float] = {}
        self.leader: Optional[int] = 0
        self.epoch = 0                  # bumps on every leadership change
        self.failovers = 0
        self.failover_timeout = failover_timeout
        self._election: Optional[Event] = None
        self._barrier_seq = 0

    # -- state queries -----------------------------------------------------
    def alive_replicas(self) -> List[int]:
        return [r for r in self.replicas if r not in self.dead]

    @property
    def has_leader(self) -> bool:
        return self.leader is not None

    # -- failure injection -------------------------------------------------
    def crash_leader(self, at: Optional[float] = None) -> Optional[int]:
        """Kill the current leader (or, mid-election, the replica that
        would win it).  Returns the victim id, or ``None`` when every
        replica is already dead."""
        at = self.sim.now if at is None else at
        victim = self.leader
        if victim is None:
            alive = self.alive_replicas()
            victim = alive[0] if alive else None
        if victim is None:
            return None
        self.dead[victim] = at
        self.leader = None
        if self.timeline is not None:
            self.timeline.record("coord.crash", f"{self.name}{victim}",
                                 at, at, replica=victim)
        return victim

    # -- the control-plane barrier -----------------------------------------
    def require_leader(self):
        """Barrier generator: returns the leader id, electing one first
        when the previous leader died.  Free (no yield, no simulated
        time) while the leader is healthy — the common case."""
        if self.leader is not None:
            return self.leader
        if self._election is None:
            self._election = Event(self.sim)
            self.sim.process(self._elect(), name=f"{self.name}.election")
        election = self._election
        t_req = self.sim.now
        yield election
        if self.leader is None:
            raise RuntimeError(
                "control plane lost: every coordinator replica is dead "
                f"(crashed: {sorted(self.dead)})")
        if self.timeline is not None and self.sim.now > t_req:
            # One barrier span + membership wait edge per *waiter*: the
            # election is charged once, but every caller blocked on it
            # lost this much control-plane time.
            self._barrier_seq += 1
            self.timeline.record("coord.barrier", self.name,
                                 self.sim.now, self.sim.now,
                                 t_req=t_req, leader=self.leader,
                                 epoch=self.epoch, op=self._barrier_seq)
            self.timeline.record_wait("membership", f"{self.name}.election",
                                      "coord.barrier", self.name,
                                      t_req, self.sim.now,
                                      op=self._barrier_seq)
        return self.leader

    def _elect(self):
        start = self.sim.now
        if self.failover_timeout > 0:
            # Failure detection + election rounds, modeled as one fixed
            # delay (deterministic: the winner is a pure function of
            # which replicas are alive, not of message timing).
            yield self.sim.timeout(self.failover_timeout)
        election, self._election = self._election, None
        alive = self.alive_replicas()
        if alive:
            self.leader = alive[0]      # lowest alive id wins, always
            self.epoch += 1
            self.failovers += 1
            if self.timeline is not None:
                self.timeline.record(
                    "coord.failover", f"{self.name}{self.leader}",
                    start, self.sim.now, leader=self.leader,
                    epoch=self.epoch)
        election.succeed(self.leader)


@dataclass(frozen=True)
class ElasticPolicy:
    """Auto-scaling-group policy for one job's elastic node pool.

    The controller samples the mean CPU busy fraction over the active
    nodes every ``interval`` simulated seconds; sustained saturation
    above ``high_watermark`` joins the lowest-id standby, idling below
    ``low_watermark`` drains the highest-id active node, and
    ``cooldown`` spaces consecutive scale actions so one sample spike
    cannot flap the pool.
    """

    min_nodes: int = 1
    max_nodes: Optional[int] = None
    high_watermark: float = 0.85
    low_watermark: float = 0.15
    interval: float = 0.02
    cooldown: float = 0.05

    def __post_init__(self) -> None:
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        if not (0.0 <= self.low_watermark < self.high_watermark <= 1.0):
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= 1")
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


class ElasticController:
    """The scale-out/in loop of one job (auto-scaling-group pattern).

    Runs as a simulated process racing the job's ``shuffle_done`` event
    (membership only changes during the map/shuffle window); every
    action goes through the job's join/leave path, so controller-driven
    scaling is indistinguishable from a fault-plan schedule — and
    equally output-invariant.
    """

    def __init__(self, execution, policy: ElasticPolicy):
        self.execution = execution
        self.policy = policy
        self.scale_outs = 0
        self.scale_ins = 0

    def _mean_busy(self) -> float:
        cluster = self.execution.session.cluster
        nodes = self.execution.health.alive_nodes
        if not nodes:
            return 0.0
        return sum(cluster[n].cpu.busy_fraction() for n in nodes) / len(nodes)

    def run(self):
        sim = self.execution.session.sim
        policy = self.policy
        stop = self.execution.shuffle_done
        last_action = -policy.cooldown - 1.0
        while True:
            idx, _ = yield sim.any_of([sim.timeout(policy.interval), stop])
            if idx != 0:
                return
            health = self.execution.health
            active = len(health.alive_nodes)
            if sim.now - last_action < policy.cooldown:
                continue
            busy = self._mean_busy()
            cap = (policy.max_nodes if policy.max_nodes is not None
                   else health.n_nodes)
            if (busy >= policy.high_watermark and active < cap
                    and health.inactive):
                self.execution.inject_join(None)
                self.scale_outs += 1
                last_action = sim.now
            elif busy <= policy.low_watermark and active > policy.min_nodes:
                self.execution.inject_leave(None)
                self.scale_ins += 1
                last_action = sim.now


class ElasticPool:
    """The service layer's shared active-node ledger.

    One pool per :class:`~repro.service.server.JobServer`; scale events
    move hardware nodes between the ``active`` and ``standby`` sets.
    Running jobs are notified by the server; jobs dispatched later
    snapshot :attr:`active` as their initial membership.
    """

    def __init__(self, n_nodes: int,
                 active: Union[int, Sequence[int], None] = None):
        if n_nodes < 1:
            raise ValueError("the pool needs at least one node")
        if active is None:
            ids = list(range(n_nodes))
        elif isinstance(active, int):
            if not (1 <= active <= n_nodes):
                raise ValueError(
                    f"active node count {active} outside 1..{n_nodes}")
            ids = list(range(active))
        else:
            ids = sorted(set(active))
            if not ids or any(not (0 <= n < n_nodes) for n in ids):
                raise ValueError(
                    f"active ids {ids} outside the {n_nodes}-node cluster")
        self.n_nodes = n_nodes
        self.active: List[int] = ids
        self.standby: List[int] = [n for n in range(n_nodes) if n not in ids]
        self.events: List[Dict[str, Any]] = []

    def scale_out(self, node: Optional[int] = None,
                  at: float = 0.0) -> Optional[int]:
        """Activate ``node`` (default: the lowest-id standby).  Returns
        the activated node, or ``None`` when nothing can join."""
        if node is None:
            node = self.standby[0] if self.standby else None
        if node is None or node not in self.standby:
            return None
        self.standby.remove(node)
        self.active = sorted(self.active + [node])
        self.events.append({"kind": "scale-out", "node": node, "at": at})
        return node

    def scale_in(self, node: Optional[int] = None,
                 at: float = 0.0) -> Optional[int]:
        """Drain ``node`` (default: the highest-id active node).  The
        pool never drains its last node.  Returns the drained node, or
        ``None`` when nothing can leave."""
        if len(self.active) <= 1:
            return None
        if node is None:
            node = self.active[-1]
        if node not in self.active:
            return None
        self.active = [n for n in self.active if n != node]
        self.standby = sorted(self.standby + [node])
        self.events.append({"kind": "scale-in", "node": node, "at": at})
        return node
