"""The Configuration API: everything a Glasswing job can tune.

The paper's §III-F: "The Configuration API allows developers to specify
key job parameters ... input files ... which compute devices are to be
used and configure the pipeline buffering levels."  The knobs exercised by
the evaluation are all here:

* ``buffering`` — single/double/triple pipeline buffering (§III-D).
* ``collector`` / ``use_combiner`` — hash-table vs shared-buffer-pool map
  output collection, with optional combiner (§III-F, Tables II/III).
* ``partitioner_threads`` (N) and ``partitions_per_node`` (P) — the
  fine-grained intermediate-data parallelism of Figure 4.
* ``concurrent_keys`` / ``keys_per_thread`` — reduce kernel geometry
  (§III-C, Figure 5).
* ``device`` — which compute device runs the kernels (CPU/GPU/MIC).
* ``storage`` — DFS (HDFS-like) or node-local files.
* ``batch_size`` — simulation granularity of the batched hot path
  (records per pipeline payload); not a paper knob, see
  docs/performance.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.hw.specs import DeviceKind, MiB
from repro.storage.records import CompressionModel

__all__ = ["JobConfig"]


def _default_scheduler() -> str:
    """Session-wide policy override hook (used by the CI scheduler
    matrix to run the whole suite under each policy)."""
    return os.environ.get("REPRO_SCHEDULER", "static-affinity")


@dataclass(frozen=True)
class JobConfig:
    """Immutable job configuration (paper defaults unless noted)."""

    # -- devices & pipeline -------------------------------------------------
    device: DeviceKind = DeviceKind.CPU
    #: per-phase overrides — "map and reduce tasks can be executed on
    #: CPUs or GPUs" (§II): an I/O-heavy reduce can stay on the CPU while
    #: the compute-heavy map runs on the GPU
    map_device: Optional[DeviceKind] = None
    reduce_device: Optional[DeviceKind] = None
    #: heterogeneous per-node device *pool*: when set, every kind in the
    #: tuple runs its own concurrently scheduled pipeline per phase
    #: (e.g. ``(CPU, GPU)``), fed operation-by-operation by the
    #: scheduler.  ``None`` keeps the classic one-device-per-phase shape.
    devices: Optional[Tuple[DeviceKind, ...]] = None
    #: placement policy: "static-affinity" (pre-computed, the original
    #: behaviour), "dynamic-locality" (runtime pull, local-first) or
    #: "oplevel" (global LPT queue).  Defaults from $REPRO_SCHEDULER.
    scheduler: str = field(default_factory=_default_scheduler)
    buffering: int = 2                  # 1 = single, 2 = double, 3 = triple
    chunk_size: int = 16 * MiB          # input split processed per kernel
    kernel_threads: Optional[int] = None  # CPU-device thread override
    #: simulation granularity: records per pipeline payload (map) and keys
    #: per reduce work item.  ``None`` autotunes to one batch per split —
    #: the fastest wall-clock setting; 1 simulates record-at-a-time (the
    #: differential-test ground truth).  Virtual time is granularity-
    #: invariant up to cost-model rounding; see docs/performance.md.
    batch_size: Optional[int] = None

    # -- map output collection ------------------------------------------------
    collector: str = "hash"             # "hash" | "buffer"
    use_combiner: bool = True

    # -- intermediate data -----------------------------------------------------
    partitions_per_node: int = 8        # P
    partitioner_threads: int = 8        # N
    merger_threads: Optional[int] = None  # defaults to P
    cache_threshold: int = 64 * MiB     # flush when cache exceeds this
    max_intermediate_files: int = 4     # per partition, kept by merging
    compression: CompressionModel = field(default_factory=CompressionModel)

    # -- reduce pipeline -----------------------------------------------------
    concurrent_keys: int = 4096         # keys processed per reduce launch
    keys_per_thread: int = 4            # sequential keys per kernel thread
    reduce_threads_per_key: int = 1     # parallel reduction within a key
    max_values_per_launch: int = 1 << 20  # beyond this, scratch-buffer relaunch

    # -- storage ------------------------------------------------------------
    storage: str = "dfs"                # "dfs" | "local"
    output_replication: int = 3
    input_replication: int = 3

    # -- fault tolerance (§III-E) ---------------------------------------------
    #: total attempts a map/reduce task may consume before the job aborts
    max_attempts: int = 4
    #: retry delay seed: attempt ``i`` waits ``backoff_base * 2**(i-1)``
    #: seconds before relaunching (0 keeps retries back-to-back, which
    #: preserves the pre-fault-tolerance timing behaviour)
    backoff_base: float = 0.0
    #: race a speculative duplicate of straggling map tasks on another node
    speculative_execution: bool = False
    #: a launch is straggling once it exceeds this multiple of the mean
    #: observed kernel duration
    speculation_factor: float = 1.75

    # -- elasticity & control plane (docs/elasticity.md) ---------------------
    #: start the job on the first ``active_nodes`` hardware nodes only;
    #: the rest are standbys a ``NodeJoin`` (or the elastic controller)
    #: can activate mid-job.  ``None`` = every node is active (classic).
    active_nodes: Optional[int] = None
    #: control-plane replicas; 1 reproduces the single immortal
    #: coordinator (a ``CoordinatorCrash`` then kills the job)
    coordinator_replicas: int = 1
    #: virtual seconds one leader election costs (failure detection +
    #: election rounds, charged once per failover regardless of how many
    #: control-plane calls were waiting)
    failover_timeout: float = 0.05

    # -- observability ------------------------------------------------------
    #: telemetry sampling period in *simulated* seconds; ``None`` disables
    #: the sampler entirely (zero instrumentation cost)
    metrics_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.buffering not in (1, 2, 3):
            raise ValueError("buffering level must be 1, 2 or 3")
        if self.collector not in ("hash", "buffer"):
            raise ValueError(f"unknown collector {self.collector!r}")
        if self.storage not in ("dfs", "local"):
            raise ValueError(f"unknown storage {self.storage!r}")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        for attr in ("partitions_per_node", "partitioner_threads",
                     "concurrent_keys", "keys_per_thread",
                     "reduce_threads_per_key", "output_replication"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1 (or None to autotune)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.speculation_factor <= 1.0:
            raise ValueError("speculation_factor must be > 1")
        if self.metrics_interval is not None and self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be > 0 (or None)")
        if self.active_nodes is not None and self.active_nodes < 1:
            raise ValueError("active_nodes must be >= 1 (or None for all)")
        if self.coordinator_replicas < 1:
            raise ValueError("coordinator_replicas must be >= 1")
        if self.failover_timeout < 0:
            raise ValueError("failover_timeout must be >= 0")
        from repro.core.sched import SCHEDULER_NAMES
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of "
                f"{', '.join(SCHEDULER_NAMES)}")
        if self.devices is not None:
            if not self.devices:
                raise ValueError("devices pool must not be empty")
            if len(set(self.devices)) != len(self.devices):
                raise ValueError("devices pool has duplicate kinds")
        if self.use_combiner and self.collector == "buffer":
            # §III-F: the combiner is supported only for the hash table
            # collection mechanism.
            raise ValueError(
                "the combiner requires the hash-table collector")

    @property
    def effective_map_device(self) -> DeviceKind:
        """Device the map kernels run on (override or job default)."""
        return self.map_device if self.map_device is not None else self.device

    @property
    def effective_reduce_device(self) -> DeviceKind:
        """Device the reduce kernels run on (override or job default)."""
        return (self.reduce_device if self.reduce_device is not None
                else self.device)

    @property
    def map_device_pool(self) -> Tuple[DeviceKind, ...]:
        """Devices the map phase runs on (the pool, or the single
        effective device wrapped in a 1-tuple)."""
        return self.devices if self.devices else (self.effective_map_device,)

    @property
    def reduce_device_pool(self) -> Tuple[DeviceKind, ...]:
        """Devices the reduce phase runs on."""
        return self.devices if self.devices \
            else (self.effective_reduce_device,)

    @property
    def effective_merger_threads(self) -> int:
        """Merger worker count (defaults to one per partition)."""
        return self.merger_threads if self.merger_threads is not None \
            else self.partitions_per_node

    def with_(self, **kwargs) -> "JobConfig":
        """Copy with overrides (convenience for parameter sweeps)."""
        return replace(self, **kwargs)
