"""Command-line job runner: ``python -m repro <app> [options]``.

Runs one of the five paper applications on a simulated cluster with
generated input, printing the job summary and the per-stage breakdown —
the quickest way to poke at the framework without writing code::

    python -m repro wordcount --nodes 4 --megabytes 8
    python -m repro kmeans --nodes 2 --device gpu --centers 512
    python -m repro terasort --nodes 8 --records 100000

Fault tolerance (§III-E) is driven from the same entry point::

    python -m repro wordcount --node-crash 1@0.5 --fail-map 0 --fail-map 3
    python -m repro terasort --fault-seed 7 --map-rate 0.3 --speculate

Observability (traces and reports)::

    python -m repro wordcount --nodes 4 --trace-out trace.json   # Perfetto
    python -m repro terasort --report-json report.json --explain
    python -m repro wordcount --metrics-interval 0.01 --metrics-out m.om
    python -m repro explain-diff base-report.json new-report.json

Iterative / multi-round execution (:mod:`repro.dag`)::

    python -m repro kmeans --iterations 8 --tolerance 1e-3
    python -m repro dag pagerank --vertices 2000 --rounds 5
    python -m repro dag prefixsum --values 100000 --block 4096

The multi-job service (:mod:`repro.service`) has its own entry point::

    python -m repro serve --jobs 60 --max-running 4
    python -m repro serve --arrival-trace trace.json --arbiter lpt
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional, Tuple

from repro.apps import (KMeansApp, MatMulApp, PageViewApp, TeraSortApp,
                        WordCountApp)
from repro.apps import datagen
from repro.core import JobConfig, run_glasswing
from repro.core.api import MapReduceApp
from repro.core.faults import FaultPlan, NodeCrash
from repro.core.sched import SCHEDULER_NAMES
from repro.hw.presets import GBE, QDR_IB, das4_cluster
from repro.hw.specs import DeviceKind, MiB
from repro.storage.records import NO_COMPRESSION

__all__ = ["main", "serve_main", "dag_main", "explain_diff_main"]

APPS = ("wordcount", "pageview", "terasort", "kmeans", "matmul")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a Glasswing MapReduce job on a simulated cluster.")
    parser.add_argument("app", choices=APPS)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--device", choices=["cpu", "gpu"], default="cpu")
    parser.add_argument("--devices", metavar="POOL", default=None,
                        help="heterogeneous per-node device pool, e.g. "
                             "'cpu+gpu': every listed device runs its own "
                             "scheduler-fed pipeline concurrently "
                             "(overrides --device)")
    parser.add_argument("--scheduler", choices=list(SCHEDULER_NAMES),
                        default=None,
                        help="placement policy (default: static-affinity, "
                             "or $REPRO_SCHEDULER)")
    parser.add_argument("--storage", choices=["dfs", "local"], default="dfs")
    parser.add_argument("--network", choices=["ib", "gbe"], default="ib")
    parser.add_argument("--megabytes", type=float, default=8.0,
                        help="input size for the text apps")
    parser.add_argument("--records", type=int, default=80_000,
                        help="record count for terasort")
    parser.add_argument("--points", type=int, default=100_000,
                        help="observations for kmeans")
    parser.add_argument("--centers", type=int, default=256,
                        help="centers for kmeans")
    parser.add_argument("--iterations", type=int, default=1,
                        help="Lloyd iterations for kmeans: 1 (default) "
                             "runs the paper's single-iteration job; more "
                             "runs the iterative driver on the DAG engine "
                             "with the point file cached across rounds")
    parser.add_argument("--tolerance", type=float, default=1e-3,
                        help="kmeans convergence threshold on the max "
                             "center shift (used with --iterations > 1)")
    parser.add_argument("--matrix", type=int, default=1024,
                        help="matrix size for matmul (tile = matrix/4)")
    parser.add_argument("--chunk-kb", type=int, default=256)
    parser.add_argument("--batch-size", type=int, default=None,
                        metavar="RECORDS",
                        help="records per simulated pipeline payload; "
                             "1 = per-record ground-truth simulation "
                             "(default: autotuned, one batch per split)")
    parser.add_argument("--buffering", type=int, default=2,
                        choices=[1, 2, 3])
    parser.add_argument("--seed", type=int, default=42)
    faults = parser.add_argument_group("fault injection (§III-E)")
    faults.add_argument("--fail-map", type=int, action="append", default=[],
                        metavar="SPLIT",
                        help="crash this map split's first attempt "
                             "(repeatable; repeat a split to crash retries)")
    faults.add_argument("--fail-reduce", type=int, action="append",
                        default=[], metavar="PID",
                        help="crash this partition's first reduce attempt "
                             "(repeatable)")
    faults.add_argument("--node-crash", action="append", default=[],
                        metavar="NODE@TIME",
                        help="kill a node at a virtual time, e.g. 1@0.25 "
                             "(repeatable)")
    faults.add_argument("--straggle", action="append", default=[],
                        metavar="SPLIT@FACTOR",
                        help="slow a map split's kernel, e.g. 3@6 "
                             "(repeatable)")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="derive a random fault schedule from this seed")
    faults.add_argument("--map-rate", type=float, default=0.2,
                        help="per-split failure probability for --fault-seed")
    faults.add_argument("--reduce-rate", type=float, default=0.1,
                        help="per-partition failure probability for "
                             "--fault-seed")
    faults.add_argument("--straggler-rate", type=float, default=0.1,
                        help="per-split straggler probability for "
                             "--fault-seed")
    faults.add_argument("--speculate", action="store_true",
                        help="enable speculative re-execution of stragglers")
    elastic = parser.add_argument_group(
        "elastic membership (docs/elasticity.md)")
    elastic.add_argument("--active-nodes", type=int, default=None,
                         metavar="N",
                         help="start with only the first N nodes active; "
                              "the rest stand by for --join / --elastic")
    elastic.add_argument("--join", action="append", default=[],
                         metavar="NODE@TIME",
                         help="activate a standby at a virtual time, e.g. "
                              "5@0.25 or auto@0.25 for the lowest-id "
                              "standby (repeatable)")
    elastic.add_argument("--leave", action="append", default=[],
                         metavar="NODE@TIME",
                         help="drain an active node at a virtual time "
                              "(auto@T drains the highest-id one); its "
                              "work re-homes through recovery "
                              "(repeatable)")
    elastic.add_argument("--elastic", metavar="MIN:MAX", default=None,
                         help="auto-scale between MIN and MAX active "
                              "nodes from CPU saturation watermarks")
    elastic.add_argument("--coord-replicas", type=int, default=None,
                         metavar="N",
                         help="replicate the coordinator N ways (leader + "
                              "standbys; default 1)")
    elastic.add_argument("--coord-crash", action="append", default=[],
                         type=float, metavar="TIME",
                         help="kill the coordinator leader at a virtual "
                              "time; a standby takes over after "
                              "--failover-timeout (repeatable)")
    elastic.add_argument("--failover-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="leader-election delay charged per "
                              "coordinator failover (default 0.05)")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace-out", metavar="FILE.json", default=None,
                     help="write a Chrome trace-event file (load in "
                          "chrome://tracing or https://ui.perfetto.dev)")
    obs.add_argument("--report-json", metavar="FILE", default=None,
                     help="write the structured job report as JSON")
    obs.add_argument("--explain", action="store_true",
                     help="print per-phase dominant-stage / critical-path "
                          "analysis")
    obs.add_argument("--metrics-interval", type=float, default=None,
                     metavar="SECONDS",
                     help="sample queue depths / occupancy / in-flight "
                          "bytes every SECONDS of simulated time")
    obs.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write sampled metrics (.om/.prom/.txt/"
                          ".openmetrics selects OpenMetrics text, anything "
                          "else JSONL); requires --metrics-interval")
    return parser


def _parse_at(spec: str, flag: str) -> Tuple[int, float]:
    try:
        left, right = spec.split("@", 1)
        return int(left), float(right)
    except ValueError:
        raise SystemExit(f"{flag} expects ID@VALUE, got {spec!r}")


def _parse_member_at(spec: str, flag: str) -> Tuple[Optional[int], float]:
    """``NODE@TIME`` where NODE may be ``auto`` (resolved at fire time)."""
    try:
        left, right = spec.split("@", 1)
        node = None if left.strip().lower() == "auto" else int(left)
        return node, float(right)
    except ValueError:
        raise SystemExit(f"{flag} expects NODE@TIME (NODE may be 'auto'), "
                         f"got {spec!r}")


def make_faults(args, n_splits_hint: int = 64) -> Optional[FaultPlan]:
    """Build the :class:`FaultPlan` the CLI flags describe (or ``None``)."""
    from repro.core.faults import CoordinatorCrash, NodeJoin, NodeLeave
    if args.fault_seed is not None:
        return FaultPlan.seeded(
            args.fault_seed, n_splits=n_splits_hint, n_nodes=args.nodes,
            n_partitions=args.nodes * JobConfig().partitions_per_node,
            map_rate=args.map_rate, reduce_rate=args.reduce_rate,
            straggler_rate=args.straggler_rate)
    map_failures: Dict[int, int] = {}
    for split in args.fail_map:
        map_failures[split] = map_failures.get(split, 0) + 1
    reduce_failures: Dict[int, int] = {}
    for pid in args.fail_reduce:
        reduce_failures[pid] = reduce_failures.get(pid, 0) + 1
    crashes = tuple(NodeCrash(node, at)
                    for node, at in (_parse_at(s, "--node-crash")
                                     for s in args.node_crash))
    stragglers = dict(_parse_at(s, "--straggle") for s in args.straggle)
    joins = tuple(NodeJoin(node, at)
                  for node, at in (_parse_member_at(s, "--join")
                                   for s in getattr(args, "join", [])))
    leaves = tuple(NodeLeave(node, at)
                   for node, at in (_parse_member_at(s, "--leave")
                                    for s in getattr(args, "leave", [])))
    coord_crashes = tuple(CoordinatorCrash(at)
                          for at in getattr(args, "coord_crash", []))
    if not (map_failures or reduce_failures or crashes or stragglers
            or joins or leaves or coord_crashes):
        return None
    return FaultPlan(map_failures=map_failures,
                     reduce_failures=reduce_failures,
                     node_joins=joins, node_leaves=leaves,
                     coordinator_crashes=coord_crashes,
                     node_crashes=crashes,
                     stragglers={s: float(f) for s, f in stragglers.items()})


def _parse_elastic(spec: str, nodes: int):
    """``MIN:MAX`` -> :class:`~repro.core.membership.ElasticPolicy`."""
    from repro.core.membership import ElasticPolicy
    try:
        lo, hi = spec.split(":", 1)
        return ElasticPolicy(min_nodes=int(lo),
                             max_nodes=min(int(hi), nodes))
    except ValueError as exc:
        raise SystemExit(f"--elastic expects MIN:MAX, got {spec!r} ({exc})")


def _parse_device_pool(spec: str) -> Tuple[DeviceKind, ...]:
    """``"cpu+gpu"`` -> ``(DeviceKind.CPU, DeviceKind.GPU)``."""
    kinds = []
    for part in spec.split("+"):
        try:
            kinds.append(DeviceKind(part.strip().lower()))
        except ValueError:
            raise SystemExit(
                f"--devices expects kinds joined by '+', e.g. cpu+gpu; "
                f"got {spec!r}")
    return tuple(kinds)


def make_job(args) -> Tuple[MapReduceApp, Dict[str, bytes], JobConfig]:
    """Build (app, inputs, config) from parsed CLI arguments."""
    nbytes = int(args.megabytes * MiB)
    extra = {}
    if args.scheduler is not None:
        extra["scheduler"] = args.scheduler
    if args.devices is not None:
        extra["devices"] = _parse_device_pool(args.devices)
    if getattr(args, "active_nodes", None) is not None:
        extra["active_nodes"] = args.active_nodes
    if getattr(args, "coord_replicas", None) is not None:
        extra["coordinator_replicas"] = args.coord_replicas
    if getattr(args, "failover_timeout", None) is not None:
        extra["failover_timeout"] = args.failover_timeout
    config = JobConfig(
        chunk_size=args.chunk_kb * 1024,
        device=DeviceKind.GPU if args.device == "gpu" else DeviceKind.CPU,
        storage=args.storage,
        buffering=args.buffering,
        batch_size=args.batch_size,
        metrics_interval=args.metrics_interval,
        **extra)
    if args.app == "wordcount":
        return (WordCountApp(),
                {"corpus": datagen.wiki_text(nbytes, seed=args.seed)},
                config)
    if args.app == "pageview":
        return (PageViewApp(),
                {"logs": datagen.web_logs(nbytes, seed=args.seed)},
                config)
    if args.app == "terasort":
        data = datagen.teragen(args.records, seed=args.seed)
        return (TeraSortApp.from_input(data),
                {"teragen": data},
                config.with_(output_replication=1,
                             compression=NO_COMPRESSION))
    if args.app == "kmeans":
        return (KMeansApp(datagen.kmeans_centers(args.centers, 4,
                                                 seed=args.seed)),
                {"points": datagen.kmeans_points(args.points, 4,
                                                 seed=args.seed)},
                config)
    if args.app == "matmul":
        tile = max(16, args.matrix // 4)
        blob, _a, _b = datagen.matmul_tasks(args.matrix, tile,
                                            seed=args.seed)
        app = MatMulApp(tile)
        return app, {"tasks": blob}, config.with_(
            chunk_size=app.record_format.record_size)
    raise SystemExit(f"unknown app {args.app!r}")


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.core.sched import ARBITER_NAMES
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the multi-job service: a stream of job "
                    "submissions through admission control onto one "
                    "shared simulated cluster.")
    trace = parser.add_argument_group("arrival trace")
    trace.add_argument("--arrival-trace", metavar="FILE.json", default=None,
                       help="replay this JSON trace (see "
                            "repro.service.trace.dump_trace); default: a "
                            "synthetic mixed wordcount/terasort/kmeans "
                            "trace")
    trace.add_argument("--jobs", type=int, default=60,
                       help="synthetic trace length (ignored with "
                            "--arrival-trace)")
    trace.add_argument("--trace-seed", type=int, default=7,
                       help="seed for the synthetic trace")
    trace.add_argument("--mean-interarrival", type=float, default=0.002,
                       metavar="SECONDS",
                       help="mean virtual interarrival of the synthetic "
                            "trace")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--network", choices=["ib", "gbe"], default="ib")
    parser.add_argument("--storage", choices=["dfs", "local"], default="dfs")
    parser.add_argument("--scheduler", choices=list(SCHEDULER_NAMES),
                        default=None,
                        help="per-job placement policy (default: "
                             "static-affinity, or $REPRO_SCHEDULER)")
    parser.add_argument("--chunk-kb", type=int, default=8,
                        help="chunk size for service jobs (small jobs, "
                             "small chunks)")
    adm = parser.add_argument_group("admission control")
    adm.add_argument("--queue-capacity", type=int, default=32,
                     help="bounded admission queue: waiting jobs beyond "
                          "this are rejected")
    adm.add_argument("--max-running", type=int, default=4,
                     help="dispatch slots: jobs running concurrently")
    adm.add_argument("--tenant-running", type=int, default=None,
                     metavar="N",
                     help="per-tenant cap on concurrently running jobs")
    adm.add_argument("--tenant-queued", type=int, default=None, metavar="N",
                     help="per-tenant cap on queued jobs")
    adm.add_argument("--arbiter", choices=list(ARBITER_NAMES),
                     default="fair-share",
                     help="cross-job dispatch policy")
    pool = parser.add_argument_group("elastic pool (docs/elasticity.md)")
    pool.add_argument("--active-nodes", type=int, default=None, metavar="N",
                      help="start the shared pool with only the first N "
                           "nodes active")
    pool.add_argument("--scale-out", action="append", default=[],
                      metavar="[NODE@]TIME",
                      help="grow the pool at a virtual time (every running "
                           "job sees the join; repeatable)")
    pool.add_argument("--scale-in", action="append", default=[],
                      metavar="[NODE@]TIME",
                      help="drain a pool node at a virtual time "
                           "(repeatable)")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace-out", metavar="FILE.json", default=None,
                     help="write the merged multi-job Chrome trace "
                          "(per-job lane groups)")
    obs.add_argument("--report-json", metavar="FILE", default=None,
                     help="write the service report (per-job sections) "
                          "as JSON")
    obs.add_argument("--metrics-interval", type=float, default=None,
                     metavar="SECONDS",
                     help="sample glasswing_svc_* queue/admission gauges "
                          "every SECONDS of simulated time")
    obs.add_argument("--metrics-out", metavar="FILE", default=None,
                     help="write sampled metrics (OpenMetrics or JSONL "
                          "by extension); requires --metrics-interval")
    return parser


def serve_main(argv=None) -> int:
    """Entry point of ``python -m repro serve``."""
    from repro.service import (JobServer, ServicePolicy, load_trace,
                               synthetic_trace)
    args = build_serve_parser().parse_args(argv)
    if args.metrics_out and args.metrics_interval is None:
        raise SystemExit("--metrics-out requires --metrics-interval")
    if args.arrival_trace:
        requests = load_trace(args.arrival_trace)
    else:
        requests = synthetic_trace(args.jobs, seed=args.trace_seed,
                                   mean_interarrival=args.mean_interarrival)
    extra = {}
    if args.scheduler is not None:
        extra["scheduler"] = args.scheduler
    config = JobConfig(chunk_size=args.chunk_kb * 1024,
                       partitions_per_node=1, storage=args.storage, **extra)
    policy = ServicePolicy(queue_capacity=args.queue_capacity,
                           max_running=args.max_running,
                           max_per_tenant_running=args.tenant_running,
                           max_per_tenant_queued=args.tenant_queued,
                           arbiter=args.arbiter)
    cluster = das4_cluster(nodes=args.nodes,
                           network=QDR_IB if args.network == "ib" else GBE)
    try:
        server = JobServer(cluster, policy=policy, config=config,
                           metrics_interval=args.metrics_interval,
                           active_nodes=args.active_nodes)
    except ValueError as exc:    # e.g. --active-nodes outside the cluster
        raise SystemExit(f"invalid pool: {exc}")

    def _scale_spec(spec, flag):
        if "@" in spec:
            node, at = _parse_at(spec, flag)
            return node, at
        try:
            return None, float(spec)
        except ValueError:
            raise SystemExit(f"{flag} expects TIME or NODE@TIME, "
                             f"got {spec!r}")

    for spec in args.scale_out:
        node, at = _scale_spec(spec, "--scale-out")
        server.scale_out(at, node)
    for spec in args.scale_in:
        node, at = _scale_spec(spec, "--scale-in")
        server.scale_in(at, node)
    for request in requests:
        server.submit(request)
    try:
        result = server.run()
    except RuntimeError as exc:
        raise SystemExit(f"service run failed: {exc}")
    pct = result.latency_percentiles()
    print(f"service: {len(requests)} submission(s) on {args.nodes} node(s), "
          f"{policy.max_running} slot(s), queue {policy.queue_capacity}, "
          f"{policy.arbiter} arbiter")
    for key, value in result.counters.items():
        print(f"  {key:<12} {value}")
    print(f"  makespan     {result.makespan:10.4f} s")
    print(f"  throughput   {result.throughput:10.2f} jobs/s")
    print(f"  latency p50  {pct['p50']:10.4f} s")
    print(f"  latency p95  {pct['p95']:10.4f} s")
    print(f"  latency p99  {pct['p99']:10.4f} s")
    print(f"  peak running {result.peak_running}, "
          f"peak queue {result.peak_queue_depth}")
    print(f"  leaked buffer slots {result.leaked_buffer_slots}")
    if args.trace_out:
        from repro.obs import write_chrome_trace
        print(f"  trace written to "
              f"{write_chrome_trace(result.timeline, args.trace_out)}")
    if args.metrics_out:
        from repro.obs import write_metrics
        print(f"  metrics written to "
              f"{write_metrics(result.telemetry, args.metrics_out)}")
    if args.report_json:
        import json

        from repro.obs import ensure_parent_dir
        ensure_parent_dir(args.report_json)
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(result.to_report(), fh, indent=2, sort_keys=True)
        print(f"  report written to {args.report_json}")
    return 0


def _kmeans_iterative_main(args, app, inputs, config) -> int:
    """``repro kmeans --iterations N`` (N > 1): the DAG-backed driver."""
    from repro.apps.drivers import kmeans_iterate
    n_splits = max(1, -(-sum(len(v) for v in inputs.values())
                        // config.chunk_size))
    try:
        faults = make_faults(args, n_splits_hint=n_splits)
    except ValueError as exc:
        raise SystemExit(f"invalid fault schedule: {exc}")
    if faults is not None:
        raise SystemExit(
            "fault injection flags apply to the single-iteration job; "
            "drop them or use --iterations 1")
    needs_gpu = (args.device == "gpu"
                 or (config.devices is not None
                     and DeviceKind.GPU in config.devices))
    cluster = das4_cluster(nodes=args.nodes, gpu=needs_gpu,
                           network=QDR_IB if args.network == "ib" else GBE)
    run = kmeans_iterate(inputs, app.centers, cluster, config,
                         max_iterations=args.iterations,
                         tolerance=args.tolerance, engine="dag")
    print(f"kmeans-iterative on {args.nodes} node(s), "
          f"{args.device.upper()} kernels, {args.storage} storage: "
          f"{run.iterations} iteration(s), "
          f"{'converged' if run.converged else 'budget exhausted'} "
          f"(tolerance {run.tolerance:g})")
    for i, (result, shift) in enumerate(zip(run.results, run.shifts), 1):
        orphans = run.orphaned[i - 1]
        extra = f", orphaned centers {orphans}" if orphans else ""
        print(f"  round {i:<3} {result.job_time:10.4f} s   "
              f"shift {shift:12.6g}{extra}")
    print(f"  total time   {run.total_time:10.4f} s")
    cache = run.cache
    print(f"  input cache  {cache['hit_bytes']} B from cache, "
          f"{cache['miss_bytes']} B from storage "
          f"({100.0 * cache['hit_rate_bytes']:.1f}% hit rate)")
    if args.trace_out:
        from repro.obs import write_chrome_trace
        timeline = run.runner.session.timeline
        print(f"  trace written to "
              f"{write_chrome_trace(timeline, args.trace_out)}")
    if args.report_json:
        import json

        from repro.obs import ensure_parent_dir
        report = {
            "schema": "glasswing-dag-report/1",
            "dag": "kmeans",
            "iterations": run.iterations,
            "converged": run.converged,
            "tolerance": run.tolerance,
            "shifts": run.shifts,
            "orphaned": run.orphaned,
            "total_time": run.total_time,
            "rounds": [sr.section() for sr in run.runner.stage_runs],
            "cache": cache,
        }
        ensure_parent_dir(args.report_json)
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"  report written to {args.report_json}")
    return 0


DAG_APPS = ("pagerank", "prefixsum")


def build_dag_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro dag",
        description="Run a multi-round DAG application: chained "
                    "MapReduce stages on one shared session with "
                    "immutable inputs cached across rounds.")
    parser.add_argument("app", choices=DAG_APPS)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--network", choices=["ib", "gbe"], default="ib")
    parser.add_argument("--storage", choices=["dfs", "local"], default="dfs")
    parser.add_argument("--scheduler", choices=list(SCHEDULER_NAMES),
                        default=None,
                        help="placement policy (default: static-affinity, "
                             "or $REPRO_SCHEDULER)")
    parser.add_argument("--chunk-kb", type=int, default=64)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--rounds", type=int, default=5,
                        help="power-iteration rounds for pagerank")
    parser.add_argument("--vertices", type=int, default=2_000,
                        help="graph vertices for pagerank")
    parser.add_argument("--edges", type=int, default=16_000,
                        help="graph edges for pagerank")
    parser.add_argument("--damping", type=float, default=0.85,
                        help="damping factor for pagerank")
    parser.add_argument("--values", type=int, default=100_000,
                        help="record count for prefixsum")
    parser.add_argument("--block", type=int, default=4_096,
                        help="scan block size for prefixsum")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace-out", metavar="FILE.json", default=None,
                     help="write the session Chrome trace (one lane per "
                          "stage round)")
    obs.add_argument("--report-json", metavar="FILE", default=None,
                     help="write the DAG report (per-round sections) "
                          "as JSON")
    return parser


def dag_main(argv=None) -> int:
    """Entry point of ``python -m repro dag``."""
    args = build_dag_parser().parse_args(argv)
    if args.rounds < 1:
        raise SystemExit("--rounds must be >= 1")
    extra = {}
    if args.scheduler is not None:
        extra["scheduler"] = args.scheduler
    config = JobConfig(chunk_size=args.chunk_kb * 1024,
                       storage=args.storage, **extra)
    cluster = das4_cluster(nodes=args.nodes,
                           network=QDR_IB if args.network == "ib" else GBE)
    if args.app == "pagerank":
        from repro.apps.pagerank import pagerank_iterate
        edges = datagen.pagerank_edges(args.vertices, args.edges,
                                       seed=args.seed)
        run = pagerank_iterate(edges, args.vertices, cluster, config=config,
                               rounds=args.rounds, damping=args.damping)
        runner = run.runner
        print(f"pagerank on {args.nodes} node(s), {args.storage} storage: "
              f"{args.vertices} vertices, {args.edges} edges, "
              f"{run.rounds} round(s) + 1 degree round")
        top = sorted(enumerate(run.ranks), key=lambda kv: -kv[1])[:5]
        for vertex, rank in top:
            print(f"  rank[{vertex}] = {rank:.6f}")
        print("  per-round delta: "
              + ", ".join(f"{d:.3g}" for d in run.deltas))
        last_report = run.dag_results[-1].to_report()
    else:
        from repro.apps.prefixsum import prefix_sums
        values = datagen.prefix_values(args.values, seed=args.seed)
        run = prefix_sums(values, cluster, config=config,
                          block_size=args.block)
        runner = run.runner
        print(f"prefixsum on {args.nodes} node(s), {args.storage} storage: "
              f"{args.values} records, block {args.block} "
              f"({len(run.block_sums)} blocks)")
        print(f"  final prefix total {int(run.prefix[-1])}")
        last_report = run.dag_result.to_report()
    for sr in runner.stage_runs:
        print(f"  {sr.label:<16} {sr.elapsed:10.4f} s   "
              f"cache {sr.cache_hit_bytes}/"
              f"{sr.cache_hit_bytes + sr.cache_miss_bytes} B")
    print(f"  total time   {runner.total_time:10.4f} s")
    cache = runner.cache_stats()
    print(f"  input cache  {cache['hit_bytes']} B from cache, "
          f"{cache['miss_bytes']} B from storage "
          f"({100.0 * cache['hit_rate_bytes']:.1f}% hit rate)")
    if args.trace_out:
        from repro.obs import write_chrome_trace
        print(f"  trace written to "
              f"{write_chrome_trace(runner.session.timeline, args.trace_out)}")
    if args.report_json:
        import json

        from repro.obs import ensure_parent_dir
        report = dict(last_report)
        report["rounds"] = [sr.section() for sr in runner.stage_runs]
        report["total_time"] = runner.total_time
        report["cache"] = cache
        ensure_parent_dir(args.report_json)
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"  report written to {args.report_json}")
    return 0


def build_explain_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro explain-diff",
        description="Attribute the elapsed delta between two runs to "
                    "ranked (stage, wait-class, resource) causes. BASE "
                    "and NEW are causal-profile JSON files or any report "
                    "carrying a 'causal' section (--report-json output, "
                    "a BENCH_scaling.json sweep point).")
    parser.add_argument("base", metavar="BASE",
                        help="baseline profile / report JSON")
    parser.add_argument("new", metavar="NEW",
                        help="comparison profile / report JSON")
    parser.add_argument("--top", type=int, default=8, metavar="K",
                        help="causes to rank (default: %(default)s)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the glasswing-causal-diff/1 "
                             "document as JSON")
    return parser


def explain_diff_main(argv=None) -> int:
    """Entry point of ``python -m repro explain-diff``."""
    from repro.obs import ensure_parent_dir, explain_diff, render_diff
    args = build_explain_diff_parser().parse_args(argv)
    if args.top < 1:
        raise SystemExit("--top must be >= 1")
    try:
        diff = explain_diff(args.base, args.new, top_k=args.top)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"explain-diff: {exc}")
    print(render_diff(diff))
    if args.json:
        import json
        ensure_parent_dir(args.json)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(diff, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"diff written to {args.json}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        import sys
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "dag":
        return dag_main(argv[1:])
    if argv and argv[0] == "explain-diff":
        return explain_diff_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.metrics_out and args.metrics_interval is None:
        raise SystemExit("--metrics-out requires --metrics-interval")
    if args.iterations < 1:
        raise SystemExit("--iterations must be >= 1")
    app, inputs, config = make_job(args)
    if args.app == "kmeans" and args.iterations > 1:
        return _kmeans_iterative_main(args, app, inputs, config)
    if args.speculate:
        config = config.with_(speculative_execution=True)
    n_splits = max(1, -(-sum(len(v) for v in inputs.values())
                        // config.chunk_size))
    try:
        faults = make_faults(args, n_splits_hint=n_splits)
    except ValueError as exc:    # e.g. straggler factor < 1
        raise SystemExit(f"invalid fault schedule: {exc}")
    needs_gpu = (args.device == "gpu"
                 or (config.devices is not None
                     and DeviceKind.GPU in config.devices))
    cluster = das4_cluster(nodes=args.nodes, gpu=needs_gpu,
                           network=QDR_IB if args.network == "ib" else GBE)
    elastic = (_parse_elastic(args.elastic, args.nodes)
               if args.elastic else None)
    try:
        result = run_glasswing(app, inputs, cluster, config, faults=faults,
                               elastic=elastic)
    except ValueError as exc:    # e.g. crash target outside the cluster
        raise SystemExit(f"invalid fault schedule: {exc}")

    print(f"{app.name} on {args.nodes} node(s), {args.device.upper()} "
          f"kernels, {args.storage} storage, "
          f"{'InfiniBand' if args.network == 'ib' else 'GbE'}")
    print(f"  job time     {result.job_time:10.4f} s")
    print(f"  map phase    {result.map_time:10.4f} s")
    print(f"  merge delay  {result.merge_delay:10.4f} s")
    print(f"  reduce phase {result.reduce_time:10.4f} s")
    for key, value in sorted(result.stats.items()):
        print(f"  {key:<14} {value}")
    if faults is not None or config.speculative_execution:
        m = result.metrics
        print("  fault tolerance:")
        print(f"    node crashes   {m.node_crashes} "
              f"(dead: {result.stats.get('dead_nodes', [])})")
        print(f"    re-executions  {m.reexecutions}")
        print(f"    wasted work    {m.wasted_seconds:.4f} s")
        print(f"    recovery wave  {m.recovery_time:.4f} s")
        print(f"    speculation    {m.speculative_wins}/"
              f"{m.speculative_launches} wins/launches")
    print("  map stage breakdown (node0):")
    for stage, seconds in result.metrics.breakdown("map", "node0").items():
        print(f"    {stage:<9} {seconds:.4f} s")
    n_out = sum(len(v) for v in result.output.values())
    print(f"  output pairs {n_out}")
    if args.explain:
        from repro.obs import PipelineReport
        for phase in ("map", "reduce"):
            print(PipelineReport(result.timeline, phase=phase).explain())
    if args.trace_out:
        from repro.obs import write_chrome_trace
        print(f"  trace written to "
              f"{write_chrome_trace(result.timeline, args.trace_out)}")
    if args.metrics_out:
        from repro.obs import write_metrics
        print(f"  metrics written to "
              f"{write_metrics(result.telemetry, args.metrics_out)}")
    if args.report_json:
        import json

        from repro.obs import ensure_parent_dir
        ensure_parent_dir(args.report_json)
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(result.to_report(), fh, indent=2, sort_keys=True)
        print(f"  report written to {args.report_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
