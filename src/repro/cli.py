"""Command-line job runner: ``python -m repro <app> [options]``.

Runs one of the five paper applications on a simulated cluster with
generated input, printing the job summary and the per-stage breakdown —
the quickest way to poke at the framework without writing code::

    python -m repro wordcount --nodes 4 --megabytes 8
    python -m repro kmeans --nodes 2 --device gpu --centers 512
    python -m repro terasort --nodes 8 --records 100000
"""

from __future__ import annotations

import argparse
from typing import Dict, Tuple

from repro.apps import (KMeansApp, MatMulApp, PageViewApp, TeraSortApp,
                        WordCountApp)
from repro.apps import datagen
from repro.core import JobConfig, run_glasswing
from repro.core.api import MapReduceApp
from repro.hw.presets import GBE, QDR_IB, das4_cluster
from repro.hw.specs import DeviceKind, MiB
from repro.storage.records import NO_COMPRESSION

__all__ = ["main"]

APPS = ("wordcount", "pageview", "terasort", "kmeans", "matmul")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a Glasswing MapReduce job on a simulated cluster.")
    parser.add_argument("app", choices=APPS)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--device", choices=["cpu", "gpu"], default="cpu")
    parser.add_argument("--storage", choices=["dfs", "local"], default="dfs")
    parser.add_argument("--network", choices=["ib", "gbe"], default="ib")
    parser.add_argument("--megabytes", type=float, default=8.0,
                        help="input size for the text apps")
    parser.add_argument("--records", type=int, default=80_000,
                        help="record count for terasort")
    parser.add_argument("--points", type=int, default=100_000,
                        help="observations for kmeans")
    parser.add_argument("--centers", type=int, default=256,
                        help="centers for kmeans")
    parser.add_argument("--matrix", type=int, default=1024,
                        help="matrix size for matmul (tile = matrix/4)")
    parser.add_argument("--chunk-kb", type=int, default=256)
    parser.add_argument("--buffering", type=int, default=2,
                        choices=[1, 2, 3])
    parser.add_argument("--seed", type=int, default=42)
    return parser


def make_job(args) -> Tuple[MapReduceApp, Dict[str, bytes], JobConfig]:
    """Build (app, inputs, config) from parsed CLI arguments."""
    nbytes = int(args.megabytes * MiB)
    config = JobConfig(
        chunk_size=args.chunk_kb * 1024,
        device=DeviceKind.GPU if args.device == "gpu" else DeviceKind.CPU,
        storage=args.storage,
        buffering=args.buffering)
    if args.app == "wordcount":
        return (WordCountApp(),
                {"corpus": datagen.wiki_text(nbytes, seed=args.seed)},
                config)
    if args.app == "pageview":
        return (PageViewApp(),
                {"logs": datagen.web_logs(nbytes, seed=args.seed)},
                config)
    if args.app == "terasort":
        data = datagen.teragen(args.records, seed=args.seed)
        return (TeraSortApp.from_input(data),
                {"teragen": data},
                config.with_(output_replication=1,
                             compression=NO_COMPRESSION))
    if args.app == "kmeans":
        return (KMeansApp(datagen.kmeans_centers(args.centers, 4,
                                                 seed=args.seed)),
                {"points": datagen.kmeans_points(args.points, 4,
                                                 seed=args.seed)},
                config)
    if args.app == "matmul":
        tile = max(16, args.matrix // 4)
        blob, _a, _b = datagen.matmul_tasks(args.matrix, tile,
                                            seed=args.seed)
        app = MatMulApp(tile)
        return app, {"tasks": blob}, config.with_(
            chunk_size=app.record_format.record_size)
    raise SystemExit(f"unknown app {args.app!r}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    app, inputs, config = make_job(args)
    cluster = das4_cluster(nodes=args.nodes, gpu=args.device == "gpu",
                           network=QDR_IB if args.network == "ib" else GBE)
    result = run_glasswing(app, inputs, cluster, config)

    print(f"{app.name} on {args.nodes} node(s), {args.device.upper()} "
          f"kernels, {args.storage} storage, "
          f"{'InfiniBand' if args.network == 'ib' else 'GbE'}")
    print(f"  job time     {result.job_time:10.4f} s")
    print(f"  map phase    {result.map_time:10.4f} s")
    print(f"  merge delay  {result.merge_delay:10.4f} s")
    print(f"  reduce phase {result.reduce_time:10.4f} s")
    for key, value in sorted(result.stats.items()):
        print(f"  {key:<14} {value}")
    print("  map stage breakdown (node0):")
    for stage, seconds in result.metrics.breakdown("map", "node0").items():
        print(f"    {stage:<9} {seconds:.4f} s")
    n_out = sum(len(v) for v in result.output.values())
    print(f"  output pairs {n_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
