"""Tiled Matrix Multiply (MM) (§IV-A.2).

"Our implementation of MM multiplies two square matrices A and B by
tiling them into multiple sub-matrices.  Each sub-matrix is identified by
the coordinate of its top left row and column."

One input record is one partial-product task ``(i, j, k, A_ik, B_kj)``;
the map kernel computes ``A_ik @ B_kj`` and emits it under key ``(i, j)``;
the reduce kernel sums the partial tiles into ``C_ij``.  Compute-bound but
with a large data volume, which is what caps its GPU gains in the paper
(Fig 3d: I/O-bound on the GPU when combined with HDFS).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.hw.specs import DeviceKind, DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import FixedRecordFormat, KVSchema

from repro.core.api import MapReduceApp
from repro.apps.datagen import matmul_record_size

__all__ = ["MatMulApp"]


class MatMulApp(MapReduceApp):
    """C = A @ B over ``tile``-sized sub-matrix tasks."""

    has_combiner = True

    def __init__(self, tile: int, cost_scale: float = 1.0):
        """``cost_scale`` multiplies the modeled kernel flops — the bench
        harness multiplies real ``tile``-sized sub-matrices while
        charging the arithmetic intensity of the paper's larger tiles
        (flops grow with tile^3 but bytes only with tile^2)."""
        if tile < 1:
            raise ValueError("tile must be positive")
        if cost_scale <= 0:
            raise ValueError("cost_scale must be positive")
        self.tile = tile
        self.cost_scale = cost_scale
        self.name = f"matmul-t{tile}"
        self.record_format = FixedRecordFormat(matmul_record_size(tile))
        tile_bytes = tile * tile * 4
        self.inter_schema = KVSchema(
            "mm-inter", key_bytes=lambda k: 8,
            value_bytes=lambda v: tile_bytes)
        self.output_schema = KVSchema(
            "mm-out", key_bytes=lambda k: 8,
            value_bytes=lambda v: tile_bytes)

    # -- MapReduce logic ----------------------------------------------------
    def map_batch(self, records: Sequence[bytes]
                  ) -> List[Tuple[Tuple[int, int], bytes]]:
        t = self.tile
        out: List[Tuple[Tuple[int, int], bytes]] = []
        for rec in records:
            i, j, _k = np.frombuffer(rec, dtype="<i4", count=3)
            tiles = np.frombuffer(rec, dtype=np.float32, offset=12)
            a = tiles[:t * t].reshape(t, t)
            b = tiles[t * t:].reshape(t, t)
            out.append(((int(i), int(j)), (a @ b).tobytes()))
        return out

    def combine(self, key: Tuple[int, int], values: List[bytes]
                ) -> List[bytes]:
        return [self._sum_tiles(values)]

    def reduce(self, key: Tuple[int, int], values: List[bytes]
               ) -> List[Tuple[Tuple[int, int], bytes]]:
        return [(key, self._sum_tiles(values))]

    def _sum_tiles(self, values: List[bytes]) -> bytes:
        acc = np.frombuffer(values[0], dtype=np.float32).copy()
        for v in values[1:]:
            acc += np.frombuffer(v, dtype=np.float32)
        return acc.tobytes()

    # -- cost models ------------------------------------------------------------
    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        flops = 2.0 * n_records * float(self.tile) ** 3 * self.cost_scale
        return KernelCost(flops=flops, device_bytes=2.0 * in_bytes)

    def combine_cost(self, device: DeviceSpec, n_pairs: int) -> KernelCost:
        return KernelCost(flops=float(n_pairs) * self.tile * self.tile,
                          launches=0)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        tile_elems = self.tile * self.tile
        return KernelCost(flops=float(n_values) * tile_elems,
                          device_bytes=4.0 * tile_elems * (n_values + n_keys),
                          launches=0)

    def preferred_threads(self, device: DeviceSpec) -> int | None:
        # Two workload divisions (§IV-A.2): GPUs spread each result tile
        # over a thread group; CPUs give each thread a whole tile.
        if device.kind is DeviceKind.GPU:
            return device.compute_units
        return None

    # -- verification helper ----------------------------------------------------
    def assemble(self, pairs: Sequence[Tuple[Tuple[int, int], bytes]],
                 matrix_size: int) -> np.ndarray:
        """Rebuild the full C matrix from output pairs (for tests)."""
        t = self.tile
        c = np.zeros((matrix_size, matrix_size), dtype=np.float32)
        for (i, j), blob in pairs:
            tile = np.frombuffer(blob, dtype=np.float32).reshape(t, t)
            c[i * t:(i + 1) * t, j * t:(j + 1) * t] = tile
        return c
