"""Pageview Count (PVC): URL frequency over web-server logs (§IV-A.1).

"It is an I/O-bound application as its kernels perform little work per
input record.  The logs are highly sparse in that duplicate URLs are rare,
so the volume of intermediate data is large, with a massive number of
keys."
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.hw.specs import DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import KVSchema, TextRecordFormat

from repro.core.api import MapReduceApp

__all__ = ["PageViewApp"]

#: effective device ops per input byte — low: "little work per record"
_OPS_PER_BYTE = 40.0
_OPS_PER_VALUE = 10.0


class PageViewApp(MapReduceApp):
    """Count URL occurrences in ``project url count size`` log lines."""

    name = "pageview"
    record_format = TextRecordFormat()
    inter_schema = KVSchema("pvc-inter", key_bytes=lambda k: len(k),
                            value_bytes=lambda v: 4)
    output_schema = KVSchema("pvc-out", key_bytes=lambda k: len(k),
                             value_bytes=lambda v: 8)
    has_combiner = True

    def map_batch(self, records: Sequence[bytes]) -> List[Tuple[bytes, int]]:
        pairs: List[Tuple[bytes, int]] = []
        for record in records:
            fields = record.split()
            if len(fields) >= 2:
                pairs.append((fields[1], 1))
        return pairs

    def combine(self, key: bytes, values: List[int]) -> List[int]:
        return [sum(values)]

    def run_combine(self, pairs):  # fast path, as WordCount
        counts = Counter()
        for url, n in pairs:
            counts[url] += n
        return list(counts.items())

    def reduce(self, key: bytes, values: List[int]) -> List[Tuple[bytes, int]]:
        return [(key, sum(values))]

    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=_OPS_PER_BYTE * in_bytes,
                          device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        return KernelCost(flops=_OPS_PER_VALUE * n_values + 16.0 * n_keys,
                          device_bytes=40.0 * (n_keys + n_values),
                          launches=0)
