"""WordCount (WC): word frequency over text (§IV-A.1).

I/O-bound with somewhat more kernel work than PVC; its high key
repetition makes it the paper's show-case for hash-table contention and
combiner leverage (Table II) and for partitioner-thread tuning (Fig 4).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

from repro.hw.specs import DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import KVSchema, TextRecordFormat

from repro.core.api import MapReduceApp

__all__ = ["WordCountApp"]

#: effective device ops per input byte (tokenising + hashing)
_OPS_PER_BYTE = 110.0
#: device ops per reduced value
_OPS_PER_VALUE = 12.0


class WordCountApp(MapReduceApp):
    """Count word occurrences; keys are raw word bytes."""

    name = "wordcount"
    record_format = TextRecordFormat()
    inter_schema = KVSchema("wc-inter", key_bytes=lambda k: len(k),
                            value_bytes=lambda v: 4)
    output_schema = KVSchema("wc-out", key_bytes=lambda k: len(k),
                             value_bytes=lambda v: 8)
    has_combiner = True

    def map_batch(self, records: Sequence[bytes]) -> List[Tuple[bytes, int]]:
        # One C-level split over the whole chunk: records are
        # newline-delimited, so joining on a separator preserves words.
        words = b"\n".join(records).split()
        return [(word, 1) for word in words]

    def combine(self, key: bytes, values: List[int]) -> List[int]:
        return [sum(values)]

    def run_combine(self, pairs):  # fast path: everything is (word, count)
        counts = Counter()
        for word, n in pairs:
            counts[word] += n
        return list(counts.items())

    def reduce(self, key: bytes, values: List[int]) -> List[Tuple[bytes, int]]:
        return [(key, sum(values))]

    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=_OPS_PER_BYTE * in_bytes,
                          device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        return KernelCost(flops=_OPS_PER_VALUE * n_values + 20.0 * n_keys,
                          device_bytes=24.0 * (n_keys + n_values),
                          launches=0)
