"""Iterative PageRank as a broadcast-driven multi-round DAG.

The MRC papers use PageRank-style iteration as the canonical workload
MapReduce must loop over; one power-iteration round is one Glasswing
job, and the tiny rank vector is per-round broadcast state (like
k-means centers):

* :class:`PageRankDegreeApp` runs **once**: map each ``(src, dst)``
  edge to ``(src, 1)``; reduce counts out-degrees (exact int math).
* :class:`PageRankContribApp` runs **per round**: map each edge to
  ``(dst, rank[src] / degree[src])``; reduce sums the contributions
  (sorted first, so output is independent of arrival order) and applies
  the damped update ``(1 - d)/n + d * sum``.

Edge records are 8 bytes: two little-endian int32s ``(src, dst)``.  The
generator (:func:`repro.apps.datagen.pagerank_edges`) guarantees every
vertex at least one out-edge, so there is no dangling-mass term.
Vertices with no *in*-edges receive no reduce output; the driver fills
their rank with ``(1 - d)/n`` after each round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.specs import ClusterSpec, DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import FixedRecordFormat, KVSchema

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig

__all__ = ["PageRankDegreeApp", "PageRankContribApp", "PageRankRun",
           "pagerank_iterate", "pagerank_reference", "EDGE_SIZE"]

EDGE_SIZE = 8  # <i4 src + <i4 dst


def _edges(records: Sequence[bytes]) -> np.ndarray:
    """Records as an ``(n, 2)`` int32 array of (src, dst) rows."""
    return np.frombuffer(b"".join(records), dtype="<i4").reshape(-1, 2)


class PageRankDegreeApp(MapReduceApp):
    """Out-degree counting: one exact-integer round over the edge list."""

    has_combiner = True
    record_format = FixedRecordFormat(EDGE_SIZE)
    name = "pagerank-degrees"
    inter_schema = KVSchema(
        "prdeg-inter", key_bytes=lambda k: 4, value_bytes=lambda v: 4)
    output_schema = KVSchema(
        "prdeg-out", key_bytes=lambda k: 4, value_bytes=lambda v: 4)

    def map_batch(self, records: Sequence[bytes]) -> List[Tuple[int, int]]:
        src = _edges(records)[:, 0]
        return [(int(s), 1) for s in src.tolist()]

    def combine(self, key: int, values: List[int]) -> List[int]:
        return [sum(values)]

    def reduce(self, key: int, values: List[int]) -> List[Tuple[int, int]]:
        return [(key, sum(values))]

    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=2.0 * n_records, device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        return KernelCost(flops=1.0 * n_values + 2.0 * n_keys,
                          device_bytes=8.0 * n_values, launches=0)


class PageRankContribApp(MapReduceApp):
    """One damped power-iteration round over the (cached) edge list."""

    has_combiner = True
    record_format = FixedRecordFormat(EDGE_SIZE)

    def __init__(self, ranks: np.ndarray, degrees: Dict[int, int],
                 damping: float = 0.85):
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.ndim != 1 or not len(ranks):
            raise ValueError("ranks must be a non-empty 1-D float vector")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.ranks = ranks
        self.n = len(ranks)
        # Dense per-vertex share vector: rank / out-degree, computed once
        # per round instead of per record.
        deg = np.ones(self.n, dtype=np.float64)
        for v, d in degrees.items():
            deg[v] = max(d, 1)
        self.share = ranks / deg
        self.damping = float(damping)
        self.name = f"pagerank-n{self.n}"
        self.inter_schema = KVSchema(
            "pr-inter", key_bytes=lambda k: 4, value_bytes=lambda v: 8)
        self.output_schema = KVSchema(
            "pr-out", key_bytes=lambda k: 4, value_bytes=lambda v: 8)

    def map_batch(self, records: Sequence[bytes]
                  ) -> List[Tuple[int, float]]:
        edges = _edges(records)
        contribs = self.share[edges[:, 0]]
        return list(zip(edges[:, 1].tolist(), contribs.tolist()))

    def combine(self, key: int, values: List[float]) -> List[float]:
        # Sorted before summing: float addition is order-sensitive and
        # shuffle arrival order is scheduling-dependent.
        return [float(np.sum(np.sort(np.asarray(values, dtype=np.float64))))]

    def reduce(self, key: int, values: List[float]
               ) -> List[Tuple[int, float]]:
        total = float(np.sum(np.sort(np.asarray(values, dtype=np.float64))))
        rank = (1.0 - self.damping) / self.n + self.damping * total
        return [(key, rank)]

    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=3.0 * n_records, device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        return KernelCost(flops=2.0 * n_values + 4.0 * n_keys,
                          device_bytes=12.0 * n_values, launches=0)


@dataclass
class PageRankRun:
    """Outcome of an iterative PageRank session."""

    ranks: np.ndarray                    # final (n,) float64 rank vector
    degrees: Dict[int, int]
    rounds: int
    deltas: List[float]                  # max |rank change| per round
    dag_results: List[Any]               # one repro.dag.DagResult per round
    runner: Any

    @property
    def total_time(self) -> float:
        """Simulated seconds across the degree round and every iteration."""
        return sum(r.total_time for r in self.dag_results)


def pagerank_iterate(edges: bytes, n_vertices: int,
                     cluster_spec: ClusterSpec,
                     config: Optional[JobConfig] = None,
                     rounds: int = 5, damping: float = 0.85,
                     runner: Optional[Any] = None,
                     costs: Optional[Any] = None) -> PageRankRun:
    """Run ``rounds`` damped power-iteration rounds over ``edges``.

    The degree job runs once; every iteration round then re-reads the
    same pinned edge list — served from the cache-aside layer after the
    first read — and only the tiny rank vector travels between rounds as
    broadcast state.
    """
    from repro.dag import DAG, DagRunner

    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if len(edges) % EDGE_SIZE:
        raise ValueError(f"edges blob must be a multiple of {EDGE_SIZE} bytes")
    if runner is None:
        kwargs = {} if costs is None else {"costs": costs}
        runner = DagRunner(cluster_spec, config=config, **kwargs)

    degree_dag = DAG("pagerank-degrees")
    degree_dag.add_input("pagerank-edges.bin", edges)
    degree_dag.add_stage(
        "degrees", PageRankDegreeApp(), ["pagerank-edges.bin"],
        publish=lambda pairs: {"degrees": dict(pairs)})

    rank_dag = DAG("pagerank")
    rank_dag.add_input("pagerank-edges.bin", edges)
    rank_dag.add_stage(
        "contrib",
        lambda b: PageRankContribApp(b["ranks"], b["degrees"],
                                     damping=damping),
        ["pagerank-edges.bin"],
        publish=lambda pairs: {"contribs": dict(pairs)})

    results = [runner.run(degree_dag)]
    degrees = results[0].broadcast["degrees"]
    ranks = np.full(n_vertices, 1.0 / n_vertices, dtype=np.float64)
    base = (1.0 - damping) / n_vertices
    deltas: List[float] = []
    for _ in range(rounds):
        res = runner.run(rank_dag,
                         broadcast={"ranks": ranks, "degrees": degrees})
        results.append(res)
        new_ranks = np.full(n_vertices, base, dtype=np.float64)
        for vertex, rank in res.broadcast["contribs"].items():
            new_ranks[vertex] = rank
        deltas.append(float(np.max(np.abs(new_ranks - ranks))))
        ranks = new_ranks
    return PageRankRun(ranks=ranks, degrees=degrees, rounds=rounds,
                       deltas=deltas, dag_results=results, runner=runner)


def pagerank_reference(edges: bytes, n_vertices: int, rounds: int,
                       damping: float = 0.85) -> np.ndarray:
    """Dense numpy power iteration with the same update rule — the
    differential tests compare the DAG result against this (tolerantly:
    summation order differs)."""
    rows = np.frombuffer(edges, dtype="<i4").reshape(-1, 2)
    src, dst = rows[:, 0].astype(np.int64), rows[:, 1].astype(np.int64)
    degrees = np.bincount(src, minlength=n_vertices).astype(np.float64)
    degrees = np.maximum(degrees, 1.0)
    ranks = np.full(n_vertices, 1.0 / n_vertices, dtype=np.float64)
    base = (1.0 - damping) / n_vertices
    for _ in range(rounds):
        contrib = np.zeros(n_vertices, dtype=np.float64)
        np.add.at(contrib, dst, ranks[src] / degrees[src])
        ranks = np.where(
            np.bincount(dst, minlength=n_vertices) > 0,
            base + damping * contrib, base)
    return ranks
