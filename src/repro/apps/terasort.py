"""TeraSort (TS): totally ordered sort of 100-byte records (§IV-A.1).

"TS requires the output of the job to be totally ordered across all
partitions ... the input data set is sampled in an attempt to estimate the
spread of keys.  Consequently, the job's map function uses the sampled
data to place each key in the appropriate output partition. ... TS does
not require a reduce function since its output is fully processed by the
end of the intermediate data shuffle."
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.hw.specs import DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import FixedRecordFormat, KVSchema

from repro.core.api import MapReduceApp

__all__ = ["TeraSortApp"]

KEY_LEN = 10
RECORD_LEN = 100

#: effective device ops per record — key extraction + partition lookup
_OPS_PER_RECORD = 220.0


class TeraSortApp(MapReduceApp):
    """Sort TeraGen records via a sampled range partitioner.

    ``sample_keys`` — keys sampled from the input (the framework-side
    sampling pass); split points per partition count are derived lazily
    from them, so one app instance works for any cluster/partition size.
    """

    name = "terasort"
    record_format = FixedRecordFormat(RECORD_LEN)
    inter_schema = KVSchema("ts-inter", key_bytes=lambda k: KEY_LEN,
                            value_bytes=lambda v: RECORD_LEN - KEY_LEN)
    output_schema = KVSchema("ts-out", key_bytes=lambda k: KEY_LEN,
                             value_bytes=lambda v: RECORD_LEN - KEY_LEN)
    has_combiner = False
    map_only_output = True

    def __init__(self, sample_keys: Sequence[bytes]):
        if not sample_keys:
            raise ValueError("TeraSort needs a non-empty key sample")
        self._sample = sorted(sample_keys)
        self._splits: Dict[int, List[bytes]] = {}

    @classmethod
    def from_input(cls, data: bytes, sample_every: int = 997) -> "TeraSortApp":
        """Sample every ``sample_every``-th record key of the input blob."""
        keys = [data[i:i + KEY_LEN]
                for i in range(0, len(data), RECORD_LEN * sample_every)]
        return cls(keys or [data[:KEY_LEN]])

    # -- MapReduce logic ----------------------------------------------------
    def map_batch(self, records: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
        return [(r[:KEY_LEN], r[KEY_LEN:]) for r in records]

    def reduce(self, key, values):  # pragma: no cover - map_only_output
        return [(key, v) for v in values]

    def partition(self, key: bytes, n_partitions: int) -> int:
        """Range partitioner: totally ordered output across partitions."""
        return bisect.bisect_right(self._split_points(n_partitions), key)

    def _split_points(self, n_partitions: int) -> List[bytes]:
        if n_partitions not in self._splits:
            sample = self._sample
            points = []
            for p in range(1, n_partitions):
                idx = (p * len(sample)) // n_partitions
                points.append(sample[min(idx, len(sample) - 1)])
            self._splits[n_partitions] = points
        return self._splits[n_partitions]

    # -- cost models -----------------------------------------------------------
    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=_OPS_PER_RECORD * n_records,
                          device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:  # pragma: no cover
        return KernelCost(launches=0)
