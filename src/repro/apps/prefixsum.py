"""Multi-round parallel prefix sums (the MRC warhorse).

Goodrich et al. ("Sorting, Searching, and Simulation in the MapReduce
Framework") build their simulation results on multi-round primitives of
exactly this shape: round one computes per-block partial sums, a fan-in
combines them into exclusive block offsets, and round two turns each
block into its slice of the global scan.  Here that is two chained
Glasswing stages in one :class:`~repro.dag.graph.DAG`:

* :class:`PrefixBlockSumApp` — map ``(index, value)`` records to
  ``(block, value)``; reduce sums each block (exact int64 math).
* the block sums are *broadcast* (tiny per-round state, like k-means
  centers): the driver exclusive-scans them into per-block offsets;
* :class:`PrefixScanApp` — re-reads the same (cached!) input, reduces
  each block by sorting its records on index and emitting the running
  sum seeded with the block's offset.

Input records are 16 bytes: two little-endian int64s ``(index, value)``.
All arithmetic is integer, so the output is bit-exact against
``numpy.cumsum`` — the differential tests compare with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw.specs import ClusterSpec, DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import FixedRecordFormat, KVSchema

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig

__all__ = ["PrefixBlockSumApp", "PrefixScanApp", "PrefixRun",
           "prefix_sums", "RECORD_SIZE"]

RECORD_SIZE = 16  # <i8 index + <i8 value


def _decode(records: Sequence[bytes]) -> np.ndarray:
    """Records as an ``(n, 2)`` int64 array of (index, value) rows."""
    return np.frombuffer(b"".join(records), dtype="<i8").reshape(-1, 2)


class PrefixBlockSumApp(MapReduceApp):
    """Round one: per-block partial sums of the value stream."""

    has_combiner = True
    record_format = FixedRecordFormat(RECORD_SIZE)

    def __init__(self, block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.name = f"prefix-blocksum-b{block_size}"
        self.inter_schema = KVSchema(
            "psum-inter", key_bytes=lambda k: 8, value_bytes=lambda v: 8)
        self.output_schema = KVSchema(
            "psum-out", key_bytes=lambda k: 8, value_bytes=lambda v: 8)

    def map_batch(self, records: Sequence[bytes]) -> List[Tuple[int, int]]:
        rows = _decode(records)
        blocks = rows[:, 0] // self.block_size
        return list(zip(blocks.tolist(), rows[:, 1].tolist()))

    def combine(self, key: int, values: List[int]) -> List[int]:
        return [sum(values)]

    def reduce(self, key: int, values: List[int]) -> List[Tuple[int, int]]:
        return [(key, sum(values))]

    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=4.0 * n_records, device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        return KernelCost(flops=1.0 * n_values + 4.0 * n_keys,
                          device_bytes=16.0 * n_values, launches=0)


class PrefixScanApp(MapReduceApp):
    """Round two: each block becomes its slice of the global scan.

    ``offsets[block]`` is the exclusive prefix (sum of every earlier
    block) fanned in from round one.  The reduce sorts the block's
    records by index — arrival order depends on scheduling, the output
    must not — and emits the inclusive running sum per index.
    """

    record_format = FixedRecordFormat(RECORD_SIZE)

    def __init__(self, offsets: Dict[int, int], block_size: int):
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.offsets = dict(offsets)
        self.block_size = block_size
        self.name = f"prefix-scan-b{block_size}"
        self.inter_schema = KVSchema(
            "pscan-inter", key_bytes=lambda k: 8, value_bytes=lambda v: 16)
        self.output_schema = KVSchema(
            "pscan-out", key_bytes=lambda k: 8, value_bytes=lambda v: 8)

    def map_batch(self, records: Sequence[bytes]
                  ) -> List[Tuple[int, Tuple[int, int]]]:
        rows = _decode(records)
        blocks = rows[:, 0] // self.block_size
        return [(int(b), (int(i), int(v)))
                for b, (i, v) in zip(blocks.tolist(), rows.tolist())]

    def reduce(self, key: int, values: List[Tuple[int, int]]
               ) -> List[Tuple[int, int]]:
        running = self.offsets.get(key, 0)
        out: List[Tuple[int, int]] = []
        for index, value in sorted(values):
            running += value
            out.append((index, running))
        return out

    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        return KernelCost(flops=4.0 * n_records, device_bytes=2.0 * in_bytes)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        # Dominated by the per-block index sort.
        n = max(n_values, 1)
        return KernelCost(flops=4.0 * n * max(np.log2(n), 1.0),
                          device_bytes=24.0 * n_values, launches=0)


@dataclass
class PrefixRun:
    """Outcome of a two-round prefix-sums DAG."""

    prefix: np.ndarray                   # inclusive scan, index order
    block_sums: Dict[int, int]
    dag_result: Any                      # repro.dag.DagResult
    runner: Any                          # the DagRunner (session reuse)

    @property
    def total_time(self) -> float:
        return self.dag_result.total_time


def exclusive_offsets(block_sums: Dict[int, int]) -> Dict[int, int]:
    """Block id -> sum of every earlier block (the fan-in step)."""
    offsets: Dict[int, int] = {}
    running = 0
    for block in sorted(block_sums):
        offsets[block] = running
        running += block_sums[block]
    return offsets


def prefix_sums(values: bytes, cluster_spec: ClusterSpec,
                config: Optional[JobConfig] = None,
                block_size: int = 4096,
                runner: Optional[Any] = None,
                costs: Optional[Any] = None) -> PrefixRun:
    """Inclusive prefix sums of packed ``(index, value)`` int64 records.

    Builds the two-stage DAG (block sums -> broadcast offsets -> scan)
    and runs it on ``runner`` (a fresh :class:`~repro.dag.DagRunner` on
    ``cluster_spec`` when not given — pass one in to share its session
    and cache across calls).
    """
    from repro.dag import DAG, DagRunner

    if len(values) % RECORD_SIZE:
        raise ValueError(
            f"values blob must be a multiple of {RECORD_SIZE} bytes")
    n = len(values) // RECORD_SIZE
    if runner is None:
        kwargs = {} if costs is None else {"costs": costs}
        runner = DagRunner(cluster_spec, config=config, **kwargs)

    dag = DAG("prefix-sums")
    dag.add_input("prefix-values.bin", values)
    dag.add_stage(
        "blocksum", PrefixBlockSumApp(block_size), ["prefix-values.bin"],
        publish=lambda pairs: {"block_sums": dict(pairs)})
    dag.add_stage(
        "scan",
        lambda b: PrefixScanApp(exclusive_offsets(b["block_sums"]),
                                block_size),
        ["prefix-values.bin"],
        after=["blocksum"])

    result = runner.run(dag)
    block_sums = result.broadcast["block_sums"]
    prefix = np.zeros(n, dtype=np.int64)
    for index, total in result.outputs["scan"]:
        prefix[index] = total
    return PrefixRun(prefix=prefix, block_sums=block_sums,
                     dag_result=result, runner=runner)
