"""K-Means clustering (KM): one Lloyd iteration (§IV-A.2).

"KM is a compute-intensive application and its complexity is a function
of the number of dimensions, centers and observations. ... our
implementations perform just one iteration since this shows the
performance well for all frameworks."

The map kernel assigns every observation to its nearest center and emits
per-center partial sums; the reduce kernel averages them into the new
centers.  Real math is vectorised numpy; the cost model scales with
``points x centers x dims`` — abundant data parallelism, the paper's GPU
show-case (20x single-node gain on the GTX480).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.hw.specs import DeviceKind, DeviceSpec
from repro.ocl.kernel import KernelCost
from repro.storage.records import FixedRecordFormat, KVSchema

from repro.core.api import MapReduceApp

__all__ = ["KMeansApp"]

#: Effective device ops per point-center-dim.  More than the raw
#: subtract/square/accumulate triple: it folds in the divergent
#: min-index update and imperfect coalescing of a real OpenCL KM kernel.
#: Calibrated so that with the paper's 4096 centers the kernel dominates
#: I/O on the GTX480 (§IV-A.2: "the I/O time for all platforms and file
#: systems is negligible compared to the computation time").
_OPS_PER_PCD = 30.0


class KMeansApp(MapReduceApp):
    """One k-means iteration over packed float32 observation records."""

    has_combiner = True

    def __init__(self, centers: np.ndarray, cost_scale: float = 1.0):
        """``cost_scale`` multiplies the *modeled* kernel cost: the bench
        harness clusters against k real centers while charging the cost
        of ``cost_scale * k`` centers, so the paper's 4096-center
        operating point is reproduced without hours of real numpy work
        (output correctness is still verified at the real k)."""
        centers = np.asarray(centers, dtype=np.float32)
        if centers.ndim != 2:
            raise ValueError("centers must be a (k, dims) array")
        if cost_scale <= 0:
            raise ValueError("cost_scale must be positive")
        self.centers = centers
        self.cost_scale = cost_scale
        self.k, self.dims = centers.shape
        self.name = f"kmeans-k{self.k}"
        self.record_format = FixedRecordFormat(self.dims * 4)
        dims = self.dims
        self.inter_schema = KVSchema(
            "km-inter", key_bytes=lambda k: 4,
            value_bytes=lambda v: 4 * dims + 8)
        self.output_schema = KVSchema(
            "km-out", key_bytes=lambda k: 4,
            value_bytes=lambda v: 4 * dims)

    # -- MapReduce logic ----------------------------------------------------
    def map_batch(self, records: Sequence[bytes]
                  ) -> List[Tuple[int, Tuple[Tuple[float, ...], int]]]:
        if not records:
            return []
        points = np.frombuffer(b"".join(records), dtype=np.float32)
        points = points.reshape(-1, self.dims)
        # Nearest centers via ||p||^2 - 2 p.c + ||c||^2 (blocked to bound
        # the distance-matrix working set — cache-friendliness per the
        # performance guides).
        c = self.centers
        c_norm = (c * c).sum(axis=1)
        assign = np.empty(len(points), dtype=np.int64)
        block = max(1, (1 << 22) // max(1, self.k))
        for lo in range(0, len(points), block):
            p = points[lo:lo + block]
            d = p @ c.T
            d *= -2.0
            d += c_norm[None, :]
            assign[lo:lo + len(p)] = np.argmin(d, axis=1)
        # One emit per observation — this is what the OpenCL kernel does;
        # aggregation is the *collector's* job (hash table + combiner), so
        # Table III's collector comparison stays faithful.
        coords = points.astype(np.float64).tolist()
        return [(int(cid), (tuple(vec), 1))
                for cid, vec in zip(assign.tolist(), coords)]

    def combine(self, key: int, values: List[Tuple[Tuple[float, ...], int]]
                ) -> List[Tuple[Tuple[float, ...], int]]:
        sums = np.asarray([v[0] for v in values], dtype=np.float64).sum(axis=0)
        count = sum(v[1] for v in values)
        return [(tuple(float(x) for x in sums), count)]

    def reduce(self, key: int, values: List[Tuple[Tuple[float, ...], int]]
               ) -> List[Tuple[int, Tuple[float, ...]]]:
        sums = np.asarray([v[0] for v in values], dtype=np.float64).sum(axis=0)
        count = sum(v[1] for v in values)
        center = sums / max(count, 1)
        return [(key, tuple(float(x) for x in center))]

    # -- cost models ------------------------------------------------------------
    def map_cost(self, device: DeviceSpec, n_records: int,
                 in_bytes: int) -> KernelCost:
        flops = (_OPS_PER_PCD * n_records * self.k * self.dims
                 * self.cost_scale)
        return KernelCost(flops=flops, device_bytes=2.0 * in_bytes)

    def combine_cost(self, device: DeviceSpec, n_pairs: int) -> KernelCost:
        return KernelCost(flops=2.0 * n_pairs * self.dims, launches=0)

    def reduce_cost(self, device: DeviceSpec, n_keys: int,
                    n_values: int) -> KernelCost:
        return KernelCost(flops=2.0 * n_values * self.dims + 10.0 * n_keys,
                          device_bytes=(4 * self.dims + 12.0) * n_values,
                          launches=0)

    def preferred_threads(self, device: DeviceSpec) -> int | None:
        # The paper tunes thread counts per device; GPUs want maximal
        # occupancy, CPUs one work-item per hardware thread (the default).
        if device.kind is DeviceKind.GPU:
            return device.compute_units
        return None
