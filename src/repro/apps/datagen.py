"""Deterministic synthetic dataset generators.

Each generator is the laptop-scale counterpart of one of the paper's
inputs (see EXPERIMENTS.md for the scale mapping):

* :func:`wiki_text` — the English wikipedia dump used by WordCount:
  zipf-distributed words, "high repetition of a smaller number of words
  beside a large number of sparse words".
* :func:`web_logs` — WikiBench web-server traces used by PVC: "highly
  sparse in that duplicate URLs are rare ... a massive number of keys".
* :func:`teragen` — TeraSort's 10-byte random keys with 90-byte values.
* :func:`kmeans_points` — random single-precision observation vectors.
* :func:`matmul_tasks` — tiled task records for the matrix multiply.

Everything is seeded and reproducible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "wiki_text",
    "web_logs",
    "teragen",
    "kmeans_points",
    "kmeans_centers",
    "matmul_tasks",
    "prefix_values",
    "pagerank_edges",
    "TERA_RECORD",
]

TERA_RECORD = 100  # bytes: 10-byte key + 90-byte value

_CONSONANTS = "bcdfghklmnprstvw"
_VOWELS = "aeiou"


def _vocabulary(size: int, rng: np.random.Generator) -> List[bytes]:
    """Pronounceable pseudo-words, distinct, 4-12 characters."""
    words = set()
    while len(words) < size:
        syllables = rng.integers(2, 5)
        word = "".join(
            _CONSONANTS[rng.integers(len(_CONSONANTS))] +
            _VOWELS[rng.integers(len(_VOWELS))]
            for _ in range(syllables))
        words.add(word.encode())
    return sorted(words)


def wiki_text(nbytes: int, seed: int = 7, vocab_size: int = 20_000,
              zipf_a: float = 1.5, line_words: int = 12) -> bytes:
    """Zipf-distributed text, newline-separated lines, ~``nbytes`` long."""
    rng = np.random.default_rng(seed)
    vocab = np.array(_vocabulary(vocab_size, rng), dtype=object)
    rng.shuffle(vocab)  # decouple zipf rank from alphabetical order
    avg_word = float(np.mean([len(w) for w in vocab])) + 1
    n_words = max(1, int(nbytes / avg_word))
    ranks = rng.zipf(zipf_a, size=n_words)
    ranks = np.minimum(ranks, vocab_size) - 1
    words = vocab[ranks]
    lines = []
    for i in range(0, len(words), line_words):
        lines.append(b" ".join(words[i:i + line_words]))
    return b"\n".join(lines) + b"\n"


def web_logs(nbytes: int, seed: int = 11, hot_fraction: float = 0.05,
             hot_urls: int = 500) -> bytes:
    """Web-server log lines: ``project url count size``.

    URLs are mostly unique (a huge sparse key space) with a small hot set,
    mirroring the WikiBench traces.
    """
    rng = np.random.default_rng(seed)
    approx_line = 40
    n_lines = max(1, nbytes // approx_line)
    hot = rng.random(n_lines) < hot_fraction
    ids = np.where(
        hot,
        rng.integers(0, hot_urls, size=n_lines),
        rng.integers(hot_urls, hot_urls + 50 * n_lines, size=n_lines))
    sizes = rng.integers(200, 99_999, size=n_lines)
    lines = [b"en wiki/page_%d 1 %d" % (u, s)
             for u, s in zip(ids.tolist(), sizes.tolist())]
    return b"\n".join(lines) + b"\n"


def teragen(n_records: int, seed: int = 13) -> bytes:
    """``n_records`` TeraSort records: 10 random key bytes + 90 value bytes."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(n_records, TERA_RECORD),
                        dtype=np.uint8)
    return data.tobytes()


def kmeans_points(n_points: int, dims: int, seed: int = 17) -> bytes:
    """Random observation vectors as packed float32 records."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n_points, dims), dtype=np.float32) * 100.0
    return pts.tobytes()


def kmeans_centers(k: int, dims: int, seed: int = 19) -> np.ndarray:
    """Initial cluster centers (the paper distributes them to all nodes
    via Hadoop's DistributedCache; Glasswing ships them in job state)."""
    rng = np.random.default_rng(seed)
    return (rng.random((k, dims), dtype=np.float32) * 100.0)


def prefix_values(n: int, seed: int = 29, lo: int = -1000,
                  hi: int = 1000) -> bytes:
    """``n`` packed ``(index, value)`` int64 records for the prefix-sums
    DAG: indices ``0..n-1`` in order, values uniform in ``[lo, hi]``.
    Integer math keeps the scan bit-exact against ``numpy.cumsum``."""
    rng = np.random.default_rng(seed)
    rows = np.empty((n, 2), dtype="<i8")
    rows[:, 0] = np.arange(n)
    rows[:, 1] = rng.integers(lo, hi + 1, size=n)
    return rows.tobytes()


def pagerank_edges(n_vertices: int, n_edges: int, seed: int = 31) -> bytes:
    """``n_edges`` packed ``(src, dst)`` int32 edge records.

    The first ``n_vertices`` edges have ``src = 0..n_vertices-1`` so
    every vertex has at least one out-edge (no dangling-mass term in the
    PageRank update); the remainder are uniform random.  The whole list
    is then shuffled deterministically.
    """
    if n_edges < n_vertices:
        raise ValueError("need n_edges >= n_vertices (one out-edge each)")
    rng = np.random.default_rng(seed)
    rows = np.empty((n_edges, 2), dtype="<i4")
    rows[:n_vertices, 0] = np.arange(n_vertices)
    rows[n_vertices:, 0] = rng.integers(0, n_vertices,
                                        size=n_edges - n_vertices)
    rows[:, 1] = rng.integers(0, n_vertices, size=n_edges)
    rng.shuffle(rows, axis=0)
    return rows.tobytes()


def matmul_tasks(matrix_size: int, tile: int, seed: int = 23
                 ) -> Tuple[bytes, np.ndarray, np.ndarray]:
    """Task records for C = A @ B with ``tile``-sized sub-matrices.

    Each record is ``(i, j, k, A_ik, B_kj)`` packed as three little-endian
    int32 headers followed by the two float32 tiles — the input layout a
    Glasswing MM job reads, one partial-product task per record.  Returns
    ``(records_blob, A, B)`` so tests can verify against ``A @ B``.
    """
    if matrix_size % tile:
        raise ValueError("matrix_size must be a multiple of tile")
    rng = np.random.default_rng(seed)
    a = rng.random((matrix_size, matrix_size), dtype=np.float32)
    b = rng.random((matrix_size, matrix_size), dtype=np.float32)
    t = matrix_size // tile
    parts = []
    header = np.empty(3, dtype="<i4")
    for i in range(t):
        for j in range(t):
            for k in range(t):
                header[:] = (i, j, k)
                parts.append(header.tobytes())
                parts.append(np.ascontiguousarray(
                    a[i * tile:(i + 1) * tile, k * tile:(k + 1) * tile]).tobytes())
                parts.append(np.ascontiguousarray(
                    b[k * tile:(k + 1) * tile, j * tile:(j + 1) * tile]).tobytes())
    return b"".join(parts), a, b


def matmul_record_size(tile: int) -> int:
    """Size of one MM task record."""
    return 12 + 2 * tile * tile * 4


__all__.append("matmul_record_size")
