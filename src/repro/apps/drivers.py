"""Iterative drivers built on the DAG engine (and the legacy loop).

The paper's K-Means runs one iteration "since this shows the performance
well for all frameworks" but notes that "KM is an iterative algorithm".
:func:`kmeans_iterate` is the full iterative driver: by default each
Lloyd round is one stage execution on a shared
:class:`~repro.dag.DagRunner` session, so the (immutable, pinned) point
file is served from the cache-aside layer after round one and per-round
setup is paid once.  ``engine="resubmit"`` keeps the naive historical
behaviour — a fresh :func:`~repro.core.engine.run_glasswing` job per
round, re-reading every input byte — which the differential tests and
the ``BENCH_dag.json`` acceptance bench compare against: both engines
produce bit-identical centers, the DAG engine just gets there faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.kmeans import KMeansApp
from repro.core.config import JobConfig
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.engine import GlasswingResult, run_glasswing
from repro.hw.specs import ClusterSpec

__all__ = ["KMeansRun", "kmeans_iterate"]


@dataclass
class KMeansRun:
    """Outcome of an iterative k-means session."""

    centers: np.ndarray                 # final (k, dims) centers
    iterations: int                     # iterations actually executed
    shifts: List[float]                 # max center movement per iteration
    results: List[GlasswingResult]      # per-iteration job results
    tolerance: float = 1e-3             # the run's convergence threshold
    #: per-iteration ids of centers that received no points (kept at
    #: their previous position, as standard implementations do)
    orphaned: List[List[int]] = field(default_factory=list)
    engine: str = "resubmit"            # "dag" or "resubmit"
    #: cache-aside counters when the DAG engine ran; empty otherwise
    cache: Dict[str, Any] = field(default_factory=dict)
    #: the :class:`~repro.dag.DagRunner` (DAG engine only) — its session
    #: timeline holds every round's trace lanes
    runner: Any = None

    @property
    def total_time(self) -> float:
        """Total simulated seconds across all iteration jobs."""
        return sum(r.job_time for r in self.results)

    @property
    def converged(self) -> bool:
        """True when the last executed iteration moved every center less
        than the run's ``tolerance`` (i.e. the loop stopped because it
        converged, not because ``max_iterations`` ran out)."""
        return bool(self.shifts) and self.shifts[-1] < self.tolerance


def _validate_centers(centers: Any) -> np.ndarray:
    """Up-front shape/dtype check; returns a float32 working copy.

    k-means math runs in float32 (the paper's OpenCL kernels do); the
    conversion is explicit and loud here instead of a silent clamp deep
    in the loop.
    """
    arr = np.asarray(centers)
    if arr.ndim != 2:
        raise ValueError(
            f"centers must be a (k, dims) array, got shape {arr.shape}")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ValueError(
            f"centers must be non-empty in both axes, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.number) or \
            np.issubdtype(arr.dtype, np.complexfloating):
        raise TypeError(
            f"centers must be real-numeric, got dtype {arr.dtype}")
    return np.array(arr, dtype=np.float32, copy=True)


def _lloyd_update(centers: np.ndarray,
                  pairs: List[Tuple[int, Tuple[float, ...]]]
                  ) -> Tuple[np.ndarray, float, List[int]]:
    """Apply one round's reduced output: new centers, max shift, orphans.

    Shared by both engines so their per-round math is identical to the
    bit — the differential test compares final centers with ``==``.
    """
    new_centers = centers.copy()
    seen = set()
    for cid, vec in pairs:
        new_centers[cid] = np.asarray(vec, dtype=np.float32)
        seen.add(cid)
    orphans = sorted(set(range(len(centers))) - seen)
    shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
    return new_centers, shift, orphans


def kmeans_iterate(inputs: Dict[str, bytes], centers: np.ndarray,
                   cluster_spec: ClusterSpec,
                   config: Optional[JobConfig] = None,
                   max_iterations: int = 10,
                   tolerance: float = 1e-3,
                   cost_scale: float = 1.0,
                   engine: str = "dag",
                   costs: HostCosts = DEFAULT_HOST_COSTS) -> KMeansRun:
    """Run Lloyd iterations until the largest center shift falls below
    ``tolerance`` (or the budget runs out).

    ``engine="dag"`` (default) runs every round on one shared
    :class:`~repro.dag.DagRunner` session with the point files pinned in
    the cross-round cache; ``engine="resubmit"`` submits a fresh
    single-tenant job per round.  Both produce bit-identical centers.
    Centers that lost all their points keep their position; their ids
    are recorded per iteration on :attr:`KMeansRun.orphaned`.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    if engine not in ("dag", "resubmit"):
        raise ValueError(f"unknown engine {engine!r} "
                         "(expected 'dag' or 'resubmit')")
    centers = _validate_centers(centers)
    shifts: List[float] = []
    orphaned: List[List[int]] = []
    results: List[GlasswingResult] = []
    cache: Dict[str, Any] = {}

    if engine == "dag":
        from repro.dag import DAG, DagRunner
        runner = DagRunner(cluster_spec, config=config, costs=costs)
        dag = DAG("kmeans")
        for path, data in inputs.items():
            dag.add_input(path, data)
        dag.add_stage("lloyd",
                      lambda b: KMeansApp(b["centers"],
                                          cost_scale=cost_scale),
                      sorted(inputs))

    for _ in range(max_iterations):
        if engine == "dag":
            round_result = runner.run(dag, broadcast={"centers": centers})
            result = round_result.stage_runs[0].result
            pairs = round_result.outputs["lloyd"]
        else:
            app = KMeansApp(centers, cost_scale=cost_scale)
            result = run_glasswing(app, inputs, cluster_spec, config,
                                   costs=costs)
            pairs = result.sorted_output()
        results.append(result)
        centers, shift, orphans = _lloyd_update(centers, pairs)
        shifts.append(shift)
        orphaned.append(orphans)
        if shift < tolerance:
            break
    if engine == "dag":
        cache = runner.cache_stats()
    return KMeansRun(centers=centers, iterations=len(results),
                     shifts=shifts, results=results, tolerance=tolerance,
                     orphaned=orphaned, engine=engine, cache=cache,
                     runner=runner if engine == "dag" else None)
