"""Multi-job drivers built on the single-job engine.

The paper's K-Means runs one iteration "since this shows the performance
well for all frameworks" but notes that "KM is an iterative algorithm".
:func:`kmeans_iterate` is the full iterative driver a user of the library
would actually run: each Lloyd iteration is one Glasswing job whose
reduced centers seed the next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps.kmeans import KMeansApp
from repro.core.config import JobConfig
from repro.core.engine import GlasswingResult, run_glasswing
from repro.hw.specs import ClusterSpec

__all__ = ["KMeansRun", "kmeans_iterate"]


@dataclass
class KMeansRun:
    """Outcome of an iterative k-means session."""

    centers: np.ndarray                 # final (k, dims) centers
    iterations: int                     # iterations actually executed
    shifts: List[float]                 # max center movement per iteration
    results: List[GlasswingResult]      # per-iteration job results

    @property
    def total_time(self) -> float:
        """Total simulated seconds across all iteration jobs."""
        return sum(r.job_time for r in self.results)

    @property
    def converged(self) -> bool:
        return bool(self.shifts) and self.shifts[-1] == 0.0 or \
            (len(self.shifts) > 0 and self.shifts[-1] < 1e-9)


def kmeans_iterate(inputs: Dict[str, bytes], centers: np.ndarray,
                   cluster_spec: ClusterSpec,
                   config: Optional[JobConfig] = None,
                   max_iterations: int = 10,
                   tolerance: float = 1e-3,
                   cost_scale: float = 1.0) -> KMeansRun:
    """Run Lloyd iterations as successive Glasswing jobs until the
    largest center shift falls below ``tolerance`` (or the budget runs
    out).  Centers that lost all their points keep their position, as
    standard implementations do."""
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")
    centers = np.array(centers, dtype=np.float32, copy=True)
    shifts: List[float] = []
    results: List[GlasswingResult] = []
    for _ in range(max_iterations):
        app = KMeansApp(centers, cost_scale=cost_scale)
        result = run_glasswing(app, inputs, cluster_spec, config)
        results.append(result)
        new_centers = centers.copy()
        for cid, vec in result.output_pairs():
            new_centers[cid] = np.asarray(vec, dtype=np.float32)
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        shifts.append(shift)
        centers = new_centers
        if shift < tolerance:
            break
    return KMeansRun(centers=centers, iterations=len(results),
                     shifts=shifts, results=results)
