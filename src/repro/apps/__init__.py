"""The paper's five evaluation applications (§IV).

"To fairly represent the wide spectrum of MapReduce applications we
implemented and analyzed five applications with diverse properties":

* :mod:`repro.apps.pageview` — Pageview Count (PVC): I/O-bound, sparse
  keys, massive intermediate data.
* :mod:`repro.apps.wordcount` — WordCount (WC): I/O-bound, high key
  repetition (hash-table contention, combiner leverage).
* :mod:`repro.apps.terasort` — TeraSort (TS): data-intensive, total-order
  output via a sampled range partitioner, no reduce function.
* :mod:`repro.apps.kmeans` — K-Means clustering (KM): compute-bound,
  tiny intermediate data, GPU-friendly.
* :mod:`repro.apps.matmul` — tiled Matrix Multiply (MM): compute-bound
  with large data volume.

Beyond the paper's five, two genuinely multi-round MRC-family apps
exercise the DAG engine (:mod:`repro.dag`):

* :mod:`repro.apps.prefixsum` — two chained stages (block sums, then the
  scan seeded by broadcast offsets), bit-exact integer math.
* :mod:`repro.apps.pagerank` — one degree round plus damped
  power-iteration rounds with the rank vector as broadcast state.

:mod:`repro.apps.datagen` generates the synthetic counterparts of the
paper's datasets (wikipedia logs/dumps, TeraGen records, random points and
matrices) at laptop scale.
"""

from repro.apps.kmeans import KMeansApp
from repro.apps.matmul import MatMulApp
from repro.apps.pagerank import (PageRankContribApp, PageRankDegreeApp,
                                 pagerank_iterate)
from repro.apps.pageview import PageViewApp
from repro.apps.prefixsum import (PrefixBlockSumApp, PrefixScanApp,
                                  prefix_sums)
from repro.apps.terasort import TeraSortApp
from repro.apps.wordcount import WordCountApp

__all__ = ["KMeansApp", "MatMulApp", "PageRankContribApp",
           "PageRankDegreeApp", "PageViewApp", "PrefixBlockSumApp",
           "PrefixScanApp", "TeraSortApp", "WordCountApp",
           "pagerank_iterate", "prefix_sums"]
