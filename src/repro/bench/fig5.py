"""Figure 5: reduce-pipeline efficiency vs concurrent keys.

"Glasswing provides applications with the capability to process multiple
intermediate keys concurrently in the same reduce kernel ... An
optimization on top of that is to additionally save on kernel invocation
overhead by having each kernel thread process multiple keys sequentially.
... Setting the number of concurrent keys to one causes (at least) one
kernel invocation per key, with very little value data per reduce
invocation."

WordCount with a key-rich data set (the paper uses millions of unique
words; the scaled corpus has tens of thousands) on one node.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.apps import WordCountApp
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table

__all__ = ["report", "KEY_SWEEP"]

CHUNK = 256 * KiB
#: (concurrent_keys, keys_per_thread) pairs swept, as the paper varies
#: both the parallel width and the sequential amortisation
KEY_SWEEP: Tuple[Tuple[int, int], ...] = (
    (1, 1), (16, 1), (16, 16), (256, 1), (4096, 1), (4096, 4),
)


def report(sweep: Sequence[Tuple[int, int]] = KEY_SWEEP) -> ExperimentReport:
    rep = ExperimentReport(
        experiment="Figure 5 — WC reduce pipeline vs concurrent keys",
        paper_claim="one key per launch pays a kernel invocation per key "
                    "with little work each; concurrent keys amortise the "
                    "overhead and fill the device; keys-per-thread "
                    "amortises further")
    inputs = workloads.wc_input()
    table = Table("reduce pipeline vs (concurrent keys, keys/thread)",
                  ("concurrent_keys", "keys_per_thread", "reduce_kernel_s",
                   "reduce_elapsed_s"))
    kernel_times = []
    elapsed = []
    for ck, kpt in sweep:
        res = run_glasswing(
            WordCountApp(), inputs, das4_cluster(nodes=1),
            JobConfig(chunk_size=CHUNK, storage="local",
                      concurrent_keys=ck, keys_per_thread=kpt))
        k = res.metrics.stage_time("reduce", "kernel", "node0")
        kernel_times.append(k)
        elapsed.append(res.reduce_time)
        table.add_row(concurrent_keys=ck, keys_per_thread=kpt,
                      reduce_kernel_s=k, reduce_elapsed_s=res.reduce_time)
    rep.tables.append(table)
    by_key = {pair: k for pair, k in zip(sweep, kernel_times)}
    rep.check("one key per launch is far slower than full concurrency",
              kernel_times[0] > 10 * kernel_times[-1],
              f"{kernel_times[0]:.4f} vs {kernel_times[-1]:.4f}")
    rep.check("reduce kernel time non-increasing across the sweep",
              all(a >= b * 0.9 for a, b in zip(kernel_times,
                                               kernel_times[1:])),
              f"{['%.4f' % k for k in kernel_times]}")
    rep.check("keys-per-thread amortises launches at fixed concurrency",
              by_key[(16, 16)] < 0.5 * by_key[(16, 1)],
              f"(16,1) {by_key[(16, 1)]:.4f} -> (16,16) "
              f"{by_key[(16, 16)]:.4f}")
    rep.check("reduce elapsed follows the kernel improvement",
              elapsed[-1] < elapsed[0])
    return rep
