"""ASCII Gantt rendering of simulation timelines.

The paper's whole argument is *overlap*: the 5 pipeline stages being
active at the same time. A table of per-stage totals shows how much each
stage worked; a Gantt chart shows *when* — reviewers (and users tuning a
job) can see the single-buffering serialisation or a dominant stage at a
glance::

    map.input    ██████▌·······
    map.kernel   ·██████████▌··
    map.output   ···▌█████████▌

Usage::

    from repro.bench.gantt import render_gantt
    print(render_gantt(result.timeline, prefix="map.", node="node0"))
"""

from __future__ import annotations

from typing import List, Optional

from repro.simt.trace import Timeline

__all__ = ["render_gantt"]

#: per-cell occupancy glyphs, from idle to fully busy
_GLYPHS = "·▏▎▍▌▋▊▉█"


def render_gantt(timeline: Timeline, prefix: str = "",
                 node: Optional[str] = None, width: int = 64,
                 categories: Optional[List[str]] = None) -> str:
    """Render the categories matching ``prefix`` as occupancy rows.

    Each row is one category; each cell covers ``extent / width`` of
    virtual time and is shaded by the fraction of that interval the
    category was active (union of its spans).  ``node`` filters spans by
    instance name; ``categories`` overrides the row selection.
    """
    if width < 8:
        raise ValueError("width must be at least 8 columns")
    cats = categories if categories is not None else [
        c for c in timeline.categories() if c.startswith(prefix)]
    spans = [s for s in timeline.spans
             if s.category in cats and (node is None or s.name == node)]
    if not spans:
        return "(no spans to render)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = max(t1 - t0, 1e-12)
    cell = extent / width
    label_w = max(len(c) for c in cats) + 2

    lines = [f"{'':<{label_w}}t = {t0:.4f} .. {t1:.4f} s "
             f"({cell:.2e} s/cell)"]
    for cat in cats:
        cat_spans = sorted(
            ((s.start, s.end) for s in spans if s.category == cat))
        if not cat_spans:
            continue
        row = []
        for i in range(width):
            lo = t0 + i * cell
            hi = lo + cell
            busy = 0.0
            for start, end in cat_spans:
                if start >= hi:
                    break
                if end > lo:
                    busy += min(end, hi) - max(start, lo)
            frac = min(1.0, busy / cell)
            row.append(_GLYPHS[round(frac * (len(_GLYPHS) - 1))])
        lines.append(f"{cat:<{label_w}}{''.join(row)}")
    return "\n".join(lines)
