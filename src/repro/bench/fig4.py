"""Figure 4: analysis of intermediate data handling (N and P sweeps).

* 4(a) — map-pipeline stage times vs the partitioner thread count N:
  "With N = 1, the Partitioning stage is dominant; when that stage is
  parallelized, its time drops below the Kernel stage already from N = 2
  threads onwards."
* 4(b) — merge delay vs partitions-per-node P and N: "An increase in P
  leads to a sharp decrease in merge delay ... An increase in N causes an
  increase of the merge delay.  This effect is much smaller than that of
  P."

Both use WordCount on one node, as in the paper.  The N-vs-delay effect
appears when partitioning is CPU-heavy (the paper observes the merger
starvation in the config (iii) discussion), so 4(b)'s N sweep uses the
buffer-pool collector.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps import WordCountApp
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table

__all__ = ["partitioning_report", "merge_delay_report", "run_all",
           "N_SWEEP", "P_SWEEP"]

CHUNK = 256 * KiB
CACHE = 2 * 1024 * 1024
N_SWEEP = (1, 2, 4, 8, 16, 32)
P_SWEEP = (1, 2, 4, 8, 16)


def partitioning_report(n_sweep: Sequence[int] = N_SWEEP) -> ExperimentReport:
    """Figure 4(a): partitioning vs kernel stage as N grows."""
    rep = ExperimentReport(
        experiment="Figure 4(a) — map pipeline stages vs partitioner "
                    "threads N (WC, 1 node)",
        paper_claim="partitioning dominant at N=1, drops below the kernel "
                    "stage from N=2 onwards; kernel stage roughly constant")
    # 64 KiB chunks keep the per-chunk unique-key density (and hence the
    # decode+sort work) at the paper's partitioning/kernel balance; the
    # cache threshold is raised so background flushing does not pollute
    # the stage timings (Fig 4a isolates the partitioning stage).
    inputs = workloads.wc_input()
    table = Table("stage times vs N", ("N", "kernel_s", "partitioning_s",
                                       "map_elapsed_s"))
    kernel_times, part_times = [], []
    for n in n_sweep:
        res = run_glasswing(
            WordCountApp(), inputs, das4_cluster(nodes=1),
            JobConfig(chunk_size=CHUNK // 4, storage="local",
                      partitioner_threads=n, cache_threshold=1 << 30))
        k = res.metrics.stage_time("map", "kernel", "node0")
        p = res.metrics.stage_time("map", "output", "node0")
        kernel_times.append(k)
        part_times.append(p)
        table.add_row(N=n, kernel_s=k, partitioning_s=p,
                      map_elapsed_s=res.map_time)
    rep.tables.append(table)
    rep.check("partitioning dominant at N=1",
              part_times[0] > kernel_times[0],
              f"part {part_times[0]:.3f} vs kernel {kernel_times[0]:.3f}")
    rep.check("partitioning below kernel from N=2 onwards",
              all(p < k for p, k in zip(part_times[1:], kernel_times[1:])),
              f"parts {['%.3f' % p for p in part_times]}")
    rep.check("partitioning time monotonically non-increasing in N",
              all(a >= b * 0.95 for a, b in zip(part_times, part_times[1:])))
    rep.check("kernel stage roughly constant across the sweep",
              max(kernel_times) <= 1.5 * min(kernel_times))
    return rep


def merge_delay_report(p_sweep: Sequence[int] = (1, 4, 16),
                       n_sweep: Sequence[int] = (2, 8, 32)
                       ) -> ExperimentReport:
    """Figure 4(b): merge delay vs partitioner threads N, one curve per P.

    As in the paper's figure: the x-axis sweeps N and each curve is one
    partition count P.  The delay only materialises when the partitioner
    threads starve the mergers (large N) and more partitions dissolve it
    by parallelising the merge work.
    """
    rep = ExperimentReport(
        experiment="Figure 4(b) — merge delay vs partitioner threads N, "
                    "per partition count P (WC, 1 node)",
        paper_claim="P up -> merge delay sharply down (superlinear, the "
                    "mergers work during the map phase); N up -> merge "
                    "delay up (mergers starved of CPU)")
    # A smaller corpus keeps the (deliberately) merge-heavy sweep fast;
    # the buffer-pool collector provides the paper's heavy intermediate
    # volume.
    inputs = workloads.wc_input(8 * 1024 * 1024)
    delays: dict = {}
    table = Table("merge delay (s): rows = P, columns = N",
                  ("P",) + tuple(f"N={n}" for n in n_sweep))
    for p in p_sweep:
        row = {}
        for n in n_sweep:
            res = run_glasswing(
                WordCountApp(), inputs, das4_cluster(nodes=1),
                JobConfig(chunk_size=CHUNK, storage="local",
                          partitions_per_node=p, partitioner_threads=n,
                          cache_threshold=CACHE, use_combiner=False,
                          collector="buffer"))
            delays[(p, n)] = res.merge_delay
            row[f"N={n}"] = res.merge_delay
        table.add_row(P=p, **row)
    rep.tables.append(table)

    n_max, p_min, p_max = n_sweep[-1], p_sweep[0], p_sweep[-1]
    rep.check("merge delay drops sharply with P at high N",
              delays[(p_max, n_max)] < 0.25 * delays[(p_min, n_max)],
              f"P={p_min}: {delays[(p_min, n_max)]:.3f} -> "
              f"P={p_max}: {delays[(p_max, n_max)]:.3f} (at N={n_max})")
    rep.check("merge delay grows with N at every P",
              all(delays[(p, n_sweep[-1])] >= delays[(p, n_sweep[0])]
                  for p in p_sweep))
    rep.check("the N=low column is (near) delay-free at every P "
              "(mergers keep up during the map phase)",
              all(delays[(p, n_sweep[0])] <= 0.1 * max(
                  delays[(p_min, n_max)], 1e-9) for p in p_sweep))
    rep.check("enough partitions dissolve the delay even at N=32 "
              "(the paper's tuning recommendation)",
              delays[(p_max, n_max)] <= 0.15 * delays[(p_min, n_max)],
              f"{delays[(p_max, n_max)]:.4f}s at P={p_max}, N={n_max}")
    return rep


def run_all() -> list:
    return [partitioning_report(), merge_delay_report()]
