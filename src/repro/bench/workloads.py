"""Scaled standard workloads for the experiment suite.

Scale mapping (paper dataset -> reproduction dataset, ~1/1000 with fixed
per-operation costs scaled alongside; see EXPERIMENTS.md):

=====  ==============================  ===============================
exp    paper                            reproduction
=====  ==============================  ===============================
PVC    30 GB WikiBench traces           24 MB synthetic web logs
WC     70 GB English wikipedia dump     24 MB zipf wiki text
TS     1 TB TeraGen (10^10 records)     24 MB (240k records)
KM     4096 centers, ~10^7 points       4096 centers, 100k points
KM-16  16 centers (unmodified GPMR)     16 centers, same points
MM     37376^2 matrices, tiled          2048^2 matrices, 512^2 tiles
=====  ==============================  ===============================

Generation is cached per process so repeated benches reuse the bytes.
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

import numpy as np

from repro.apps import datagen
from repro.hw.specs import MiB

__all__ = [
    "pvc_input",
    "wc_input",
    "ts_input",
    "km_points",
    "km_centers",
    "mm_input",
    "PVC_BYTES",
    "WC_BYTES",
    "TS_RECORDS",
    "KM_POINTS",
    "KM_DIMS",
    "KM_CENTERS_PAPER",
    "MM_SIZE",
    "MM_TILE",
]

PVC_BYTES = 24 * MiB
WC_BYTES = 24 * MiB
TS_RECORDS = 240_000
KM_POINTS = 400_000
KM_DIMS = 4
#: the paper's center count, reproduced as (real centers) x (cost scale)
#: so the real numpy work stays laptop-sized while the modeled kernel
#: cost matches the 4096-center operating point
KM_CENTERS_PAPER = 4096
KM_CENTERS_REAL = 256
KM_COST_SCALE = KM_CENTERS_PAPER / KM_CENTERS_REAL
MM_SIZE = 1536
MM_TILE = 512
#: the paper's 37376^2 matrices use larger tiles than we can multiply for
#: real in reasonable time; the cost scale charges a (1.5x tile)^3 kernel
#: over real 512^2 tiles (flops ~ t^3 but bytes ~ t^2)
MM_COST_SCALE = 1.5 ** 3


@functools.lru_cache(maxsize=4)
def pvc_input(nbytes: int = PVC_BYTES) -> Dict[str, bytes]:
    return {"weblogs": datagen.web_logs(nbytes, seed=101)}


@functools.lru_cache(maxsize=4)
def wc_input(nbytes: int = WC_BYTES) -> Dict[str, bytes]:
    return {"wiki": datagen.wiki_text(nbytes, seed=102)}


@functools.lru_cache(maxsize=4)
def ts_input(n_records: int = TS_RECORDS) -> Dict[str, bytes]:
    return {"teragen": datagen.teragen(n_records, seed=103)}


@functools.lru_cache(maxsize=4)
def km_points(n_points: int = KM_POINTS,
              dims: int = KM_DIMS) -> Dict[str, bytes]:
    return {"points": datagen.kmeans_points(n_points, dims, seed=104)}


@functools.lru_cache(maxsize=8)
def km_centers(k: int = KM_CENTERS_PAPER, dims: int = KM_DIMS) -> np.ndarray:
    return datagen.kmeans_centers(k, dims, seed=105)


@functools.lru_cache(maxsize=2)
def mm_input(matrix_size: int = MM_SIZE, tile: int = MM_TILE
             ) -> Tuple[Dict[str, bytes], np.ndarray, np.ndarray]:
    blob, a, b = datagen.matmul_tasks(matrix_size, tile, seed=106)
    return {"tasks": blob}, a, b


def km_app_paper():
    """KMeansApp at the paper's 4096-center cost operating point."""
    from repro.apps import KMeansApp
    return KMeansApp(km_centers(KM_CENTERS_REAL), cost_scale=KM_COST_SCALE)


def mm_app_paper():
    """MatMulApp at the paper-scale arithmetic intensity."""
    from repro.apps import MatMulApp
    return MatMulApp(MM_TILE, cost_scale=MM_COST_SCALE)


__all__ += ["km_app_paper", "mm_app_paper", "KM_CENTERS_REAL",
            "KM_COST_SCALE", "MM_COST_SCALE"]
