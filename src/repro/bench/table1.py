"""Table I: comparison between Glasswing and related projects.

The paper's Table I is a qualitative feature matrix (out-of-core
capability, compute devices, cluster support).  We regenerate it from
structured records — and, for the three systems implemented in this
repository, *verify* the claimed capabilities against the engines'
actual behaviour (shape checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bench.harness import ExperimentReport, Table

__all__ = ["SYSTEMS", "report", "SystemEntry"]


@dataclass(frozen=True)
class SystemEntry:
    """One row of Table I."""

    name: str
    out_of_core: bool
    compute_device: str
    cluster: bool
    implemented_here: bool = False


SYSTEMS: Tuple[SystemEntry, ...] = (
    SystemEntry("Phoenix", False, "CPU-only", False),
    SystemEntry("Tiled-MapReduce", False, "NUMA CPU", False),
    SystemEntry("Mars", False, "GPU-only", False),
    SystemEntry("Ji et al.", False, "GPU-only", False),
    SystemEntry("MapCG", False, "CPU/GPU", False),
    SystemEntry("Chen et al. [18]", False, "GPU-only", False),
    SystemEntry("GPMR", False, "GPU-only", True, implemented_here=True),
    SystemEntry("Chen et al. [19]", False, "AMD Fusion", False),
    SystemEntry("Merge", False, "Any", False),
    SystemEntry("HadoopCL", True, "APARAPI", True),
    SystemEntry("Hadoop", True, "CPU-only", True, implemented_here=True),
    SystemEntry("Glasswing", True, "OpenCL", True, implemented_here=True),
)


def report() -> ExperimentReport:
    rep = ExperimentReport(
        experiment="Table I — comparison between Glasswing and related "
                    "projects",
        paper_claim="only Glasswing combines out-of-core data, arbitrary "
                    "OpenCL compute devices and cluster execution")
    table = Table("feature matrix",
                  ("system", "out_of_core", "compute_device", "cluster",
                   "implemented_here"))
    for entry in SYSTEMS:
        table.add_row(system=entry.name,
                      out_of_core="yes" if entry.out_of_core else "no",
                      compute_device=entry.compute_device,
                      cluster="yes" if entry.cluster else "no",
                      implemented_here="yes" if entry.implemented_here
                      else "")
    rep.tables.append(table)

    glasswing = next(e for e in SYSTEMS if e.name == "Glasswing")
    gpmr = next(e for e in SYSTEMS if e.name == "GPMR")
    rep.check("Glasswing is the only OpenCL + out-of-core + cluster system",
              all(not (e.out_of_core and e.cluster
                       and e.compute_device == "OpenCL")
                  for e in SYSTEMS if e.name != "Glasswing")
              and glasswing.out_of_core and glasswing.cluster)
    rep.check("GPMR: cluster yes, GPU-only, not out-of-core",
              gpmr.cluster and gpmr.compute_device == "GPU-only"
              and not gpmr.out_of_core)

    # Verify the in-repo engines actually behave as the matrix claims.
    from repro.apps import KMeansApp
    from repro.apps.datagen import kmeans_centers, kmeans_points
    from repro.baselines.gpmr import (GPMRConfig, IntermediateDataTooLarge,
                                      run_gpmr)
    from repro.hw.presets import das4_cluster

    app = KMeansApp(kmeans_centers(16, 4, seed=1))
    inputs = {"p": kmeans_points(20_000, 4, seed=2)}
    try:
        run_gpmr(app, inputs, das4_cluster(nodes=1, gpu=True),
                 GPMRConfig(chunk_size=65536, host_memory_fraction=1e-7))
        gpmr_in_core = False
    except IntermediateDataTooLarge:
        gpmr_in_core = True
    rep.check("verified: GPMR engine rejects out-of-memory intermediates",
              gpmr_in_core)
    try:
        run_gpmr(app, inputs, das4_cluster(nodes=1, gpu=False),
                 GPMRConfig(chunk_size=65536))
        gpmr_gpu_only = False
    except ValueError:
        gpmr_gpu_only = True
    rep.check("verified: GPMR engine is GPU-only", gpmr_gpu_only)
    return rep
