"""Figure 2: horizontal scalability of the I/O-bound applications.

Reproduces the three panels of the paper's Figure 2 — Pageview Count,
WordCount and TeraSort on the Type-1 CPU cluster over HDFS — as
time+speedup tables for Hadoop and Glasswing, with the paper's claims as
shape checks:

* 2(a) PVC: "the speedup of Glasswing and Hadoop is very comparable ...
  in execution time Glasswing is nearly twice as fast as Hadoop".
* 2(b) WC: "Glasswing performs 1.6 times faster sequentially than
  Hadoop, and its scaling is better" (2.48x at 64 nodes; 64% parallel
  efficiency vs 37%).
* 2(c) TS: "Glasswing outperforms Hadoop on 64 nodes by a factor of 2.7"
  (from ~1.2x at 4 nodes); output replication 1; runs on >= 4 nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.apps import PageViewApp, TeraSortApp, WordCountApp
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.core import JobConfig, run_glasswing
from repro.core.api import MapReduceApp
from repro.hw.presets import das4_cluster
from repro.hw.specs import KiB
from repro.storage.records import NO_COMPRESSION

from repro.bench import workloads
from repro.bench.harness import (ExperimentReport, Table,
                                 parallel_efficiency, speedups)

__all__ = ["pvc_report", "wc_report", "ts_report", "run_all", "NODES",
           "TS_NODES"]

NODES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
TS_NODES: Tuple[int, ...] = (4, 8, 16, 32, 64)
CHUNK = 192 * KiB     # scaled HDFS block / split size


def _sweep(app_factory: Callable[[], MapReduceApp], inputs: Dict[str, bytes],
           nodes: Sequence[int], gw_config: JobConfig,
           hd_config: HadoopConfig, title: str) -> Table:
    """Run Hadoop and Glasswing across the node counts; build the table."""
    table = Table(title, ["nodes", "hadoop_s", "glasswing_s", "ratio",
                          "hadoop_speedup", "glasswing_speedup"])
    hd_times, gw_times = [], []
    for n in nodes:
        cluster = das4_cluster(nodes=n)
        hd = run_hadoop(app_factory(), inputs, cluster, hd_config)
        gw = run_glasswing(app_factory(), inputs, cluster, gw_config)
        hd_times.append(hd.job_time)
        gw_times.append(gw.job_time)
    hd_speed = speedups(hd_times)
    gw_speed = speedups(gw_times)
    for i, n in enumerate(nodes):
        table.add_row(nodes=n, hadoop_s=hd_times[i], glasswing_s=gw_times[i],
                      ratio=hd_times[i] / gw_times[i],
                      hadoop_speedup=hd_speed[i],
                      glasswing_speedup=gw_speed[i])
    return table


def pvc_report(nodes: Sequence[int] = NODES) -> ExperimentReport:
    """Figure 2(a): Pageview Count."""
    report = ExperimentReport(
        experiment="Figure 2(a) — PVC, Hadoop vs Glasswing (CPU, HDFS)",
        paper_claim="speedups very comparable; Glasswing nearly twice as "
                    "fast in execution time, scaling slightly better at "
                    "large node counts")
    table = _sweep(PageViewApp, workloads.pvc_input(), nodes,
                   JobConfig(chunk_size=CHUNK),
                   HadoopConfig(chunk_size=CHUNK),
                   "PVC execution time and speedup")
    report.tables.append(table)
    ratios = table.column("ratio")
    report.check("glasswing ~2x faster at every node count",
                 all(1.4 <= r <= 3.5 for r in ratios),
                 f"ratios {['%.2f' % r for r in ratios]}")
    hd_s, gw_s = table.column("hadoop_speedup"), table.column("glasswing_speedup")
    # "comparable" is judged at mid-scale (the largest sweep point up to
    # 16 nodes), before the scale-amplified tail.
    mid_candidates = [i for i, n in enumerate(nodes) if n <= 16]
    mid = mid_candidates[-1] if mid_candidates else 0
    report.check("speedups very comparable through mid-scale",
                 abs(gw_s[mid] - hd_s[mid]) <= 0.35 * max(hd_s[mid], 1.0),
                 f"at {nodes[mid]} nodes: gw {gw_s[mid]:.1f} vs "
                 f"hd {hd_s[mid]:.1f}")
    report.check("glasswing scales at least as well at the largest size",
                 gw_s[-1] >= 0.9 * hd_s[-1])
    report.notes.append(
        "at 1/1000 data scale the largest clusters amplify Hadoop's fixed "
        "per-task costs, widening the tail ratio beyond the paper's ~2x "
        "(see EXPERIMENTS.md, deviation 2)")
    return report


def wc_report(nodes: Sequence[int] = NODES) -> ExperimentReport:
    """Figure 2(b): WordCount."""
    report = ExperimentReport(
        experiment="Figure 2(b) — WC, Hadoop vs Glasswing (CPU, HDFS)",
        paper_claim="1.6x faster on one node growing to 2.48x on 64; "
                    "parallel efficiency 64% vs Hadoop's 37%")
    table = _sweep(WordCountApp, workloads.wc_input(), nodes,
                   JobConfig(chunk_size=CHUNK),
                   HadoopConfig(chunk_size=CHUNK),
                   "WC execution time and speedup")
    report.tables.append(table)
    ratios = table.column("ratio")
    report.check("~1.6x on a single node", 1.2 <= ratios[0] <= 2.4,
                 f"measured {ratios[0]:.2f}")
    report.check("advantage grows with the cluster",
                 ratios[-1] > ratios[0],
                 f"{ratios[0]:.2f} -> {ratios[-1]:.2f}")
    ns = list(nodes)
    eff_gw = parallel_efficiency(ns, [r for r in table.column("glasswing_s")])
    eff_hd = parallel_efficiency(ns, [r for r in table.column("hadoop_s")])
    report.check("glasswing's parallel efficiency beats hadoop's",
                 eff_gw > eff_hd,
                 f"gw {eff_gw:.0%} vs hd {eff_hd:.0%}")
    return report


def ts_report(nodes: Sequence[int] = TS_NODES) -> ExperimentReport:
    """Figure 2(c): TeraSort (output replication 1, >= 4 nodes)."""
    inputs = workloads.ts_input()
    data = inputs["teragen"]

    def app_factory():
        return TeraSortApp.from_input(data, sample_every=499)

    report = ExperimentReport(
        experiment="Figure 2(c) — TS, Hadoop vs Glasswing (CPU, HDFS)",
        paper_claim="performance gap grows from 1.2x on 4 nodes to 2.7x "
                    "on 64 nodes; totally ordered out-of-core sort")
    # Glasswing tuned per app, as the paper does: a roomier partition
    # cache and file budget keep the incompressible TeraSort data from
    # being re-read/re-written by compaction passes.
    gw_cfg = JobConfig(chunk_size=CHUNK, output_replication=1,
                       compression=NO_COMPRESSION,
                       cache_threshold=4 * 1024 * 1024,
                       max_intermediate_files=8)
    hd_cfg = HadoopConfig(chunk_size=CHUNK, output_replication=1,
                          compression=NO_COMPRESSION)
    table = _sweep(app_factory, inputs, nodes, gw_cfg, hd_cfg,
                   "TS execution time and speedup")
    report.tables.append(table)
    ratios = table.column("ratio")
    report.check("glasswing ahead already at the smallest cluster",
                 ratios[0] >= 1.05, f"measured {ratios[0]:.2f}")
    report.check("gap grows with the cluster", ratios[-1] > ratios[0],
                 f"{ratios[0]:.2f} -> {ratios[-1]:.2f}")
    report.check("final gap in the paper's band", 1.5 <= ratios[-1] <= 4.0,
                 f"measured {ratios[-1]:.2f}")
    return report


def run_all(nodes: Optional[Sequence[int]] = None) -> list:
    """All three panels (optionally with a custom node sweep)."""
    return [
        pvc_report(nodes or NODES),
        wc_report(nodes or NODES),
        ts_report(nodes or TS_NODES),
    ]
