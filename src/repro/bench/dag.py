"""Acceptance bench of the DAG/iterative engine (``BENCH_dag.json``).

Three deterministic points on a 4-node DFS cluster, all pinned to the
``static-affinity`` scheduler so the committed baseline never depends on
``$REPRO_SCHEDULER``:

* ``dag:kmeans`` — the headline: iterative k-means on the DAG engine
  (shared session, point file pinned in the cross-round cache) versus
  the naive re-submission driver (fresh cluster + cold re-read per
  round) over the same fixed round budget.  Output must be
  **bit-identical**; simulated job time must improve by at least
  :data:`MIN_KMEANS_SPEEDUP`.
* ``dag:pagerank`` — the degree round plus five power-iteration rounds
  over a cached edge list, checked against dense numpy power iteration.
* ``dag:prefixsum`` — the two-stage block-sums/scan DAG, bit-exact
  against ``numpy.cumsum``.

Everything recorded is *virtual* (wall-clock is noted, never gated), so
``repro.bench.regress`` replays the file at 0% drift.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.apps import datagen
from repro.apps.drivers import kmeans_iterate
from repro.apps.pagerank import pagerank_iterate, pagerank_reference
from repro.apps.prefixsum import prefix_sums
from repro.core import JobConfig
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.hw.presets import das4_cluster
from repro.obs.telemetry import ensure_parent_dir

from repro.bench.harness import ExperimentReport, Table

__all__ = ["report", "dag_point", "kmeans_point", "pagerank_point",
           "prefixsum_point", "MIN_KMEANS_SPEEDUP", "DAG_NODES",
           "DEFAULT_JSON_PATH"]

DEFAULT_JSON_PATH = "BENCH_dag.json"

#: the acceptance bar: cached iterative k-means must beat naive
#: re-submission by this factor in simulated job time at equal output
MIN_KMEANS_SPEEDUP = 1.5

DAG_NODES = 4
_CHUNK = 256 * 1024

#: k-means operating point: I/O-heavy enough that cold re-reads matter,
#: eight rounds (tolerance 0 pins the round count — the baseline must
#: not depend on convergence luck)
KM_POINTS, KM_CENTERS, KM_DIMS, KM_ROUNDS = 40_000, 8, 4, 8
#: pagerank: five iteration rounds plus the degree round
PR_VERTICES, PR_EDGES, PR_ROUNDS = 2_000, 16_000, 5
#: prefix sums: one two-stage DAG over 100k int64 records
PS_VALUES, PS_BLOCK = 100_000, 4_096

#: quick (CI smoke) sizes — same round budget, fewer points/edges
_QUICK = {"km_points": 16_000, "km_rounds": 8, "pr_vertices": 500,
          "pr_edges": 3_000, "pr_rounds": 3, "ps_values": 20_000}


def _dag_config() -> JobConfig:
    return JobConfig(storage="dfs", scheduler="static-affinity",
                     chunk_size=_CHUNK)


def _round_metrics(stage_runs) -> Dict[str, Any]:
    """Aggregate per-round network bytes + cache traffic."""
    return {
        "network_bytes": sum(r.result.stats["network_bytes"]
                             for r in stage_runs),
        "cache_hit_bytes": sum(r.cache_hit_bytes for r in stage_runs),
        "cache_miss_bytes": sum(r.cache_miss_bytes for r in stage_runs),
    }


def kmeans_point(costs: HostCosts = DEFAULT_HOST_COSTS,
                 n_points: int = KM_POINTS,
                 rounds: int = KM_ROUNDS) -> Dict[str, Any]:
    """Cached DAG k-means vs naive re-submission, same round budget."""
    points = datagen.kmeans_points(n_points, KM_DIMS, seed=17)
    centers = datagen.kmeans_centers(KM_CENTERS, KM_DIMS, seed=19)
    spec = das4_cluster(nodes=DAG_NODES)
    config = _dag_config()
    wall0 = time.perf_counter()
    cached = kmeans_iterate({"points": points}, centers, spec, config,
                            max_iterations=rounds, tolerance=0.0,
                            engine="dag", costs=costs)
    naive = kmeans_iterate({"points": points}, centers, spec, config,
                           max_iterations=rounds, tolerance=0.0,
                           engine="resubmit", costs=costs)
    wall = time.perf_counter() - wall0
    return {
        "app": "dag:kmeans",
        "nodes": DAG_NODES,
        "rounds": rounds,
        "n_points": n_points,
        "k": KM_CENTERS,
        "elapsed_s": cached.total_time,
        "naive_elapsed_s": naive.total_time,
        "speedup": naive.total_time / cached.total_time,
        "identical_output": (cached.centers.tobytes()
                             == naive.centers.tobytes()),
        **_round_metrics(cached.runner.stage_runs),
        "wall_s": wall,
    }


def pagerank_point(costs: HostCosts = DEFAULT_HOST_COSTS,
                   n_vertices: int = PR_VERTICES, n_edges: int = PR_EDGES,
                   rounds: int = PR_ROUNDS) -> Dict[str, Any]:
    """Iterative PageRank over a cached edge list vs dense numpy."""
    edges = datagen.pagerank_edges(n_vertices, n_edges, seed=31)
    wall0 = time.perf_counter()
    run = pagerank_iterate(edges, n_vertices, das4_cluster(nodes=DAG_NODES),
                           config=_dag_config(), rounds=rounds, costs=costs)
    wall = time.perf_counter() - wall0
    reference = pagerank_reference(edges, n_vertices, rounds)
    return {
        "app": "dag:pagerank",
        "nodes": DAG_NODES,
        "rounds": rounds,
        "n_vertices": n_vertices,
        "n_edges": n_edges,
        "elapsed_s": run.total_time,
        "max_abs_err": float(np.max(np.abs(run.ranks - reference))),
        **_round_metrics(run.runner.stage_runs),
        "wall_s": wall,
    }


def prefixsum_point(costs: HostCosts = DEFAULT_HOST_COSTS,
                    n_values: int = PS_VALUES) -> Dict[str, Any]:
    """The two-stage prefix-sums DAG vs ``numpy.cumsum`` (bit-exact)."""
    values = datagen.prefix_values(n_values, seed=29)
    wall0 = time.perf_counter()
    run = prefix_sums(values, das4_cluster(nodes=DAG_NODES),
                      config=_dag_config(), block_size=PS_BLOCK, costs=costs)
    wall = time.perf_counter() - wall0
    rows = np.frombuffer(values, dtype="<i8").reshape(-1, 2)
    reference = np.cumsum(rows[np.argsort(rows[:, 0], kind="stable"), 1])
    return {
        "app": "dag:prefixsum",
        "nodes": DAG_NODES,
        "n_values": n_values,
        "block_size": PS_BLOCK,
        "elapsed_s": run.total_time,
        "exact": bool((run.prefix == reference).all()),
        **_round_metrics(run.runner.stage_runs),
        "wall_s": wall,
    }


def dag_point(app: str, costs: HostCosts = DEFAULT_HOST_COSTS,
              **kwargs: Any) -> Dict[str, Any]:
    """Dispatch a baseline point by its recorded ``app`` label."""
    if app == "dag:kmeans":
        return kmeans_point(costs=costs, **kwargs)
    if app == "dag:pagerank":
        return pagerank_point(costs=costs, **kwargs)
    if app == "dag:prefixsum":
        return prefixsum_point(costs=costs, **kwargs)
    raise ValueError(f"unknown dag bench point {app!r}")


def report(quick: bool = False,
           json_path: Optional[str] = DEFAULT_JSON_PATH) -> ExperimentReport:
    """Run the three DAG points; emit ``BENCH_dag.json``."""
    rep = ExperimentReport(
        experiment="DAG/iterative engine — cross-round caching on "
                   f"{DAG_NODES} shared nodes",
        paper_claim="iterative MapReduce belongs on a DAG engine: one "
                    "long-lived session with immutable inputs cached "
                    "across rounds beats per-round re-submission at "
                    "bit-identical output, and the MRC multi-round apps "
                    "(prefix sums, PageRank) run as chained stages")

    if quick:
        km = kmeans_point(n_points=_QUICK["km_points"],
                          rounds=_QUICK["km_rounds"])
        pr = pagerank_point(n_vertices=_QUICK["pr_vertices"],
                            n_edges=_QUICK["pr_edges"],
                            rounds=_QUICK["pr_rounds"])
        ps = prefixsum_point(n_values=_QUICK["ps_values"])
    else:
        km = kmeans_point()
        pr = pagerank_point()
        ps = prefixsum_point()
    points = [km, pr, ps]

    table = Table(f"DAG points ({DAG_NODES} nodes, dfs, static-affinity)",
                  ["app", "rounds", "elapsed_s", "network_bytes",
                   "cache_hit_B", "cache_miss_B", "wall_s"])
    for p in points:
        table.add_row(app=p["app"], rounds=p.get("rounds", 1),
                      elapsed_s=p["elapsed_s"],
                      network_bytes=p["network_bytes"],
                      cache_hit_B=p["cache_hit_bytes"],
                      cache_miss_B=p["cache_miss_bytes"],
                      wall_s=p["wall_s"])
    rep.tables.append(table)

    speed = Table("iterative k-means: cached DAG vs naive re-submission",
                  ["engine", "elapsed_s", "speedup"])
    speed.add_row(engine="resubmit", elapsed_s=km["naive_elapsed_s"],
                  speedup=1.0)
    speed.add_row(engine="dag", elapsed_s=km["elapsed_s"],
                  speedup=km["speedup"])
    rep.tables.append(speed)

    rep.check("cached and naive k-means centers are bit-identical",
              km["identical_output"])
    rep.check(f"cached k-means beats re-submission by >= "
              f"{MIN_KMEANS_SPEEDUP}x simulated time",
              km["speedup"] >= MIN_KMEANS_SPEEDUP,
              f"measured {km['speedup']:.2f}x over {km['rounds']} rounds")
    rep.check("prefix sums are bit-exact against numpy.cumsum",
              ps["exact"])
    rep.check("pagerank matches dense power iteration (<= 1e-9 abs)",
              pr["max_abs_err"] <= 1e-9,
              f"max |err| = {pr['max_abs_err']:.2e}")
    rep.check("every point re-read bytes from the cross-round cache",
              all(p["cache_hit_bytes"] > 0 for p in points))

    if json_path:
        payload = {
            "generated_by": "python -m repro.bench dag",
            "min_kmeans_speedup": MIN_KMEANS_SPEEDUP,
            "nodes": DAG_NODES,
            "points": points,
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in rep.checks],
        }
        ensure_parent_dir(json_path)
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        rep.notes.append(f"wrote {json_path}")

    return rep
