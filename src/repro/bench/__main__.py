"""Command-line entry point: ``python -m repro.bench <experiment>``.

Experiments: table1, fig2, fig3, table2, table3, fig4, fig5, vertical,
ablation, scaling, service, dag, elastic, or ``all``.  Use ``--quick``
for truncated node sweeps.  ``scaling`` writes ``BENCH_scaling.json``,
``service`` writes ``BENCH_service.json``, ``dag`` writes
``BENCH_dag.json`` and ``elastic`` writes ``BENCH_elastic.json`` to the
current directory.
"""

from __future__ import annotations

import argparse
import sys
import time


def _reports(name: str, quick: bool):
    if name == "table1":
        from repro.bench import table1
        return [table1.report()]
    if name == "fig2":
        from repro.bench import fig2
        if quick:
            return [fig2.pvc_report((1, 4, 16)), fig2.wc_report((1, 4, 16)),
                    fig2.ts_report((4, 16))]
        return fig2.run_all()
    if name == "fig3":
        from repro.bench import fig3
        if quick:
            return [fig3.km_cpu_report((1, 4)), fig3.mm_cpu_report((1, 4)),
                    fig3.km_gpu_report((1, 4)), fig3.mm_gpu_report((1, 4)),
                    fig3.km_overlap_report((1, 4))]
        return fig3.run_all()
    if name == "table2":
        from repro.bench import table2
        return [table2.report()]
    if name == "table3":
        from repro.bench import table3
        return [table3.report()]
    if name == "fig4":
        from repro.bench import fig4
        return fig4.run_all()
    if name == "fig5":
        from repro.bench import fig5
        return [fig5.report()]
    if name == "vertical":
        from repro.bench import vertical
        return [vertical.report()]
    if name == "ablation":
        from repro.bench import ablation
        return ablation.run_all()
    if name == "scaling":
        from repro.bench import scaling
        nodes = scaling.QUICK_NODES if quick else scaling.NODES
        return [scaling.report(nodes)]
    if name == "service":
        from repro.bench import service
        if quick:
            return [service.report(service.QUICK_JOBS, json_path=None)]
        return [service.report()]
    if name == "dag":
        from repro.bench import dag
        if quick:
            return [dag.report(quick=True, json_path=None)]
        return [dag.report()]
    if name == "elastic":
        from repro.bench import elastic
        if quick:
            return [elastic.report(quick=True, json_path=None)]
        return [elastic.report()]
    raise SystemExit(f"unknown experiment {name!r}")


ALL = ("table1", "fig2", "fig3", "table2", "table3", "fig4", "fig5",
       "vertical", "ablation", "scaling", "service", "dag", "elastic")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment", choices=ALL + ("all",))
    parser.add_argument("--quick", action="store_true",
                        help="truncated sweeps for a fast smoke run")
    parser.add_argument("--output", metavar="DIR", default=None,
                        help="also write each experiment's report to "
                             "DIR/<experiment>.md")
    parser.add_argument("--trace-dir", metavar="DIR", default=None,
                        help="write Chrome traces of runs the experiments "
                             "kept a timeline for (chrome://tracing)")
    args = parser.parse_args(argv)

    out_dir = None
    if args.output:
        import pathlib
        out_dir = pathlib.Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = ALL if args.experiment == "all" else (args.experiment,)
    failures = 0
    for name in names:
        start = time.time()
        rendered = []
        for report in _reports(name, args.quick):
            text = report.render()
            print(text)
            print(f"({time.time() - start:.1f}s)\n")
            rendered.append(text)
            if not report.all_passed:
                failures += 1
            if args.trace_dir and report.timelines:
                for path in report.export_traces(args.trace_dir):
                    print(f"trace: {path}")
        if out_dir is not None:
            (out_dir / f"{name}.md").write_text(
                f"# {name}\n\n```\n" + "\n\n".join(rendered) + "\n```\n")
    if failures:
        print(f"{failures} experiment(s) had failing shape checks",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
