"""Ablations of Glasswing's design choices (beyond the paper's figures).

DESIGN.md calls out the load-bearing design decisions; each gets a
dedicated ablation so a reader can see what it buys:

* pipeline buffering level (1/2/3) across applications;
* push-based vs pull-based shuffle (Glasswing vs the Hadoop engine's pull
  with everything else equalised as far as the engines allow);
* hash-table collector contention as a function of key repetition;
* file-affinity scheduling on/off (affinity is emulated off by using a
  locality-blind backend);
* overlapping (double-buffered) pipeline vs a fully serialised one.
"""

from __future__ import annotations

from repro.apps import KMeansApp, WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import GBE, QDR_IB, das4_cluster
from repro.hw.specs import DeviceKind, KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table

__all__ = ["buffering_report", "collector_contention_report",
           "affinity_report", "network_report", "phase_device_report",
           "run_all"]

CHUNK = 256 * KiB


def buffering_report() -> ExperimentReport:
    """Single/double/triple buffering across the I/O-bound apps."""
    rep = ExperimentReport(
        experiment="Ablation — pipeline buffering level",
        paper_claim="§III-D: higher buffering relaxes the stage interlock; "
                    "the trade-off depends on the application")
    inputs = workloads.wc_input()
    table = Table("WC job time vs buffering level",
                  ("buffering", "map_s", "job_s"))
    times = {}
    for level in (1, 2, 3):
        res = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=1),
                            JobConfig(chunk_size=CHUNK, storage="local",
                                      buffering=level))
        times[level] = res
        table.add_row(buffering=level, map_s=res.map_time,
                      job_s=res.job_time)
    rep.tables.append(table)
    rep.check("double buffering beats single",
              times[2].map_time < times[1].map_time,
              f"{times[1].map_time:.3f} -> {times[2].map_time:.3f}")
    rep.check("triple buffering adds little over double (CPU-contended)",
              times[3].map_time < times[1].map_time
              and abs(times[3].map_time - times[2].map_time)
              < 0.25 * times[2].map_time)
    return rep


def collector_contention_report() -> ExperimentReport:
    """Hash-table kernel slowdown vs key repetition.

    The paper's own contrast: PVC's web logs are "highly sparse in that
    duplicate URLs are rare" (little bucket contention) while WC "exhibits
    a high repetition of a number of keys which increases the contention
    on the hash table".  The same app (URL/word counting) runs over both
    key distributions with each collector; the hash/buffer kernel-time
    ratio is the contention penalty.
    """
    from repro.apps import PageViewApp
    from repro.apps.datagen import web_logs
    from repro.core.collector import collect_map_output
    from repro.hw.presets import CPU_TYPE1

    rep = ExperimentReport(
        experiment="Ablation — collector contention vs key repetition",
        paper_claim="§IV-B.1: WC's repeated keys contend on hash buckets "
                    "(threads loop on atomics); PVC's sparse URLs barely "
                    "contend")
    table = Table("per-chunk contention and kernel penalty by workload",
                  ("workload", "contention", "hash_kernel_s",
                   "buffer_kernel_s", "penalty"))
    cases = [
        ("sparse URLs (PVC)", PageViewApp(),
         {"logs": web_logs(4 * 1024 * 1024, seed=77)}),
        ("zipf words (WC)", WordCountApp(),
         {"wiki": wiki_text(4 * 1024 * 1024, seed=78)}),
        ("tiny vocabulary (WC)", WordCountApp(),
         {"wiki": wiki_text(4 * 1024 * 1024, seed=79, vocab_size=300)}),
    ]
    rows = []
    for label, app, inputs in cases:
        # Per-chunk contention measured exactly as the collector sees it.
        sample = app.map_batch(
            app.record_format.split_records(
                next(iter(inputs.values()))[:CHUNK]))
        out, extra = collect_map_output("hash", app, CPU_TYPE1, sample,
                                        use_combiner=False, chunk_index=0)
        contention = extra.atomic_intensity
        hash_res = run_glasswing(
            app, inputs, das4_cluster(nodes=1),
            JobConfig(chunk_size=CHUNK, storage="local", collector="hash",
                      use_combiner=False))
        buf_res = run_glasswing(
            app, inputs, das4_cluster(nodes=1),
            JobConfig(chunk_size=CHUNK, storage="local", collector="buffer",
                      use_combiner=False))
        hk = hash_res.metrics.stage_time("map", "kernel", "node0")
        bk = buf_res.metrics.stage_time("map", "kernel", "node0")
        rows.append((contention, hk / bk))
        table.add_row(workload=label, contention=contention,
                      hash_kernel_s=hk, buffer_kernel_s=bk,
                      penalty=hk / bk)
    rep.tables.append(table)
    rep.check("hash kernel always pays at least the probing overhead",
              all(p > 1.0 for _, p in rows))
    rep.check("sparse keys contend far less than repetitive keys",
              rows[0][0] < 0.7 * rows[-1][0],
              f"PVC {rows[0][0]:.2f} vs tiny-vocab WC {rows[-1][0]:.2f}")
    rep.check("the kernel penalty tracks the contention",
              rows[0][1] < rows[-1][1],
              f"{rows[0][1]:.2f} -> {rows[-1][1]:.2f}")
    return rep


def affinity_report(nodes: int = 8) -> ExperimentReport:
    """File-affinity scheduling: local block reads vs remote streams."""
    rep = ExperimentReport(
        experiment="Ablation — file-affinity scheduling",
        paper_claim="§IV-A: Glasswing's scheduler considers file affinity "
                    "in its job allocation (like Hadoop's data locality)")
    inputs = workloads.wc_input()
    cluster = das4_cluster(nodes=nodes)
    with_aff = run_glasswing(WordCountApp(), inputs, cluster,
                             JobConfig(chunk_size=CHUNK,
                                       input_replication=3))
    # Replication 1 with round-robin block placement makes most splits
    # remote for their assigned node only if assignment ignores locality;
    # with affinity they are still local. To ablate affinity itself we
    # compare against replication 1, which leaves the scheduler almost no
    # freedom and forces remote reads whenever placement and load balance
    # conflict.
    no_freedom = run_glasswing(WordCountApp(), inputs, cluster,
                               JobConfig(chunk_size=CHUNK,
                                         input_replication=1))
    rep.tables.append(_two_row_table(
        "network bytes moved during the job",
        ("config", "job_s", "network_bytes"),
        [("replication 3 + affinity", with_aff.job_time,
          with_aff.stats["network_bytes"]),
         ("replication 1 (no placement freedom)", no_freedom.job_time,
          no_freedom.stats["network_bytes"])]))
    rep.check("affinity keeps input reads local (less network traffic)",
              with_aff.stats["network_bytes"]
              <= no_freedom.stats["network_bytes"])
    return rep


def _two_row_table(title, columns, rows):
    t = Table(title, columns)
    for row in rows:
        t.add_row(**dict(zip(columns, row)))
    return t


def network_report(nodes: int = 8) -> ExperimentReport:
    """Interconnect ablation: GbE vs QDR InfiniBand (the paper's cluster
    has both; the experiments use IP over InfiniBand)."""
    rep = ExperimentReport(
        experiment="Ablation — GbE vs QDR InfiniBand",
        paper_claim="§IV: nodes are connected via Gigabit Ethernet and "
                    "QDR InfiniBand; the experiments run IP over "
                    "InfiniBand (shuffle-heavy jobs need the bandwidth)")
    inputs = workloads.wc_input()
    cfg = JobConfig(chunk_size=CHUNK, use_combiner=False)
    ib = run_glasswing(WordCountApp(), inputs,
                       das4_cluster(nodes=nodes, network=QDR_IB), cfg)
    gbe = run_glasswing(WordCountApp(), inputs,
                        das4_cluster(nodes=nodes, network=GBE), cfg)
    rep.tables.append(_two_row_table(
        f"WC (no combiner) on {nodes} nodes",
        ("network", "job_s", "network_bytes"),
        [("QDR InfiniBand", ib.job_time, ib.stats["network_bytes"]),
         ("Gigabit Ethernet", gbe.job_time, gbe.stats["network_bytes"])]))
    rep.check("the shuffle-heavy job is faster on InfiniBand",
              ib.job_time < gbe.job_time,
              f"IB {ib.job_time:.3f}s vs GbE {gbe.job_time:.3f}s")
    rep.check("both move the same bytes (the fabric, not the volume)",
              abs(ib.stats["network_bytes"] - gbe.stats["network_bytes"])
              < 0.01 * max(ib.stats["network_bytes"], 1))
    return rep


def phase_device_report() -> ExperimentReport:
    """Per-phase device flexibility: map on the GPU, reduce on the CPU."""
    rep = ExperimentReport(
        experiment="Ablation — per-phase compute devices",
        paper_claim="§II: 'map and reduce tasks can be executed on CPUs "
                    "or GPUs'")
    pts = workloads.km_points()
    app_factory = workloads.km_app_paper
    cluster = das4_cluster(nodes=2, gpu=True)
    cfg = JobConfig(chunk_size=CHUNK, storage="local")
    rows = []
    for label, overrides in [
            ("cpu/cpu", {}),
            ("gpu/gpu", {"device": DeviceKind.GPU}),
            ("gpu/cpu", {"map_device": DeviceKind.GPU,
                         "reduce_device": DeviceKind.CPU}),
    ]:
        res = run_glasswing(app_factory(), pts, cluster,
                            cfg.with_(**overrides))
        rows.append((label, res.map_time, res.reduce_time, res.job_time))
    rep.tables.append(_two_row_table(
        "KM with per-phase device choices",
        ("map/reduce", "map_s", "reduce_s", "job_s"), rows))
    cpu_cpu, gpu_gpu, gpu_cpu = rows
    rep.check("GPU map phase beats CPU map phase",
              gpu_cpu[1] < 0.5 * cpu_cpu[1])
    rep.check("mixed-device job close to all-GPU (KM's reduce is tiny)",
              gpu_cpu[3] < 1.5 * gpu_gpu[3],
              f"gpu/cpu {gpu_cpu[3]:.3f}s vs gpu/gpu {gpu_gpu[3]:.3f}s")
    return rep


def run_all() -> list:
    return [buffering_report(), collector_contention_report(),
            affinity_report(), network_report(), phase_device_report()]
