"""Experiment harness: regenerates every table and figure of §IV.

One module per experiment:

* :mod:`repro.bench.table1` — the related-work feature matrix.
* :mod:`repro.bench.fig2`   — I/O-bound horizontal scaling (PVC/WC/TS).
* :mod:`repro.bench.fig3`   — compute-bound apps (KM/MM) on CPU and GPU,
  vs Hadoop and GPMR, HDFS vs local FS.
* :mod:`repro.bench.table2` — WC map-pipeline breakdown (collector and
  buffering configurations).
* :mod:`repro.bench.table3` — KM map-pipeline breakdown, CPU vs GTX480.
* :mod:`repro.bench.fig4`   — intermediate-data handling (N and P sweeps).
* :mod:`repro.bench.fig5`   — reduce-pipeline concurrent-keys sweep.
* :mod:`repro.bench.vertical` — §IV-C device comparison (K20m, GTX680,
  Xeon Phi).
* :mod:`repro.bench.ablation` — design-choice ablations beyond the paper.

Run any of them from the command line::

    python -m repro.bench fig2
    python -m repro.bench all
"""

from repro.bench.harness import ExperimentReport, ShapeCheck, Table

__all__ = ["ExperimentReport", "ShapeCheck", "Table"]
