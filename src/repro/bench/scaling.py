"""Horizontal scaling sweep: 1 → 1024 simulated nodes.

The batched hot path exists so the simulator itself scales: per-record
simulation is the differential-test ground truth, but sweeping a
thousand-node cluster is only tractable when each pipeline payload
carries a whole split.  This experiment measures both axes at once:

* **virtual time** — weak scaling (fixed bytes per node) for WordCount
  and TeraSort, recording elapsed, the dominant pipeline stage and its
  share, and the §III-D overlap factor at every cluster size.  The
  paper's "elapsed converges to the dominant stage" claim is checked at
  the largest size.
* **wall-clock** — the simulator's own cost: every sweep point records
  how long the *simulation* took, and a head-to-head 64-node WordCount
  run compares ``batch_size=1`` against the autotuned batch, asserting
  the batched path is at least :data:`MIN_WALL_SPEEDUP` times faster.

``report()`` writes ``BENCH_scaling.json`` (path overridable) so CI can
smoke-check the sweep and diff the recorded numbers.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, Optional, Sequence

from repro.apps import TeraSortApp, WordCountApp
from repro.apps.datagen import teragen, wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.hw.presets import das4_cluster
from repro.hw.specs import KiB
from repro.obs.causal import causal_profile
from repro.obs.report import PipelineReport
from repro.obs.telemetry import ensure_parent_dir
from repro.storage.records import NO_COMPRESSION

from repro.bench.harness import ExperimentReport, Table

__all__ = ["report", "sweep_point", "NODES", "QUICK_NODES",
           "PER_NODE_BYTES", "SPLITS_PER_NODE", "MIN_WALL_SPEEDUP",
           "WC64_WALL_BUDGET_S", "DEFAULT_JSON_PATH",
           "SKEW_NODES", "MIN_SKEW_SPEEDUP"]

#: full weak-scaling ladder (>= 6 sizes up to 1024)
NODES = (1, 4, 16, 64, 256, 1024)
#: reduced ladder for CI perf-smoke and --quick runs
QUICK_NODES = (1, 4, 16, 64)
#: weak-scaling input volume per node
PER_NODE_BYTES = 32 * KiB
#: splits per node (pipelining depth of each map pipeline)
SPLITS_PER_NODE = 2
#: required wall-clock advantage of the batched path at 64 nodes
MIN_WALL_SPEEDUP = 5.0
#: wall-clock budget for the batched 64-node WordCount point.  Recorded
#: from the run that produced the committed BENCH_scaling.json (~0.7 s)
#: with generous headroom for slower CI machines; a regression that
#: drags the batched hot path back toward per-record cost blows this.
WC64_WALL_BUDGET_S = 15.0
DEFAULT_JSON_PATH = "BENCH_scaling.json"

#: cluster size of the scheduler-policy comparison on the skewed case
SKEW_NODES = 64
#: required virtual-elapsed advantage of dynamic-locality over
#: static-affinity on the skewed wordcount at :data:`SKEW_NODES` nodes
MIN_SKEW_SPEEDUP = 1.2
#: skewed-case shape: Zipf exponent, files per node and the shuffle seed.
#: Single-replica files pin static-affinity to each file's writer, so the
#: per-node byte imbalance is exactly the (shuffled) Zipf weight spread —
#: the workload dynamic pull rebalances and static assignment cannot.
SKEW_ZIPF_S = 0.7
SKEW_FILES_PER_NODE = 4
SKEW_SEED = 1

_CHUNK = PER_NODE_BYTES // SPLITS_PER_NODE
_TERA_RECORD = 100


def _wc_case(nodes: int):
    app = WordCountApp()
    inputs = {"wiki": wiki_text(PER_NODE_BYTES * nodes, seed=42)}
    cfg = dict(chunk_size=_CHUNK, partitions_per_node=1)
    return app, inputs, cfg


def _ts_case(nodes: int):
    n_records = (PER_NODE_BYTES * nodes) // _TERA_RECORD
    data = teragen(n_records, seed=43)
    app = TeraSortApp.from_input(data, sample_every=29)
    cfg = dict(chunk_size=_CHUNK, partitions_per_node=1,
               output_replication=1, compression=NO_COMPRESSION)
    return app, {"tera": data}, cfg


def _skew_case(nodes: int):
    """Skewed wordcount: one-replica files with shuffled Zipf sizes.

    File == split == block (the chunk size covers the largest file), and
    ``input_replication=1`` leaves each split exactly one local holder —
    its writer — so static affinity is pinned to the install spread while
    the dynamic policies rebalance the byte skew at runtime.
    """
    total = PER_NODE_BYTES * nodes
    n_files = SKEW_FILES_PER_NODE * nodes
    weights = [1.0 / (i + 1) ** SKEW_ZIPF_S for i in range(n_files)]
    scale = total / sum(weights)
    sizes = [max(512, int(w * scale)) for w in weights]
    sizes[0] += total - sum(sizes)      # exact total on the largest file
    random.Random(SKEW_SEED).shuffle(sizes)
    text = wiki_text(total, seed=42)
    inputs, offset = {}, 0
    for i, size in enumerate(sizes):
        inputs[f"skew{i:04d}"] = text[offset:offset + size]
        offset += size
    cfg = dict(chunk_size=max(sizes), partitions_per_node=1,
               input_replication=1)
    return WordCountApp(), inputs, cfg


_CASES = {"wordcount": _wc_case, "terasort": _ts_case,
          "wordcount-skew": _skew_case}
#: cases swept across the whole node ladder (the skew case is a 64-node
#: scheduler comparison, not a weak-scaling ladder member)
_LADDER = ("terasort", "wordcount")


def sweep_point(case: str, nodes: int,
                batch_size: Optional[int] = None,
                costs: HostCosts = DEFAULT_HOST_COSTS,
                scheduler: str = "static-affinity") -> Dict[str, Any]:
    """Run one (app, cluster size) cell; returns its JSON record.

    ``costs`` overrides the host cost model — the regression gate's
    self-test injects a slowed model here to prove it trips.  The
    scheduling policy is pinned to ``static-affinity`` (not the
    ``$REPRO_SCHEDULER`` session default), so the committed baseline and
    the regression gate always compare the compatibility policy.
    """
    app, inputs, cfg_kwargs = _CASES[case](nodes)
    cfg = JobConfig(batch_size=batch_size, scheduler=scheduler,
                    **cfg_kwargs)
    wall0 = time.perf_counter()
    res = run_glasswing(app, inputs, das4_cluster(nodes=nodes), cfg,
                        costs=costs)
    wall = time.perf_counter() - wall0
    point: Dict[str, Any] = {
        "app": case,
        "nodes": nodes,
        "scheduler": scheduler,
        "batch_size": res.stats["batch_size"],
        "batch_autotuned": res.stats["batch_autotuned"],
        "input_bytes": sum(len(v) for v in inputs.values()),
        "elapsed_s": res.job_time,
        "map_s": res.map_time,
        "merge_delay_s": res.merge_delay,
        "reduce_s": res.reduce_time,
        "wall_s": wall,
        "network_bytes": res.stats["network_bytes"],
        "leaked_buffer_slots": res.stats["leaked_buffer_slots"],
    }
    for phase in ("map", "reduce"):
        rep = PipelineReport(res.timeline, phase)
        util = rep.utilization()
        dominant = rep.dominant_stage
        point[phase + "_pipeline"] = {
            "overlap_factor": rep.overlap_factor,
            "dominant_stage": dominant,
            "dominant_share": util.get(dominant, 0.0) if dominant else 0.0,
        }
    # Causal wait profile of the run: baseline points carry it so the
    # regression gate can explain a drift (not just detect it).  The
    # tree section is per-job detail the sweep does not need.
    causal = causal_profile(res.timeline, elapsed_s=res.job_time)
    causal.pop("tree", None)
    point["causal"] = causal
    return point


def report(nodes: Sequence[int] = NODES,
           json_path: Optional[str] = DEFAULT_JSON_PATH) -> ExperimentReport:
    """Run the sweep + the 64-node wall-clock comparison; emit the JSON."""
    rep = ExperimentReport(
        experiment="Scaling sweep — horizontal (1..1024 nodes) x batched "
                    "hot path",
        paper_claim="elapsed time converges to the dominant pipeline stage "
                    "as the cluster scales; the simulator's batched data "
                    "path keeps the sweep tractable")

    points = []
    for case in _LADDER:
        for n in nodes:
            points.append(sweep_point(case, n))

    # Scheduler-policy comparison on the skewed WordCount: Zipf split
    # sizes with one replica pin static affinity to the install-time
    # spread, while the dynamic policies pull work at runtime.  The
    # static point joins the sweep so the regression gate guards it.
    sched_comparison = None
    if SKEW_NODES in nodes:
        by_policy = {
            policy: sweep_point("wordcount-skew", SKEW_NODES,
                                scheduler=policy)
            for policy in ("static-affinity", "dynamic-locality",
                           "oplevel")}
        points.append(by_policy["static-affinity"])
        static_e = by_policy["static-affinity"]["elapsed_s"]
        dyn_e = by_policy["dynamic-locality"]["elapsed_s"]
        speedup = static_e / max(dyn_e, 1e-9)
        sched_comparison = {
            "nodes": SKEW_NODES,
            "app": "wordcount-skew",
            "elapsed_s": {pol: p["elapsed_s"]
                          for pol, p in by_policy.items()},
            "dynamic_speedup": speedup,
        }
        rep.check(
            f"dynamic-locality >= {MIN_SKEW_SPEEDUP:.1f}x faster than "
            f"static-affinity on skewed wordcount @ {SKEW_NODES} nodes",
            speedup >= MIN_SKEW_SPEEDUP,
            "; ".join(f"{pol} {p['elapsed_s']:.4f}s"
                      for pol, p in sorted(by_policy.items()))
            + f" ({speedup:.2f}x)")

    table = Table("weak scaling (%d KiB/node)" % (PER_NODE_BYTES // KiB),
                  ["app", "nodes", "elapsed_s", "map_s", "reduce_s",
                   "dominant", "dom_share", "overlap", "wall_s"])
    for p in points:
        table.add_row(app=p["app"], nodes=p["nodes"],
                      elapsed_s=p["elapsed_s"], map_s=p["map_s"],
                      reduce_s=p["reduce_s"],
                      dominant=p["map_pipeline"]["dominant_stage"],
                      dom_share=p["map_pipeline"]["dominant_share"],
                      overlap=p["map_pipeline"]["overlap_factor"],
                      wall_s=p["wall_s"])
    rep.tables.append(table)

    rep.check("no sweep point leaked buffer slots",
              all(p["leaked_buffer_slots"] == 0 for p in points))
    rep.check("weak scaling holds elapsed within 100x of the 1-node run",
              all(p["elapsed_s"] < 100 * points_for(points, p["app"])[0]
                  ["elapsed_s"] for p in points),
              "per-node work constant; growth comes from the shuffle")

    # Dominant-stage convergence at the largest swept size: the paper's
    # shape property is that the pipeline hides every non-dominant
    # stage, i.e. elapsed approaches the dominant stage's active time
    # from above — equivalently, the measured overlap factor approaches
    # its upper bound sum(stage occupied) / dominant-stage occupied.
    largest = max(nodes)
    tol = 0.15
    for case in _LADDER:
        p = points_for(points, case)[-1]
        pipe = p["map_pipeline"]
        share = pipe["dominant_share"]
        bound = pipe["overlap_factor"] / share if share else float("inf")
        rep.check(
            f"{case}@{largest}: overlap factor within {tol:.0%} of the "
            f"dominant-stage bound",
            share >= 1.0 - tol,
            f"overlap {pipe['overlap_factor']:.2f}x vs bound {bound:.2f}x; "
            f"dominant {pipe['dominant_stage']} covers {share:.0%} of "
            f"elapsed")

    # Wall-clock: the reason the batched path exists.  Per-record
    # simulation of the 64-node WordCount point vs the autotuned batch.
    comparison = None
    if 64 in nodes:
        # Best-of-2 wall clocks: a single measurement is noise-prone and
        # this ratio is the acceptance number for the whole batched path.
        # (Virtual time is NOT asserted equal here: the default config
        # runs hash collector + combiner, whose contention and partial
        # aggregation legitimately depend on launch granularity — the
        # strict-tier differential tests pin virtual time instead.)
        sweep_batched = next(p for p in points_for(points, "wordcount")
                             if p["nodes"] == 64)
        batched = min(sweep_batched, sweep_point("wordcount", 64),
                      key=lambda p: p["wall_s"])
        per_record = min((sweep_point("wordcount", 64, batch_size=1)
                          for _ in range(2)), key=lambda p: p["wall_s"])
        speedup = per_record["wall_s"] / max(batched["wall_s"], 1e-9)
        comparison = {
            "nodes": 64,
            "app": "wordcount",
            "per_record_wall_s": per_record["wall_s"],
            "batched_wall_s": batched["wall_s"],
            "wall_speedup": speedup,
            "per_record_elapsed_s": per_record["elapsed_s"],
            "batched_elapsed_s": batched["elapsed_s"],
        }
        rep.check(
            f"batched 64-node wordcount >= {MIN_WALL_SPEEDUP:.0f}x faster "
            f"wall-clock than batch_size=1",
            speedup >= MIN_WALL_SPEEDUP,
            f"{per_record['wall_s']:.2f}s -> {batched['wall_s']:.2f}s "
            f"({speedup:.1f}x)")
        rep.check(
            f"batched 64-node wordcount wall-clock under the recorded "
            f"budget ({WC64_WALL_BUDGET_S:.0f}s)",
            batched["wall_s"] <= WC64_WALL_BUDGET_S,
            f"{batched['wall_s']:.2f}s")

    if json_path:
        payload = {
            "generated_by": "python -m repro.bench scaling",
            "per_node_bytes": PER_NODE_BYTES,
            "splits_per_node": SPLITS_PER_NODE,
            "nodes_swept": list(nodes),
            "wall_budget_s": {"wordcount_64_batched": WC64_WALL_BUDGET_S},
            "sweep": points,
            "batch_comparison": comparison,
            "sched_comparison": sched_comparison,
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in rep.checks],
        }
        ensure_parent_dir(json_path)
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        rep.notes.append(f"wrote {json_path}")

    return rep


def points_for(points, case: str):
    """The sweep points of one app, in ascending node order."""
    return sorted((p for p in points if p["app"] == case),
                  key=lambda p: p["nodes"])
