"""Performance-regression gate over the committed bench baselines.

Replays sweep points from ``BENCH_scaling.json`` (the artefact
``python -m repro.bench scaling`` commits) and diffs the re-measured
*virtual* metrics against the recorded ones:

* ``elapsed_s`` — simulated job time (relative tolerance; the model is
  deterministic, so any drift is a code change, but float noise from
  refactored arithmetic gets a small allowance);
* ``network_bytes`` — shuffle volume (exact: byte counts never drift
  legitimately);
* map ``overlap_factor`` — the §III-D pipelining payoff (absolute
  tolerance).

When ``BENCH_service.json`` (from ``python -m repro.bench service``) is
present it is replayed too: the multi-job trace replay is rerun per
arbiter and its makespan, throughput and latency percentiles are diffed
— plus the exact-match counters (``completed``, ``leaked_buffer_slots``)
that must never drift at all.

Likewise ``BENCH_dag.json`` (from ``python -m repro.bench dag``): the
three DAG/iterative points are re-measured and diffed, including the
exact cache-traffic byte counters, the k-means DAG-vs-resubmit speedup,
and the bit-identical/bit-exact output flags that must never flip.

And ``BENCH_elastic.json`` (from ``python -m repro.bench elastic``): the
three membership chaos points — cluster doubling, cluster halving,
double coordinator failover — are replayed and diffed, including the
byte-identical output flag, the exact join/drain/failover counts and
the recovery re-push/re-execute counters, none of which may drift at
all.

Wall-clock fields are deliberately ignored — they measure the CI
machine, not the model.  Exit status is nonzero on any regression, so
CI can gate on ``python -m repro.bench.regress``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.obs.diff import explain_diff, render_diff

from repro.bench.dag import DEFAULT_JSON_PATH as DAG_JSON_PATH
from repro.bench.dag import dag_point
from repro.bench.elastic import DEFAULT_JSON_PATH as ELASTIC_JSON_PATH
from repro.bench.elastic import elastic_point
from repro.bench.scaling import DEFAULT_JSON_PATH, QUICK_NODES, sweep_point
from repro.bench.service import DEFAULT_JSON_PATH as SERVICE_JSON_PATH
from repro.bench.service import service_point

__all__ = ["DEFAULT_TOLERANCES", "SERVICE_TOLERANCES", "DAG_TOLERANCES",
           "ELASTIC_TOLERANCES", "compare_point", "run_regress",
           "run_service_regress", "run_dag_regress", "run_elastic_regress",
           "main"]

#: metric -> (kind, tolerance); ``rel`` compares |new-old|/|old|,
#: ``abs`` compares |new-old|
DEFAULT_TOLERANCES: Dict[str, Any] = {
    "elapsed_s": ("rel", 0.02),
    "network_bytes": ("rel", 0.0),
    "overlap_factor": ("abs", 0.05),
}

#: the service-replay gate: virtual latency metrics get the same float
#: allowance as ``elapsed_s``; job counts and the leak audit are exact
SERVICE_TOLERANCES: Dict[str, Any] = {
    "makespan_s": ("rel", 0.02),
    "throughput_jobs_per_s": ("rel", 0.02),
    "latency_p50_s": ("rel", 0.02),
    "latency_p95_s": ("rel", 0.02),
    "latency_p99_s": ("rel", 0.02),
    "completed": ("rel", 0.0),
    "leaked_buffer_slots": ("abs", 0.0),
}

#: the DAG-replay gate: simulated times get the float allowance, every
#: byte counter is exact (cache traffic drifting means the cross-round
#: caching behaviour changed)
DAG_TOLERANCES: Dict[str, Any] = {
    "elapsed_s": ("rel", 0.02),
    "network_bytes": ("rel", 0.0),
    "cache_hit_bytes": ("rel", 0.0),
    "cache_miss_bytes": ("rel", 0.0),
}

#: per-app extras on top of :data:`DAG_TOLERANCES` — correctness flags
#: are booleans compared exactly (flipping one is a correctness bug, not
#: a perf regression, but the gate still refuses it)
_DAG_EXTRA_TOLERANCES: Dict[str, Dict[str, Any]] = {
    "dag:kmeans": {"naive_elapsed_s": ("rel", 0.02),
                   "speedup": ("rel", 0.02),
                   "identical_output": ("abs", 0.0)},
    "dag:pagerank": {"max_abs_err": ("abs", 1e-12)},
    "dag:prefixsum": {"exact": ("abs", 0.0)},
}

#: which recorded fields parameterise each point's replay
_DAG_SHAPE_KEYS: Dict[str, Any] = {
    "dag:kmeans": ("n_points", "rounds"),
    "dag:pagerank": ("n_vertices", "n_edges", "rounds"),
    "dag:prefixsum": ("n_values",),
}

#: the chaos-replay gate: simulated times get the float allowance;
#: byte counters, the identical-output flag and the leak audit are
#: exact — a chaos schedule whose output stops matching the static run
#: is a correctness bug the gate must refuse
ELASTIC_TOLERANCES: Dict[str, Any] = {
    "elapsed_s": ("rel", 0.02),
    "baseline_elapsed_s": ("rel", 0.02),
    "network_bytes": ("rel", 0.0),
    "identical_output": ("abs", 0.0),
    "leaked_buffer_slots": ("abs", 0.0),
}

#: per-point extras on top of :data:`ELASTIC_TOLERANCES` — membership
#: and recovery counters are exact
_ELASTIC_EXTRA_TOLERANCES: Dict[str, Dict[str, Any]] = {
    "elastic:double": {"speedup": ("rel", 0.02), "joined": ("abs", 0.0)},
    "elastic:halve": {"slowdown": ("rel", 0.02), "departed": ("abs", 0.0),
                      "repushed_runs": ("abs", 0.0),
                      "reexecuted_splits": ("abs", 0.0)},
    "elastic:failover": {"failovers": ("abs", 0.0),
                         "overhead_s": ("abs", 1e-9)},
}

_ELASTIC_SHAPE_KEYS: Dict[str, Any] = {
    "elastic:double": ("kilobytes",),
    "elastic:halve": ("kilobytes",),
    "elastic:failover": ("kilobytes",),
}


def _metric_of(point: Dict[str, Any], metric: str) -> float:
    if metric == "overlap_factor":
        return point["map_pipeline"]["overlap_factor"]
    return point[metric]


def compare_point(baseline: Dict[str, Any], measured: Dict[str, Any],
                  tolerances: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Diff one sweep point; returns one row per compared metric."""
    rows = []
    for metric, (kind, tol) in sorted(tolerances.items()):
        old = float(_metric_of(baseline, metric))
        new = float(_metric_of(measured, metric))
        delta = abs(new - old)
        if kind == "rel":
            deviation = delta / abs(old) if old else (0.0 if not delta
                                                      else float("inf"))
        else:
            deviation = delta
        rows.append({
            "app": baseline["app"],
            "nodes": baseline["nodes"],
            "metric": metric,
            "baseline": old,
            "measured": new,
            "deviation": deviation,
            "tolerance": tol,
            "kind": kind,
            "ok": deviation <= tol,
        })
    return rows


def run_regress(baseline_path: str = DEFAULT_JSON_PATH,
                nodes: Optional[Sequence[int]] = None,
                cases: Optional[Sequence[str]] = None,
                tolerances: Optional[Dict[str, Any]] = None,
                costs: HostCosts = DEFAULT_HOST_COSTS) -> Dict[str, Any]:
    """Re-run selected baseline points and diff them.

    ``nodes`` defaults to the CI-sized ladder (intersected with what the
    baseline actually recorded); ``None`` never silently compares an
    empty set — a baseline without matching points raises.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    tolerances = dict(tolerances or DEFAULT_TOLERANCES)
    recorded = {(p["app"], p["nodes"]): p for p in baseline["sweep"]}
    want_nodes = set(nodes if nodes is not None else QUICK_NODES)
    selected = sorted(
        key for key in recorded
        if key[1] in want_nodes and (cases is None or key[0] in cases))
    if not selected:
        raise ValueError(
            f"no baseline points match nodes={sorted(want_nodes)} "
            f"cases={cases!r} in {baseline_path}")
    rows: List[Dict[str, Any]] = []
    explanations: List[Dict[str, Any]] = []
    for app, n in selected:
        measured = sweep_point(app, n, costs=costs)
        point_rows = compare_point(recorded[(app, n)], measured, tolerances)
        rows.extend(point_rows)
        if not all(r["ok"] for r in point_rows):
            explanations.append(
                _explain_failure(recorded[(app, n)], measured, app, n))
    return {
        "baseline_path": baseline_path,
        "points": len(selected),
        "comparisons": rows,
        "failures": [r for r in rows if not r["ok"]],
        "explanations": explanations,
        "ok": all(r["ok"] for r in rows),
    }


def _explain_failure(recorded: Dict[str, Any], measured: Dict[str, Any],
                     app: str, nodes: Any) -> Dict[str, Any]:
    """Root-cause one drifted point via the causal run-diff explainer.

    A drifted gate should print *why*, not just a percentage — when both
    the baseline point and the fresh measurement carry a
    ``glasswing-causal/1`` profile, :func:`repro.obs.diff.explain_diff`
    attributes the delta to ranked (stage, wait-class, resource) causes.
    Baselines recorded before causal capture existed get a note instead.
    """
    entry: Dict[str, Any] = {"app": app, "nodes": nodes}
    if not isinstance(recorded.get("causal"), dict):
        entry["note"] = ("baseline point has no causal profile; "
                         "regenerate the baseline to enable root-cause "
                         "explanations")
        return entry
    try:
        entry["diff"] = explain_diff(recorded, measured)
    except ValueError as exc:
        entry["note"] = f"explain-diff failed: {exc}"
    return entry


def run_service_regress(baseline_path: str = SERVICE_JSON_PATH,
                        tolerances: Optional[Dict[str, Any]] = None,
                        costs: HostCosts = DEFAULT_HOST_COSTS
                        ) -> Dict[str, Any]:
    """Re-run every recorded service-replay point and diff it.

    Each baseline point records its own trace shape (``n_jobs``,
    ``trace_seed``) so the replay regenerates the identical arrival
    trace; the comparison rows label points ``service:<arbiter>`` with
    the job count in the ``nodes`` column.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    tolerances = dict(tolerances or SERVICE_TOLERANCES)
    points = baseline["points"]
    if not points:
        raise ValueError(f"{baseline_path} records no service points")
    rows: List[Dict[str, Any]] = []
    for recorded in points:
        measured = service_point(recorded["arbiter"],
                                 n_jobs=recorded["n_jobs"],
                                 seed=recorded["trace_seed"], costs=costs)
        label = {"app": f"service:{recorded['arbiter']}",
                 "nodes": recorded["n_jobs"]}
        rows.extend(compare_point({**recorded, **label},
                                  {**measured, **label}, tolerances))
    return {
        "baseline_path": baseline_path,
        "points": len(points),
        "comparisons": rows,
        "failures": [r for r in rows if not r["ok"]],
        "ok": all(r["ok"] for r in rows),
    }


def run_dag_regress(baseline_path: str = DAG_JSON_PATH,
                    tolerances: Optional[Dict[str, Any]] = None,
                    costs: HostCosts = DEFAULT_HOST_COSTS) -> Dict[str, Any]:
    """Re-run every recorded DAG/iterative point and diff it.

    Each baseline point records its own shape (point/edge/value counts
    and the round budget), so the replay reproduces the identical run;
    everything else (seeds, cluster, scheduler) is pinned inside
    :mod:`repro.bench.dag`.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    points = baseline["points"]
    if not points:
        raise ValueError(f"{baseline_path} records no dag points")
    rows: List[Dict[str, Any]] = []
    for recorded in points:
        app = recorded["app"]
        if app not in _DAG_SHAPE_KEYS:
            raise ValueError(f"{baseline_path}: unknown dag point {app!r}")
        shape = {key: recorded[key] for key in _DAG_SHAPE_KEYS[app]}
        measured = dag_point(app, costs=costs, **shape)
        tols = {**(tolerances or DAG_TOLERANCES),
                **_DAG_EXTRA_TOLERANCES[app]}
        rows.extend(compare_point(recorded, measured, tols))
    return {
        "baseline_path": baseline_path,
        "points": len(points),
        "comparisons": rows,
        "failures": [r for r in rows if not r["ok"]],
        "ok": all(r["ok"] for r in rows),
    }


def run_elastic_regress(baseline_path: str = ELASTIC_JSON_PATH,
                        tolerances: Optional[Dict[str, Any]] = None,
                        costs: HostCosts = DEFAULT_HOST_COSTS
                        ) -> Dict[str, Any]:
    """Re-run every recorded membership chaos point and diff it.

    Each point replays its own static baseline first (the chaos
    schedule's event times are derived from the measured static map
    extent), so the comparison covers both runs; everything else —
    seeds, cluster, scheduler, the failover delay — is pinned inside
    :mod:`repro.bench.elastic`.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    points = baseline["points"]
    if not points:
        raise ValueError(f"{baseline_path} records no elastic points")
    rows: List[Dict[str, Any]] = []
    for recorded in points:
        app = recorded["app"]
        if app not in _ELASTIC_SHAPE_KEYS:
            raise ValueError(
                f"{baseline_path}: unknown elastic point {app!r}")
        shape = {key: recorded[key] for key in _ELASTIC_SHAPE_KEYS[app]}
        measured = elastic_point(app, costs=costs, **shape)
        tols = {**(tolerances or ELASTIC_TOLERANCES),
                **_ELASTIC_EXTRA_TOLERANCES[app]}
        rows.extend(compare_point(recorded, measured, tols))
    return {
        "baseline_path": baseline_path,
        "points": len(points),
        "comparisons": rows,
        "failures": [r for r in rows if not r["ok"]],
        "ok": all(r["ok"] for r in rows),
    }


def _print_table(result: Dict[str, Any], out=None) -> None:
    out = out if out is not None else sys.stdout
    header = (f"{'app':<18} {'nodes':>5} {'metric':<21} {'baseline':>14} "
              f"{'measured':>14} {'deviation':>10} {'tol':>8}  verdict")
    print(header, file=out)
    print("-" * len(header), file=out)
    for r in result["comparisons"]:
        tol = (f"{r['tolerance']:.0%}" if r["kind"] == "rel"
               else f"{r['tolerance']:g}")
        dev = (f"{r['deviation']:.2%}" if r["kind"] == "rel"
               else f"{r['deviation']:.4f}")
        print(f"{r['app']:<18} {r['nodes']:>5} {r['metric']:<21} "
              f"{r['baseline']:>14.6g} {r['measured']:>14.6g} "
              f"{dev:>10} {tol:>8}  "
              f"{'ok' if r['ok'] else 'REGRESSION'}", file=out)
    verdict = "PASS" if result["ok"] else (
        f"FAIL ({len(result['failures'])} regression(s))")
    print(f"\n{result['points']} point(s) replayed against "
          f"{result['baseline_path']}: {verdict}", file=out)
    for entry in result.get("explanations", []):
        print(f"\nroot cause: {entry['app']} @ {entry['nodes']} node(s)",
              file=out)
        if "diff" in entry:
            print(render_diff(entry["diff"]), file=out)
        else:
            print(f"  ({entry.get('note', 'no explanation available')})",
                  file=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Replay the scaling sweep and diff it against the "
                    "committed baseline; exits 1 on regression.")
    parser.add_argument("--baseline", default=DEFAULT_JSON_PATH,
                        help="baseline JSON (default: %(default)s)")
    parser.add_argument("--nodes", type=int, action="append", default=None,
                        help="cluster size to replay (repeatable; default: "
                             "the CI quick ladder)")
    parser.add_argument("--case", action="append", default=None,
                        dest="cases",
                        choices=["wordcount", "terasort", "wordcount-skew"],
                        help="app to replay (repeatable; default: all)")
    parser.add_argument("--full", action="store_true",
                        help="replay every node count the baseline records")
    parser.add_argument("--tol-elapsed", type=float, default=None,
                        metavar="REL", help="relative tolerance on elapsed_s")
    parser.add_argument("--tol-bytes", type=float, default=None,
                        metavar="REL",
                        help="relative tolerance on network_bytes")
    parser.add_argument("--tol-overlap", type=float, default=None,
                        metavar="ABS",
                        help="absolute tolerance on the map overlap factor")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the comparison result as JSON")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        dest="json_out",
                        help="machine-readable result (sorted keys, parent "
                             "dirs created); same payload as --json — CI "
                             "uploads this on failure")
    parser.add_argument("--service-baseline", default=None, metavar="FILE",
                        help="service-replay baseline to gate (default: "
                             f"{SERVICE_JSON_PATH} when present)")
    parser.add_argument("--skip-service", action="store_true",
                        help="skip the multi-job service replay")
    parser.add_argument("--dag-baseline", default=None, metavar="FILE",
                        help="DAG/iterative baseline to gate (default: "
                             f"{DAG_JSON_PATH} when present)")
    parser.add_argument("--skip-dag", action="store_true",
                        help="skip the DAG/iterative replay")
    parser.add_argument("--elastic-baseline", default=None, metavar="FILE",
                        help="membership chaos baseline to gate (default: "
                             f"{ELASTIC_JSON_PATH} when present)")
    parser.add_argument("--skip-elastic", action="store_true",
                        help="skip the membership chaos replay")
    args = parser.parse_args(argv)

    tolerances = dict(DEFAULT_TOLERANCES)
    if args.tol_elapsed is not None:
        tolerances["elapsed_s"] = ("rel", args.tol_elapsed)
    if args.tol_bytes is not None:
        tolerances["network_bytes"] = ("rel", args.tol_bytes)
    if args.tol_overlap is not None:
        tolerances["overlap_factor"] = ("abs", args.tol_overlap)
    nodes: Optional[Sequence[int]] = args.nodes
    if args.full:
        with open(args.baseline, encoding="utf-8") as fh:
            nodes = sorted({p["nodes"]
                            for p in json.load(fh)["sweep"]})
    try:
        result = run_regress(args.baseline, nodes=nodes, cases=args.cases,
                             tolerances=tolerances)
    except (OSError, ValueError, KeyError) as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2
    _print_table(result)

    service_result = None
    if not args.skip_service:
        import os
        service_baseline = args.service_baseline or SERVICE_JSON_PATH
        if args.service_baseline is None \
                and not os.path.exists(service_baseline):
            print(f"(no {service_baseline}; service replay skipped)")
        else:
            try:
                service_result = run_service_regress(service_baseline)
            except (OSError, ValueError, KeyError) as exc:
                print(f"regress: {exc}", file=sys.stderr)
                return 2
            print()
            _print_table(service_result)

    dag_result = None
    if not args.skip_dag:
        import os
        dag_baseline = args.dag_baseline or DAG_JSON_PATH
        if args.dag_baseline is None and not os.path.exists(dag_baseline):
            print(f"(no {dag_baseline}; dag replay skipped)")
        else:
            try:
                dag_result = run_dag_regress(dag_baseline)
            except (OSError, ValueError, KeyError) as exc:
                print(f"regress: {exc}", file=sys.stderr)
                return 2
            print()
            _print_table(dag_result)

    elastic_result = None
    if not args.skip_elastic:
        import os
        elastic_baseline = args.elastic_baseline or ELASTIC_JSON_PATH
        if args.elastic_baseline is None \
                and not os.path.exists(elastic_baseline):
            print(f"(no {elastic_baseline}; elastic replay skipped)")
        else:
            try:
                elastic_result = run_elastic_regress(elastic_baseline)
            except (OSError, ValueError, KeyError) as exc:
                print(f"regress: {exc}", file=sys.stderr)
                return 2
            print()
            _print_table(elastic_result)

    if args.json or args.json_out:
        from repro.obs.telemetry import ensure_parent_dir
        payload = dict(result)
        extras = {"service": service_result, "dag": dag_result,
                  "elastic": elastic_result}
        if any(v is not None for v in extras.values()):
            payload = {"scaling": result,
                       "ok": result["ok"] and all(
                           v is None or v["ok"] for v in extras.values())}
            for key, value in extras.items():
                if value is not None:
                    payload[key] = value
        for path in (args.json, args.json_out):
            if not path:
                continue
            ensure_parent_dir(path)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
    ok = result["ok"] \
        and (service_result is None or service_result["ok"]) \
        and (dag_result is None or dag_result["ok"]) \
        and (elastic_result is None or elastic_result["ok"])
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
