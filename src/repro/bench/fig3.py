"""Figure 3: compute-bound applications (K-Means and Matrix Multiply).

Panels and their shape checks:

* 3(a) KM on CPU — "Glasswing is superior to Hadoop, comparable to the
  performance gains of the I/O-bound applications."
* 3(b) MM on CPU — "performance gains over Hadoop are confirmed";
  compute-bound behaviour on the CPU.
* 3(c) KM on GPU — GTX480 gives a large single-node gain over Hadoop
  ("in line with the greater compute power of the GPU"); the adapted
  GPMR code "indeed is inefficient for 4096 centers".
* 3(d) MM on GPU — "MM is I/O-bound on the GPU when combined with HDFS,
  unlike its compute-bound behavior on the CPU"; local FS is faster;
  "GPMR's MM is outperformed by the Glasswing GPU implementation".
* 3(e) KM with few centers, local FS — I/O-dominant: GPMR's total is the
  *sum* of I/O and compute while Glasswing's is roughly their max, so
  "GPMR's total time is about 1.5x Glasswing's for all cluster sizes".
  (Note: at our scale the k=16 I/O:compute ratio is more extreme than
  the paper's; k=128 reproduces the paper's io ~ 2x compute operating
  point, and both rows are reported.)
"""

from __future__ import annotations

from typing import Sequence

from repro.apps import KMeansApp
from repro.baselines.gpmr import GPMRConfig, run_gpmr
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind, KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table, speedups

__all__ = ["km_cpu_report", "mm_cpu_report", "km_gpu_report",
           "mm_gpu_report", "km_overlap_report", "run_all",
           "KM_NODES", "MM_NODES"]

KM_NODES = (1, 2, 4, 8, 16)
MM_NODES = (1, 2, 4)
OVERLAP_NODES = (1, 2, 4)
KM_CHUNK = 256 * KiB
#: Hadoop's tuned split size for KM: small enough that every map slot of
#: the largest cluster gets work (the paper performs exactly this sweep:
#: "a parameter sweep on the cluster to determine the optimal number of
#: mappers and reducers for each Hadoop application")
KM_HADOOP_CHUNK = 16 * KiB
#: GPMR's KM adapted beyond its small-center design point (Fig 3c): the
#: unmodified kernel keeps per-center state in registers/shared memory,
#: which the paper's "two small adaptations" give up.
GPMR_LARGE_K_PENALTY = 8.0


def km_cpu_report(nodes: Sequence[int] = KM_NODES) -> ExperimentReport:
    """Figure 3(a): K-Means (4096 centers) on the CPU, HDFS."""
    inputs = workloads.km_points()
    report = ExperimentReport(
        experiment="Figure 3(a) — KM (4096 centers) on CPU (HDFS)",
        paper_claim="Glasswing superior to Hadoop, comparable to the "
                    "I/O-bound apps' gains (~2x)")
    table = Table("KM CPU execution time and speedup",
                  ["nodes", "hadoop_s", "glasswing_s", "ratio",
                   "glasswing_speedup"])
    hd_times, gw_times = [], []
    for n in nodes:
        cluster = das4_cluster(nodes=n)
        hd = run_hadoop(workloads.km_app_paper(), inputs, cluster,
                        HadoopConfig(chunk_size=KM_HADOOP_CHUNK))
        gw = run_glasswing(workloads.km_app_paper(), inputs, cluster,
                           JobConfig(chunk_size=KM_CHUNK))
        hd_times.append(hd.job_time)
        gw_times.append(gw.job_time)
    for i, n in enumerate(nodes):
        table.add_row(nodes=n, hadoop_s=hd_times[i], glasswing_s=gw_times[i],
                      ratio=hd_times[i] / gw_times[i],
                      glasswing_speedup=speedups(gw_times)[i])
    report.tables.append(table)
    ratios = table.column("ratio")
    report.check("glasswing ahead at every node count",
                 all(r > 1.1 for r in ratios),
                 f"ratios {['%.2f' % r for r in ratios]}")
    report.check("gain in the I/O-bound band (~1.5-3.5x)",
                 all(1.2 <= r <= 3.5 for r in ratios))
    report.check("glasswing scales", speedups(gw_times)[-1] > len(nodes) / 2.5)
    return report


def mm_cpu_report(nodes: Sequence[int] = MM_NODES) -> ExperimentReport:
    """Figure 3(b): Matrix Multiply on the CPU, HDFS."""
    inputs, _a, _b = workloads.mm_input()
    chunk = workloads.mm_app_paper().record_format.record_size  # 1 task/split
    report = ExperimentReport(
        experiment="Figure 3(b) — MM on CPU (HDFS)",
        paper_claim="performance gains over Hadoop confirmed; "
                    "compute-bound on the CPU")
    table = Table("MM CPU execution time",
                  ["nodes", "hadoop_s", "glasswing_s", "ratio"])
    for n in nodes:
        cluster = das4_cluster(nodes=n)
        hd = run_hadoop(workloads.mm_app_paper(), inputs, cluster,
                        HadoopConfig(chunk_size=chunk))
        gw = run_glasswing(workloads.mm_app_paper(), inputs, cluster,
                           JobConfig(chunk_size=chunk))
        table.add_row(nodes=n, hadoop_s=hd.job_time, glasswing_s=gw.job_time,
                      ratio=hd.job_time / gw.job_time)
        if n == nodes[0]:
            kernel = gw.metrics.stage_time("map", "kernel", "node0")
            input_t = gw.metrics.stage_time("map", "input", "node0")
            report.check("compute-bound on CPU (kernel >= input stage)",
                         kernel >= input_t,
                         f"kernel {kernel:.3f}s vs input {input_t:.3f}s")
    report.tables.append(table)
    ratios = table.column("ratio")
    report.check("glasswing ahead at every node count",
                 all(r > 1.1 for r in ratios),
                 f"ratios {['%.2f' % r for r in ratios]}")
    return report


def km_gpu_report(nodes: Sequence[int] = KM_NODES) -> ExperimentReport:
    """Figure 3(c): K-Means (4096 centers) with GPU acceleration."""
    inputs = workloads.km_points()
    report = ExperimentReport(
        experiment="Figure 3(c) — KM (4096 centers) on GPU",
        paper_claim="single-node GPU run is ~20x Hadoop; adapted GPMR is "
                    "inefficient for 4096 centers")
    table = Table("KM GPU execution time",
                  ["nodes", "hadoop_cpu_s", "gw_gpu_hdfs_s",
                   "gw_gpu_local_s", "gpmr_adapted_s"])
    for n in nodes:
        cluster = das4_cluster(nodes=n, gpu=True)
        hd = run_hadoop(workloads.km_app_paper(), inputs, cluster,
                        HadoopConfig(chunk_size=KM_HADOOP_CHUNK))
        gw_hdfs = run_glasswing(workloads.km_app_paper(), inputs, cluster,
                                JobConfig(chunk_size=KM_CHUNK,
                                          device=DeviceKind.GPU))
        gw_local = run_glasswing(workloads.km_app_paper(), inputs, cluster,
                                 JobConfig(chunk_size=KM_CHUNK,
                                           device=DeviceKind.GPU,
                                           storage="local"))
        gp = run_gpmr(workloads.km_app_paper(), inputs, cluster,
                      GPMRConfig(chunk_size=KM_CHUNK,
                                 compute_factor=GPMR_LARGE_K_PENALTY))
        table.add_row(nodes=n, hadoop_cpu_s=hd.job_time,
                      gw_gpu_hdfs_s=gw_hdfs.job_time,
                      gw_gpu_local_s=gw_local.job_time,
                      gpmr_adapted_s=gp.job_time)
    report.tables.append(table)
    gain = table.column("hadoop_cpu_s")[0] / table.column("gw_gpu_hdfs_s")[0]
    report.check("single-node GPU gain over Hadoop is an order of magnitude",
                 10 <= gain <= 60, f"measured {gain:.1f}x")
    report.check(
        "adapted GPMR inefficient at 4096 centers (slower than GW-GPU)",
        all(gp > 2 * gw for gp, gw in zip(table.column("gpmr_adapted_s"),
                                          table.column("gw_gpu_local_s"))))
    return report


def mm_gpu_report(nodes: Sequence[int] = MM_NODES) -> ExperimentReport:
    """Figure 3(d): Matrix Multiply with GPU acceleration."""
    inputs, _a, _b = workloads.mm_input()
    chunk = workloads.mm_app_paper().record_format.record_size
    report = ExperimentReport(
        experiment="Figure 3(d) — MM on GPU",
        paper_claim="MM is I/O-bound on the GPU when combined with HDFS; "
                    "local FS shows how HDFS influences performance; "
                    "GPMR's MM is outperformed by Glasswing")
    table = Table("MM GPU execution time",
                  ["nodes", "gw_gpu_hdfs_s", "gw_gpu_local_s", "gpmr_s"])
    for n in nodes:
        cluster = das4_cluster(nodes=n, gpu=True)
        gw_hdfs = run_glasswing(workloads.mm_app_paper(), inputs, cluster,
                                JobConfig(chunk_size=chunk,
                                          device=DeviceKind.GPU))
        gw_local = run_glasswing(workloads.mm_app_paper(), inputs, cluster,
                                 JobConfig(chunk_size=chunk,
                                           device=DeviceKind.GPU,
                                           storage="local"))
        gp = run_gpmr(workloads.mm_app_paper(), inputs, cluster,
                      GPMRConfig(chunk_size=chunk, skip_input_io=True,
                                 skip_reduce=True))
        table.add_row(nodes=n, gw_gpu_hdfs_s=gw_hdfs.job_time,
                      gw_gpu_local_s=gw_local.job_time, gpmr_s=gp.job_time)
        if n == nodes[0]:
            kernel = gw_hdfs.metrics.stage_time("map", "kernel", "node0")
            input_t = gw_hdfs.metrics.stage_time("map", "input", "node0")
            report.check("I/O-bound on GPU with HDFS (input > kernel stage)",
                         input_t > kernel,
                         f"input {input_t:.3f}s vs kernel {kernel:.3f}s")
    report.tables.append(table)
    report.check("local FS faster than HDFS at every node count",
                 all(l < h for l, h in zip(table.column("gw_gpu_local_s"),
                                           table.column("gw_gpu_hdfs_s"))))
    report.notes.append(
        "GPMR numbers exclude input generation and aggregate no partial "
        "tiles (its published methodology); Glasswing still wins on the "
        "full pipeline at every node count: "
        + str(["%.2f" % (g / l) for g, l in zip(
            table.column("gpmr_s"), table.column("gw_gpu_local_s"))]))
    return report


def km_overlap_report(nodes: Sequence[int] = OVERLAP_NODES) -> ExperimentReport:
    """Figure 3(e): KM with few centers on the local FS — overlap vs sum."""
    inputs = workloads.km_points()
    report = ExperimentReport(
        experiment="Figure 3(e) — KM (few centers) on GPU (local FS)",
        paper_claim="I/O-dominant operating point: GPMR's total = I/O + "
                    "compute; Glasswing's ~ max(I/O, compute); GPMR ~1.5x "
                    "Glasswing at every cluster size")
    for k, label in ((16, "k=16 (paper's unmodified GPMR)"),
                     (128, "k=128 (the paper's io~2x-compute point)")):
        centers = workloads.km_centers(k)
        table = Table(f"KM {label}",
                      ["nodes", "gpmr_io_s", "gpmr_compute_s",
                       "gpmr_total_s", "glasswing_s", "ratio"])
        for n in nodes:
            cluster = das4_cluster(nodes=n, gpu=True)
            gp = run_gpmr(KMeansApp(centers), inputs, cluster,
                          GPMRConfig(chunk_size=KM_CHUNK))
            gw = run_glasswing(KMeansApp(centers), inputs, cluster,
                               JobConfig(chunk_size=KM_CHUNK,
                                         device=DeviceKind.GPU,
                                         storage="local"))
            table.add_row(nodes=n, gpmr_io_s=gp.io_time,
                          gpmr_compute_s=gp.compute_time,
                          gpmr_total_s=gp.job_time, glasswing_s=gw.job_time,
                          ratio=gp.job_time / gw.job_time)
        report.tables.append(table)
        ratios = table.column("ratio")
        report.check(
            f"{label}: glasswing wins at every cluster size",
            all(r > 1.0 for r in ratios),
            f"ratios {['%.2f' % r for r in ratios]}")
    return report


def run_all() -> list:
    return [km_cpu_report(), mm_cpu_report(), km_gpu_report(),
            mm_gpu_report(), km_overlap_report()]
