"""Shared experiment infrastructure: tables, shape checks, reports.

The harness separates three things the paper mixes in each figure:

* the **numbers** we measured (a :class:`Table` of rows);
* the **paper's claim** about those numbers (free text, quoted);
* the **shape checks** — machine-verified predicates asserting that the
  claim's *shape* (who wins, by roughly what factor, where crossovers
  fall) holds in the reproduction.  Benchmarks fail when a shape check
  fails, so regressions in the model are caught like any other bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Table", "ShapeCheck", "ExperimentReport", "fmt_seconds",
           "speedups", "parallel_efficiency"]


def fmt_seconds(value: Any) -> str:
    """Human-scaled rendering of a numeric cell (ints stay ints)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


class Table:
    """A titled grid of measurement rows with aligned ASCII rendering."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **cells: Any) -> None:
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(cells)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        widths = {
            c: max(len(c), *(len(fmt_seconds(r.get(c, ""))) for r in self.rows))
            if self.rows else len(c)
            for c in self.columns
        }
        sep = "  "
        header = sep.join(c.rjust(widths[c]) for c in self.columns)
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(sep.join(
                fmt_seconds(row.get(c, "")).rjust(widths[c])
                for c in self.columns))
        lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class ShapeCheck:
    """One machine-verified property of an experiment's results."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail
                                          else "")


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment: str                 # e.g. "Figure 2(b)"
    paper_claim: str                # quoted/summarised claim from the paper
    tables: List[Table] = field(default_factory=list)
    checks: List[ShapeCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    timelines: Dict[str, Any] = field(default_factory=dict)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(name, bool(passed), detail))

    def attach_timeline(self, label: str, timeline: Any) -> None:
        """Keep a run's timeline so :meth:`export_traces` can dump it."""
        self.timelines[label] = timeline

    def export_traces(self, directory: str) -> List[str]:
        """Write one Chrome trace per attached timeline into ``directory``.

        File names are ``<experiment>-<label>.trace.json`` with the
        experiment and label slugs lower-cased and filesystem-safe.
        """
        from pathlib import Path
        from repro.obs import write_chrome_trace

        def slug(text: str) -> str:
            return "".join(c if c.isalnum() or c in "-_." else "-"
                           for c in text.lower()).strip("-")

        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        written = []
        for label, timeline in self.timelines.items():
            path = out / f"{slug(self.experiment)}-{slug(label)}.trace.json"
            written.append(write_chrome_trace(timeline, str(path)))
        return written

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed_checks(self) -> List[ShapeCheck]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [f"== {self.experiment} ==",
                 f"paper: {self.paper_claim}", ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for check in self.checks:
            lines.append(str(check))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def assert_shape(self) -> None:
        """Raise if any shape check failed (used by the pytest benches)."""
        failed = self.failed_checks()
        if failed:
            raise AssertionError(
                f"{self.experiment}: shape checks failed: "
                + "; ".join(str(c) for c in failed))

    def __str__(self) -> str:
        return self.render()


def speedups(times: Sequence[float]) -> List[float]:
    """Speedup of each entry relative to the first (the 1-node run)."""
    if not times:
        return []
    base = times[0]
    return [base / t if t else float("inf") for t in times]


def parallel_efficiency(nodes: Sequence[int], times: Sequence[float]) -> float:
    """Efficiency at the largest node count, normalised to the smallest."""
    if len(times) < 2:
        return 1.0
    n0, n1 = nodes[0], nodes[-1]
    return (times[0] / times[-1]) / (n1 / n0)
