"""§IV-C: vertical scalability across accelerators.

The paper's setup lists K20m (Type-2 nodes), a GTX680 node and Xeon Phi
nodes; §IV announces "vertical scalability, where Glasswing performance
with different accelerators is considered" and §IV-A verifies "consistent
scaling results" for KM and MM on the K20m.  (The provided text is
truncated inside §IV-B, so this module reproduces the device comparison
from the hardware inventory and the section's announcement.)

Shape checks: every accelerator beats the host CPU on the compute-bound
apps; device ranking follows effective capability (K20m >= GTX680 >=
GTX480); scaling on Type-2/K20m nodes is consistent with Type-1/GTX480.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.apps import KMeansApp
from repro.core import JobConfig, run_glasswing
from repro.hw import presets
from repro.hw.specs import ClusterSpec, DeviceKind, KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table, speedups

__all__ = ["report", "DEVICES"]

CHUNK = 256 * KiB

DEVICES = {
    "CPU (2x E5620)": (presets.type1_node(), DeviceKind.CPU),
    "GTX480": (presets.type1_node(gpu=True), DeviceKind.GPU),
    "GTX680": (presets.type1_node(accelerator=presets.GTX680),
               DeviceKind.GPU),
    "K20m": (presets.type2_node(), DeviceKind.GPU),
    "Xeon Phi": (presets.type1_node(accelerator=presets.XEON_PHI),
                 DeviceKind.ACCELERATOR),
}


def _cluster_of(node_spec, n: int) -> ClusterSpec:
    return ClusterSpec(name=f"vertical-{node_spec.name}-{n}",
                       nodes=tuple(node_spec for _ in range(n)),
                       network=presets.QDR_IB)


def report(nodes: Sequence[int] = (1, 2, 4)) -> ExperimentReport:
    rep = ExperimentReport(
        experiment="§IV-C — vertical scalability: KM across compute devices",
        paper_claim="the same application code runs on CPUs, NVIDIA GPUs "
                    "and the Xeon Phi; accelerators give consistent "
                    "scaling (verified on the K20m in §IV-A)")
    inputs = workloads.km_points()
    single: Dict[str, float] = {}
    table = Table("KM (4096 centers) across devices",
                  ("device",) + tuple(f"{n}_nodes_s" for n in nodes)
                  + ("speedup_max",))
    per_device_scaling: Dict[str, list] = {}
    for name, (node_spec, kind) in DEVICES.items():
        times = []
        for n in nodes:
            res = run_glasswing(
                workloads.km_app_paper(), inputs, _cluster_of(node_spec, n),
                JobConfig(chunk_size=CHUNK, storage="local", device=kind))
            times.append(res.job_time)
        single[name] = times[0]
        per_device_scaling[name] = times
        table.add_row(device=name, speedup_max=speedups(times)[-1],
                      **{f"{n}_nodes_s": t for n, t in zip(nodes, times)})
    rep.tables.append(table)

    rep.check("every accelerator beats the host CPU",
              all(single[d] < single["CPU (2x E5620)"]
                  for d in DEVICES if d != "CPU (2x E5620)"),
              str({d: round(t, 3) for d, t in single.items()}))
    rep.check("device ranking follows capability (K20m <= GTX680 <= GTX480)",
              single["K20m"] <= single["GTX680"] * 1.05
              and single["GTX680"] <= single["GTX480"] * 1.05)
    gtx480 = speedups(per_device_scaling["GTX480"])[-1]
    k20m = speedups(per_device_scaling["K20m"])[-1]
    rep.check("K20m scaling consistent with GTX480 (paper §IV-A)",
              abs(k20m - gtx480) <= 0.5 * max(gtx480, k20m),
              f"GTX480 {gtx480:.2f}x vs K20m {k20m:.2f}x")
    return rep
