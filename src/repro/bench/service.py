"""Trace-replay bench of the multi-job service layer.

Replays a seeded synthetic arrival trace of mixed WordCount / TeraSort /
KMeans jobs (see :func:`repro.service.synthetic_trace`) through a
:class:`~repro.service.JobServer` on a small shared cluster, once per
cross-job arbiter, and records service-level metrics in *virtual* time:

* job **throughput** (completed jobs per simulated second of makespan);
* job **latency** percentiles (p50/p95/p99, submit -> finish);
* queue/admission peaks and the buffer-slot leak audit.

Everything the simulation produces is deterministic — the trace is
seeded, materialisation is seeded per request, and the simulator breaks
ties on monotonic sequence numbers — so the recorded numbers in
``BENCH_service.json`` replay at 0% drift and ``repro.bench.regress``
gates them exactly like the scaling sweep.  Wall-clock is recorded for
orientation but never gated.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Sequence

from repro.core import JobConfig
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.sched import ARBITER_NAMES
from repro.hw.presets import das4_cluster
from repro.obs.telemetry import ensure_parent_dir
from repro.service import JobServer, ServicePolicy, synthetic_trace

from repro.bench.harness import ExperimentReport, Table

__all__ = ["report", "service_point", "TRACE_JOBS", "QUICK_JOBS",
           "TRACE_SEED", "MEAN_INTERARRIVAL", "SERVICE_NODES",
           "DEFAULT_JSON_PATH", "QUICK_WALL_BUDGET_S"]

#: full trace length (the committed baseline) and the CI smoke length
TRACE_JOBS = 200
QUICK_JOBS = 40
#: seed of the synthetic arrival trace — part of the baseline contract
TRACE_SEED = 7
#: mean Poisson interarrival (virtual seconds); jobs take ~1e-2 s on the
#: bench cluster, so arrivals outpace service and the queue fills
MEAN_INTERARRIVAL = 0.002
#: shared-cluster size; service jobs are small, contention is the point
SERVICE_NODES = 4
DEFAULT_JSON_PATH = "BENCH_service.json"

#: admission knobs of the bench: the queue is sized to admit the whole
#: trace (the acceptance bar is "completes >= 200 mixed jobs", so the
#: bench must never reject), four dispatch slots share the cluster
_QUEUE_CAPACITY = 512
_MAX_RUNNING = 4
#: chunk size for the tiny service jobs (16-64 KiB inputs)
_CHUNK = 8 * 1024

#: wall-clock budget for the CI smoke (both arbiters at QUICK_JOBS,
#: including trace materialisation).  Recorded locally well under 20 s;
#: generous headroom for slower CI machines.
QUICK_WALL_BUDGET_S = 120.0


def service_point(arbiter: str, n_jobs: int = TRACE_JOBS,
                  seed: int = TRACE_SEED,
                  costs: HostCosts = DEFAULT_HOST_COSTS) -> Dict[str, Any]:
    """Replay the trace under one arbiter; returns its JSON record.

    The scheduler is pinned to ``static-affinity`` (as in the scaling
    sweep) so the committed baseline never depends on the session's
    ``$REPRO_SCHEDULER`` default.
    """
    requests = synthetic_trace(n_jobs, seed=seed,
                               mean_interarrival=MEAN_INTERARRIVAL)
    policy = ServicePolicy(queue_capacity=_QUEUE_CAPACITY,
                           max_running=_MAX_RUNNING, arbiter=arbiter)
    config = JobConfig(chunk_size=_CHUNK, partitions_per_node=1,
                       scheduler="static-affinity")
    server = JobServer(das4_cluster(nodes=SERVICE_NODES), policy=policy,
                       config=config, costs=costs)
    for request in requests:
        server.submit(request)
    wall0 = time.perf_counter()
    result = server.run()
    wall = time.perf_counter() - wall0
    pct = result.latency_percentiles()
    return {
        "arbiter": arbiter,
        "n_jobs": n_jobs,
        "trace_seed": seed,
        "nodes": SERVICE_NODES,
        "max_running": policy.max_running,
        "queue_capacity": policy.queue_capacity,
        "completed": result.counters["completed"],
        "rejected": result.counters["rejected"],
        "cancelled": result.counters["cancelled"],
        "makespan_s": result.makespan,
        "throughput_jobs_per_s": result.throughput,
        "latency_p50_s": pct["p50"],
        "latency_p95_s": pct["p95"],
        "latency_p99_s": pct["p99"],
        "peak_running": result.peak_running,
        "peak_queue_depth": result.peak_queue_depth,
        "leaked_buffer_slots": result.leaked_buffer_slots,
        "wall_s": wall,
    }


def report(n_jobs: int = TRACE_JOBS,
           json_path: Optional[str] = DEFAULT_JSON_PATH,
           arbiters: Sequence[str] = ARBITER_NAMES) -> ExperimentReport:
    """Run the trace replay per arbiter; emit ``BENCH_service.json``."""
    rep = ExperimentReport(
        experiment=f"Service trace replay — {n_jobs} mixed jobs through "
                   f"admission control on {SERVICE_NODES} shared nodes",
        paper_claim="a multi-job service multiplexes the simulated "
                    "cluster deterministically: queue-based load-leveling "
                    "absorbs the arrival burst and cross-job arbitration "
                    "dispatches onto shared nodes with zero buffer-slot "
                    "leaks")

    points = [service_point(arbiter, n_jobs) for arbiter in arbiters]

    table = Table(f"trace replay ({n_jobs} jobs, {_MAX_RUNNING} slots)",
                  ["arbiter", "completed", "makespan_s", "jobs_per_s",
                   "p50_s", "p95_s", "p99_s", "peak_q", "wall_s"])
    for p in points:
        table.add_row(arbiter=p["arbiter"], completed=p["completed"],
                      makespan_s=p["makespan_s"],
                      jobs_per_s=p["throughput_jobs_per_s"],
                      p50_s=p["latency_p50_s"], p95_s=p["latency_p95_s"],
                      p99_s=p["latency_p99_s"],
                      peak_q=p["peak_queue_depth"], wall_s=p["wall_s"])
    rep.tables.append(table)

    rep.check(f"every arbiter completes all {n_jobs} jobs",
              all(p["completed"] == n_jobs and p["rejected"] == 0
                  for p in points),
              "; ".join(f"{p['arbiter']} {p['completed']}/{p['n_jobs']}"
                        for p in points))
    rep.check("no point leaked buffer slots",
              all(p["leaked_buffer_slots"] == 0 for p in points))
    rep.check("latency percentiles are ordered (p50 <= p95 <= p99 <= "
              "makespan)",
              all(p["latency_p50_s"] <= p["latency_p95_s"]
                  <= p["latency_p99_s"] <= p["makespan_s"]
                  for p in points))
    rep.check(f"every point saturates the {_MAX_RUNNING} dispatch slots",
              all(p["peak_running"] == _MAX_RUNNING for p in points),
              "arrivals outpace service, so the slots must fill")

    if json_path:
        payload = {
            "generated_by": "python -m repro.bench service",
            "trace_seed": TRACE_SEED,
            "mean_interarrival_s": MEAN_INTERARRIVAL,
            "nodes": SERVICE_NODES,
            "points": points,
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in rep.checks],
        }
        ensure_parent_dir(json_path)
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        rep.notes.append(f"wrote {json_path}")

    return rep
