"""Elastic-membership chaos bench (``BENCH_elastic.json``).

Three deterministic chaos points on an 8-node DFS cluster, pinned to
``static-affinity`` (the committed baseline must not depend on
``$REPRO_SCHEDULER``).  Each point measures a *static* run first and
then replays the same job under membership churn, asserting the
headline elasticity guarantee — the chaos output is **byte-identical**
to the static output — alongside the perf deltas:

* ``elastic:double`` — the job starts on 4 of 8 nodes; 4 standbys join
  mid-map (times derived from the measured static map extent, so the
  replay is deterministic) and start stealing splits.  Growing the
  cluster must never slow the job down.
* ``elastic:halve`` — the job starts on all 8 nodes; 4 drain mid-map
  through the recovery path.  Their durable spill stays readable, so
  most lost work re-homes by re-push, not re-execution — both counters
  are recorded exactly.
* ``elastic:failover`` — a 3-replica coordinator loses its leader
  mid-map and again mid-reduce.  Each failover costs exactly the
  configured election delay and nothing else:
  ``elapsed == static + 2 * failover_timeout``.

Everything recorded is *virtual* (wall-clock is noted, never gated), so
``repro.bench.regress`` replays the file at 0% drift.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.core import JobConfig, run_glasswing
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.faults import (CoordinatorCrash, FaultPlan, NodeJoin,
                               NodeLeave)
from repro.hw.presets import das4_cluster
from repro.obs.telemetry import ensure_parent_dir

from repro.bench.harness import ExperimentReport, Table

__all__ = ["report", "elastic_point", "double_point", "halve_point",
           "failover_point", "ELASTIC_NODES", "FAILOVER_TIMEOUT",
           "DEFAULT_JSON_PATH"]

DEFAULT_JSON_PATH = "BENCH_elastic.json"

ELASTIC_NODES = 8
_HALF = ELASTIC_NODES // 2
#: pinned election delay for the failover point — the overhead check is
#: exact, so the constant is part of the committed baseline's shape
FAILOVER_TIMEOUT = 0.002

#: default input size (kilobytes of generated text); quick mode shrinks.
#: The quick size must keep the doubling run on the right side of the
#: split-count discretisation: below ~5 chunks per initial node the
#: joiners arrive with nothing left to steal and the measured speedup
#: dips under 1.0 even though the run is strictly no slower per split.
KILOBYTES = 160
_QUICK_KILOBYTES = 96


def _config(**overrides: Any) -> JobConfig:
    return JobConfig(chunk_size=16 * 1024, storage="dfs",
                     scheduler="static-affinity", input_replication=3,
                     **overrides)


def _inputs(kilobytes: int) -> Dict[str, bytes]:
    return {"wiki": wiki_text(kilobytes * 1024, seed=71)}


def double_point(costs: HostCosts = DEFAULT_HOST_COSTS,
                 kilobytes: int = KILOBYTES) -> Dict[str, Any]:
    """Half-cluster job + 4 mid-map joins vs the static half-cluster."""
    spec = das4_cluster(nodes=ELASTIC_NODES)
    inputs = _inputs(kilobytes)
    wall0 = time.perf_counter()
    base = run_glasswing(WordCountApp(), inputs, spec,
                         _config(active_nodes=_HALF), costs=costs)
    # Joins land inside the measured map window — deterministic because
    # the static run is replayed first.
    joins = tuple(NodeJoin(None, (0.1 + 0.1 * i) * base.map_time)
                  for i in range(_HALF))
    chaos = run_glasswing(WordCountApp(), inputs, spec,
                          _config(active_nodes=_HALF), costs=costs,
                          faults=FaultPlan(node_joins=joins))
    wall = time.perf_counter() - wall0
    return {
        "app": "elastic:double",
        "nodes": ELASTIC_NODES,
        "kilobytes": kilobytes,
        "active_nodes": _HALF,
        "elapsed_s": chaos.job_time,
        "baseline_elapsed_s": base.job_time,
        "speedup": base.job_time / chaos.job_time,
        "identical_output": chaos.sorted_output() == base.sorted_output(),
        "joined": len(chaos.stats["joined_nodes"]),
        "network_bytes": chaos.stats["network_bytes"],
        "leaked_buffer_slots": chaos.stats["leaked_buffer_slots"],
        "wall_s": wall,
    }


def halve_point(costs: HostCosts = DEFAULT_HOST_COSTS,
                kilobytes: int = KILOBYTES) -> Dict[str, Any]:
    """Full-cluster job + 4 mid-map drains vs the static full cluster."""
    spec = das4_cluster(nodes=ELASTIC_NODES)
    inputs = _inputs(kilobytes)
    wall0 = time.perf_counter()
    base = run_glasswing(WordCountApp(), inputs, spec, _config(),
                         costs=costs)
    leaves = tuple(NodeLeave(None, (0.1 + 0.1 * i) * base.map_time)
                   for i in range(_HALF))
    chaos = run_glasswing(WordCountApp(), inputs, spec, _config(),
                          costs=costs,
                          faults=FaultPlan(node_leaves=leaves))
    wall = time.perf_counter() - wall0
    return {
        "app": "elastic:halve",
        "nodes": ELASTIC_NODES,
        "kilobytes": kilobytes,
        "active_nodes": ELASTIC_NODES,
        "elapsed_s": chaos.job_time,
        "baseline_elapsed_s": base.job_time,
        "slowdown": chaos.job_time / base.job_time,
        "identical_output": chaos.sorted_output() == base.sorted_output(),
        "departed": len(chaos.stats["departed_nodes"]),
        "repushed_runs": chaos.stats["repushed_runs"],
        "reexecuted_splits": chaos.stats["reexecuted_splits"],
        "network_bytes": chaos.stats["network_bytes"],
        "leaked_buffer_slots": chaos.stats["leaked_buffer_slots"],
        "wall_s": wall,
    }


def failover_point(costs: HostCosts = DEFAULT_HOST_COSTS,
                   kilobytes: int = KILOBYTES) -> Dict[str, Any]:
    """Kill the coordinator leader mid-map and mid-reduce (3 replicas)."""
    spec = das4_cluster(nodes=ELASTIC_NODES)
    inputs = _inputs(kilobytes)
    config = _config(coordinator_replicas=3,
                     failover_timeout=FAILOVER_TIMEOUT)
    wall0 = time.perf_counter()
    base = run_glasswing(WordCountApp(), inputs, spec, config, costs=costs)
    # The first failover shifts everything after the map barrier by the
    # election delay, so the chaos run's reduce window is the static one
    # translated by FAILOVER_TIMEOUT.
    reduce_start = base.job_time - base.reduce_time
    crashes = (CoordinatorCrash(0.3 * base.map_time),
               CoordinatorCrash(reduce_start + FAILOVER_TIMEOUT
                                + 0.5 * base.reduce_time))
    chaos = run_glasswing(WordCountApp(), inputs, spec, config, costs=costs,
                          faults=FaultPlan(coordinator_crashes=crashes))
    wall = time.perf_counter() - wall0
    return {
        "app": "elastic:failover",
        "nodes": ELASTIC_NODES,
        "kilobytes": kilobytes,
        "replicas": 3,
        "failover_timeout": FAILOVER_TIMEOUT,
        "elapsed_s": chaos.job_time,
        "baseline_elapsed_s": base.job_time,
        "failovers": chaos.stats["coordinator_failovers"],
        "overhead_s": chaos.job_time - base.job_time,
        "identical_output": chaos.sorted_output() == base.sorted_output(),
        "network_bytes": chaos.stats["network_bytes"],
        "leaked_buffer_slots": chaos.stats["leaked_buffer_slots"],
        "wall_s": wall,
    }


def elastic_point(app: str, costs: HostCosts = DEFAULT_HOST_COSTS,
                  **kwargs: Any) -> Dict[str, Any]:
    """Dispatch a baseline point by its recorded ``app`` label."""
    if app == "elastic:double":
        return double_point(costs=costs, **kwargs)
    if app == "elastic:halve":
        return halve_point(costs=costs, **kwargs)
    if app == "elastic:failover":
        return failover_point(costs=costs, **kwargs)
    raise ValueError(f"unknown elastic bench point {app!r}")


def report(quick: bool = False,
           json_path: Optional[str] = DEFAULT_JSON_PATH) -> ExperimentReport:
    """Run the three chaos points; emit ``BENCH_elastic.json``."""
    rep = ExperimentReport(
        experiment="elastic membership + coordinator failover — chaos "
                   f"points on {ELASTIC_NODES} nodes",
        paper_claim="MapReduce scales horizontally at runtime: nodes "
                    "join and leave mid-job and the coordinator fails "
                    "over, all without changing a byte of output — "
                    "growth only speeds the job up, drains cost a "
                    "bounded recovery wave, and each failover costs "
                    "exactly one election delay")

    kilobytes = _QUICK_KILOBYTES if quick else KILOBYTES
    double = double_point(kilobytes=kilobytes)
    halve = halve_point(kilobytes=kilobytes)
    failover = failover_point(kilobytes=kilobytes)
    points = [double, halve, failover]

    table = Table(f"chaos points ({ELASTIC_NODES} nodes, dfs, "
                  "static-affinity)",
                  ["app", "static_s", "chaos_s", "identical", "wall_s"])
    for p in points:
        table.add_row(app=p["app"], static_s=p["baseline_elapsed_s"],
                      chaos_s=p["elapsed_s"],
                      identical=p["identical_output"], wall_s=p["wall_s"])
    rep.tables.append(table)

    rep.check("every chaos schedule leaves the output byte-identical",
              all(p["identical_output"] for p in points))
    rep.check("no chaos schedule leaks a buffer slot",
              all(p["leaked_buffer_slots"] == 0 for p in points))
    rep.check(f"all {_HALF} standbys joined the doubling run",
              double["joined"] == _HALF)
    rep.check("doubling the cluster mid-map never slows the job down",
              double["speedup"] >= 1.0,
              f"measured {double['speedup']:.3f}x")
    rep.check(f"all {_HALF} drains completed in the halving run",
              halve["departed"] == _HALF)
    rep.check("draining re-homes work by re-push, not only re-execution",
              halve["repushed_runs"] > 0,
              f"{halve['repushed_runs']} runs re-pushed, "
              f"{halve['reexecuted_splits']} splits re-executed")
    rep.check("both coordinator crashes failed over",
              failover["failovers"] == 2)
    rep.check("each failover costs exactly the election delay",
              abs(failover["overhead_s"] - 2 * FAILOVER_TIMEOUT) < 1e-12,
              f"overhead {failover['overhead_s']:.6f}s vs "
              f"2 x {FAILOVER_TIMEOUT}s")

    if json_path:
        payload = {
            "generated_by": "python -m repro.bench elastic",
            "nodes": ELASTIC_NODES,
            "failover_timeout": FAILOVER_TIMEOUT,
            "points": points,
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in rep.checks],
        }
        ensure_parent_dir(json_path)
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        rep.notes.append(f"wrote {json_path}")

    return rep
