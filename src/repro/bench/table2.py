"""Table II: WordCount map-pipeline time breakdown.

Four configurations on one Type-1 node, local FS (the paper uses a
smaller data set "to emphasize the performance differences"):

* (i)   hash-table collector + combiner, double buffering;
* (ii)  hash-table collector, no combiner, double buffering;
* (iii) simple (buffer-pool) output collection, double buffering;
* (i-single) configuration (i) with single buffering.

Shape checks encode the paper's §IV-B.1 discussion: elapsed ~ dominant
stage and well below the stage sum for (i); kernel rises without the
combiner (compaction kernel) and partitioning rises with the volume;
config (iii) trades a cheaper kernel for dominant partitioning; single
buffering serialises the input group (elapsed ~ input + kernel) and
partitioning gets faster (less core contention).
"""

from __future__ import annotations

from typing import Dict

from repro.apps import WordCountApp
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table

__all__ = ["report", "CONFIGS"]

CHUNK = 256 * KiB
#: scaled cache threshold so intermediate data spills and merges, as the
#: paper's 7 GB working set does against its in-memory cache
CACHE = 2 * 1024 * 1024

CONFIGS: Dict[str, JobConfig] = {
    "hash+combiner": JobConfig(chunk_size=CHUNK, storage="local",
                               collector="hash", use_combiner=True,
                               buffering=2, partitioner_threads=4,
                               cache_threshold=CACHE),
    "hash": JobConfig(chunk_size=CHUNK, storage="local",
                      collector="hash", use_combiner=False,
                      buffering=2, partitioner_threads=4,
                      cache_threshold=CACHE),
    "buffer": JobConfig(chunk_size=CHUNK, storage="local",
                        collector="buffer", use_combiner=False,
                        buffering=2, partitioner_threads=4,
                        cache_threshold=CACHE),
    "hash+combiner/single": JobConfig(chunk_size=CHUNK, storage="local",
                                      collector="hash", use_combiner=True,
                                      buffering=1, partitioner_threads=4,
                                      cache_threshold=CACHE),
}

ROWS = ("input", "kernel", "partitioning", "map_elapsed", "merge_delay",
        "reduce_time")


def report() -> ExperimentReport:
    rep = ExperimentReport(
        experiment="Table II — WC map pipeline time breakdown (1 node, "
                    "local FS)",
        paper_claim="elapsed ~ dominant stage << stage sum; no combiner "
                    "-> compaction kernel + larger partitioning/merge/"
                    "reduce; simple collection -> cheaper kernel but "
                    "partitioning dominates; single buffering -> elapsed "
                    "= input + kernel, faster partitioning")
    inputs = workloads.wc_input()
    table = Table("WC map pipeline breakdown (seconds)",
                  ("config",) + ROWS)
    results = {}
    for name, cfg in CONFIGS.items():
        res = run_glasswing(WordCountApp(), inputs, das4_cluster(nodes=1),
                            cfg)
        results[name] = res
        rep.attach_timeline(name, res.timeline)
        bd = res.metrics.breakdown("map", "node0")
        table.add_row(config=name, input=bd["input"], kernel=bd["kernel"],
                      partitioning=bd["output"], map_elapsed=res.map_time,
                      merge_delay=res.merge_delay,
                      reduce_time=res.reduce_time)
    rep.tables.append(table)

    r1, r2, r3 = results["hash+combiner"], results["hash"], results["buffer"]
    rs = results["hash+combiner/single"]
    bd1 = r1.metrics.breakdown("map", "node0")
    bd2 = r2.metrics.breakdown("map", "node0")
    bd3 = r3.metrics.breakdown("map", "node0")
    bds = rs.metrics.breakdown("map", "node0")

    stage_sum1 = sum(bd1.values())
    rep.check("(i) pipeline overlap: elapsed well below stage sum",
              r1.map_time < 0.8 * stage_sum1,
              f"elapsed {r1.map_time:.3f} vs sum {stage_sum1:.3f}")
    dominant1 = max(bd1.values())
    rep.check("(i) elapsed close to the dominant stage",
              r1.map_time <= 1.35 * dominant1,
              f"elapsed {r1.map_time:.3f} vs dominant {dominant1:.3f}")
    rep.check("(ii) kernel slightly up without combiner (compaction)",
              bd2["kernel"] > bd1["kernel"])
    rep.check("(ii) partitioning rises with intermediate volume",
              bd2["output"] > 1.3 * bd1["output"],
              f"{bd1['output']:.3f} -> {bd2['output']:.3f}")
    rep.check("(ii) merge delay and reduce grow without combiner",
              r2.merge_delay >= r1.merge_delay
              and r2.reduce_time > r1.reduce_time)
    rep.check("(iii) simple collection lowers kernel time",
              bd3["kernel"] < bd2["kernel"],
              f"{bd2['kernel']:.3f} -> {bd3['kernel']:.3f}")
    rep.check("(iii) partitioning becomes the dominant stage",
              bd3["output"] > bd3["kernel"]
              and bd3["output"] == max(bd3.values()),
              f"partitioning {bd3['output']:.3f} vs kernel {bd3['kernel']:.3f}")
    rep.check("(iii) elapsed time increases significantly",
              r3.map_time > 1.3 * r1.map_time,
              f"{r1.map_time:.3f} -> {r3.map_time:.3f}")
    rep.check("single buffering: elapsed ~ input + kernel",
              abs(rs.map_time - (bds["input"] + bds["kernel"]))
              <= 0.25 * rs.map_time,
              f"elapsed {rs.map_time:.3f} vs i+k "
              f"{bds['input'] + bds['kernel']:.3f}")
    rep.check("single buffering slower overall than double",
              rs.map_time > r1.map_time)
    return rep
