"""Table III: K-Means map-pipeline breakdown on CPU (a) and GTX480 (b).

Shape checks from §IV-B.2:

* KM is kernel-dominated on the CPU in every configuration;
* the GPU kernel and elapsed time beat the CPU's;
* on the GPU, config (iii)'s cheaper collection does *not* pay off
  overall ("the use of the hash table in conjunction with the combiner
  serves as the optimal configuration" on the GPU), while on the CPU
  config (iii) has the smallest total time;
* partitioning time drops across all configurations on the GPU because
  the kernel threads no longer contend for host cores.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import KMeansApp
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind, KiB

from repro.bench import workloads
from repro.bench.harness import ExperimentReport, Table

__all__ = ["report"]

CHUNK = 256 * KiB
CACHE = 2 * 1024 * 1024
#: smaller effective center count than Fig 3 so the collector effects
#: (not pure kernel arithmetic) are visible, as the paper uses a smaller
#: data set here; 128 real centers x cost scale 4 = 512 effective
K_REAL = 128
COST_SCALE = 4.0

_CONFIGS = {
    "hash+combiner": dict(collector="hash", use_combiner=True),
    "hash": dict(collector="hash", use_combiner=False),
    "buffer": dict(collector="buffer", use_combiner=False),
}


def _run(device: DeviceKind) -> Dict[str, object]:
    out = {}
    inputs = workloads.km_points()
    centers = workloads.km_centers(K_REAL)
    for name, opts in _CONFIGS.items():
        cfg = JobConfig(chunk_size=CHUNK, storage="local", buffering=2,
                        device=device, partitioner_threads=4,
                        cache_threshold=CACHE, **opts)
        out[name] = run_glasswing(KMeansApp(centers, cost_scale=COST_SCALE),
                                  inputs, das4_cluster(nodes=1, gpu=True),
                                  cfg)
    return out


def report() -> ExperimentReport:
    rep = ExperimentReport(
        experiment="Table III — KM map pipeline breakdown, CPU vs GTX480",
        paper_claim="kernel-dominated; GPU beats CPU; on the GPU the "
                    "simple collector does not improve elapsed time and "
                    "hash+combiner is optimal; partitioning drops on the "
                    "GPU (no host-core contention from kernel threads)")
    runs = {DeviceKind.CPU: _run(DeviceKind.CPU),
            DeviceKind.GPU: _run(DeviceKind.GPU)}
    for device, results in runs.items():
        table = Table(f"KM ({int(K_REAL * COST_SCALE)} effective centers) "
                      f"map pipeline breakdown — "
                      f"{device.value.upper()}",
                      ("config", "input", "stage", "kernel", "retrieve",
                       "partitioning", "map_elapsed", "merge_delay",
                       "reduce_time"))
        for name, res in results.items():
            bd = res.metrics.breakdown("map", "node0")
            table.add_row(config=name, input=bd["input"], stage=bd["stage"],
                          kernel=bd["kernel"], retrieve=bd["retrieve"],
                          partitioning=bd["output"],
                          map_elapsed=res.map_time,
                          merge_delay=res.merge_delay,
                          reduce_time=res.reduce_time)
        rep.tables.append(table)

    cpu, gpu = runs[DeviceKind.CPU], runs[DeviceKind.GPU]
    for name in _CONFIGS:
        bd = cpu[name].metrics.breakdown("map", "node0")
        rep.check(f"CPU {name}: kernel is the dominant stage",
                  bd["kernel"] == max(bd.values()),
                  f"kernel {bd['kernel']:.3f}")
    rep.check("GPU kernel and elapsed beat the CPU's (config i)",
              gpu["hash+combiner"].metrics.stage_time("map", "kernel", "node0")
              < 0.5 * cpu["hash+combiner"].metrics.stage_time("map", "kernel",
                                                              "node0")
              and gpu["hash+combiner"].map_time
              < cpu["hash+combiner"].map_time)
    rep.check("CPU config (ii) kernel above (i) (compaction kernel)",
              cpu["hash"].metrics.stage_time("map", "kernel", "node0")
              > cpu["hash+combiner"].metrics.stage_time("map", "kernel",
                                                        "node0"))
    rep.check("CPU config (iii) has the cheapest kernel",
              cpu["buffer"].metrics.stage_time("map", "kernel", "node0")
              < cpu["hash"].metrics.stage_time("map", "kernel", "node0"))
    rep.check(
        "GPU: simple collection does not improve elapsed time "
        "(hash+combiner optimal)",
        gpu["buffer"].job_time >= 0.95 * gpu["hash+combiner"].job_time,
        f"buffer {gpu['buffer'].job_time:.3f} vs "
        f"hash+combiner {gpu['hash+combiner'].job_time:.3f}")
    for name in _CONFIGS:
        # Compare the partitioner's *CPU* component: the paper attributes
        # the drop to the absence of kernel-thread contention on the host
        # cores (the stage total also contains the durability disk write,
        # which at our compressed time scale can queue more on the GPU's
        # much shorter map phase).
        p_cpu = cpu[name].timeline.occupied_time("map.partition_cpu",
                                                 name="node0")
        p_gpu = gpu[name].timeline.occupied_time("map.partition_cpu",
                                                 name="node0")
        rep.check(f"partitioning CPU work drops on the GPU ({name})",
                  p_gpu <= p_cpu * 1.02,
                  f"cpu {p_cpu:.4f} -> gpu {p_gpu:.4f}")
    return rep
