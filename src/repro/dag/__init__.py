"""Declarative DAG-of-stages execution with cross-round input caching.

The paper runs K-Means for one iteration while admitting "KM is an
iterative algorithm"; the MRC line of work (Goodrich et al.) shows the
interesting workload space is inherently multi-round.  This package is
the multi-round engine: a :class:`~repro.dag.graph.DAG` declares
datasets, chained MapReduce stages, broadcast state and fan-in joins;
a :class:`~repro.dag.runner.DagRunner` compiles each round to
non-exclusive :class:`~repro.core.engine.JobExecution`\\ s on one shared
:class:`~repro.core.engine.ClusterSession`, with immutable inputs
served from a :class:`~repro.storage.cache.CacheAsideBackend` after the
first round.  See ``docs/dag.md``.
"""

from repro.dag.graph import DAG, DagError, Dataset, Stage, StageOutput
from repro.dag.runner import DagResult, DagRunner, StageRun

__all__ = ["DAG", "DagError", "Dataset", "Stage", "StageOutput",
           "DagResult", "DagRunner", "StageRun"]
