"""Compile a :class:`~repro.dag.graph.DAG` to jobs on one shared session.

One :class:`DagRunner` owns exactly the state the naive re-submission
driver rebuilds every round and should not:

* the :class:`~repro.core.engine.ClusterSession` — simulator, timeline,
  telemetry hub, cluster hardware and device cache, constructed once;
* one storage backend wrapped in a
  :class:`~repro.storage.cache.CacheAsideBackend` — immutable datasets
  are pinned so their split reads are served from RAM after round one,
  and inputs are (re)installed only when their content fingerprint
  changes;
* the **split layout cache** — ``make_splits`` is pure on (paths,
  chunk size, record size) as long as no involved file changed, so the
  partition layout of an unchanged input is reused across rounds.

Each call to :meth:`DagRunner.run` executes the DAG's stages in
topological order as non-exclusive :class:`JobExecution`\\ s, one round.
Iterative drivers call :meth:`run` repeatedly on the same runner — that
is the whole trick: round two onward pays neither setup nor cold reads.
Every stage run gets its own :class:`~repro.simt.trace.TimelineFork`
labelled ``<stage>@r<round>``, so the merged Perfetto trace renders one
lane per round and the report gains per-round sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import JobConfig
from repro.core.coordinator import make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts
from repro.core.engine import ClusterSession, GlasswingResult, JobExecution
from repro.core.faults import FaultPlan
from repro.core.io import make_backend
from repro.hw.specs import ClusterSpec
from repro.storage.cache import CacheAsideBackend
from repro.storage.records import FixedRecordFormat

from repro.dag.graph import DAG, DagError, Stage, StageOutput

__all__ = ["DagRunner", "DagResult", "StageRun"]


@dataclass
class StageRun:
    """One executed (stage, round) pair."""

    stage: str
    round: int
    label: str                       # "<stage>@r<round>" — the trace lane
    result: GlasswingResult
    elapsed: float                   # simulated seconds for this run
    cache_hit_bytes: int             # cache-aside bytes served this run
    cache_miss_bytes: int            # bytes that went to real storage

    def section(self) -> Dict[str, Any]:
        """The per-round report section (JSON-friendly)."""
        return {
            "stage": self.stage,
            "round": self.round,
            "label": self.label,
            "elapsed": self.elapsed,
            "map_time": self.result.map_time,
            "merge_delay": self.result.merge_delay,
            "reduce_time": self.result.reduce_time,
            "network_bytes": self.result.stats.get("network_bytes", 0),
            "cache_hit_bytes": self.cache_hit_bytes,
            "cache_miss_bytes": self.cache_miss_bytes,
        }


@dataclass
class DagResult:
    """Outcome of one :meth:`DagRunner.run` round."""

    dag_name: str
    round: int
    stage_runs: List[StageRun]
    broadcast: Dict[str, Any]
    outputs: Dict[str, List[Tuple[Any, Any]]]    # stage -> sorted pairs
    cache: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Simulated seconds across this round's stages."""
        return sum(run.elapsed for run in self.stage_runs)

    def to_report(self) -> Dict[str, Any]:
        """Structured report: one section per stage run + cache totals."""
        return {
            "schema": "glasswing-dag-report/1",
            "dag": self.dag_name,
            "round": self.round,
            "total_time": self.total_time,
            "rounds": [run.section() for run in self.stage_runs],
            "cache": dict(self.cache),
        }


class DagRunner:
    """Executes DAG rounds on one long-lived session with cached inputs.

    ``config`` is the default :class:`JobConfig` (a stage's own config
    overrides it, except ``storage``/``chunk_size``/``input_replication``
    which are backend-level and fixed at the first run).
    ``cache_capacity`` bounds the cache-aside layer in bytes (LRU);
    ``None`` leaves it unbounded.
    """

    def __init__(self, cluster_spec: ClusterSpec,
                 config: Optional[JobConfig] = None,
                 costs: HostCosts = DEFAULT_HOST_COSTS,
                 metrics_interval: Optional[float] = None,
                 cache_capacity: Optional[int] = None):
        self.config = config or JobConfig()
        self.costs = costs
        interval = (metrics_interval if metrics_interval is not None
                    else self.config.metrics_interval)
        self.session = ClusterSession(cluster_spec,
                                      metrics_interval=interval)
        self.backend: Optional[CacheAsideBackend] = None
        self._cache_capacity = cache_capacity
        self._fingerprints: Dict[str, Tuple[int, int]] = {}
        self._splits: Dict[Tuple[Tuple[str, ...], int, Optional[int]],
                           List] = {}
        self.rounds = 0
        self.stage_runs: List[StageRun] = []    # cumulative, all rounds

    # -- storage ------------------------------------------------------------
    def _ensure_backend(self) -> CacheAsideBackend:
        if self.backend is None:
            config = self.config
            kwargs = {}
            if config.storage == "dfs":
                kwargs = dict(block_size=config.chunk_size,
                              replication=config.input_replication)
            base = make_backend(config.storage, self.session.cluster,
                                **kwargs)
            self.backend = CacheAsideBackend(
                base, capacity_bytes=self._cache_capacity,
                sim=self.session.sim, timeline=self.session.timeline)
        return self.backend

    def _install(self, path: str, data: bytes, immutable: bool) -> None:
        """Install ``path`` unless its content is already in place.

        ``bytes`` caches its hash after the first call, so the
        fingerprint is cheap on the hot (unchanged) path.  A content
        change re-installs and drops the path's cached ranges *and*
        every memoised split layout that covers it.
        """
        backend = self._ensure_backend()
        fingerprint = (len(data), hash(data))
        if self._fingerprints.get(path) == fingerprint and backend.exists(path):
            return
        if backend.exists(path):
            backend.remove(path)
            self._splits = {key: layout
                            for key, layout in self._splits.items()
                            if path not in key[0]}
        backend.install(path, data)
        self._fingerprints[path] = fingerprint
        if immutable:
            backend.pin(path)

    def _splits_for(self, paths: List[str],
                    config: JobConfig,
                    record_size: Optional[int]) -> List:
        backend = self._ensure_backend()
        key = (tuple(sorted(paths)), config.chunk_size, record_size)
        layout = self._splits.get(key)
        if layout is None:
            layout = make_splits(backend, sorted(paths), config.chunk_size,
                                 record_size=record_size)
            self._splits[key] = layout
        return layout

    # -- execution ----------------------------------------------------------
    def run(self, dag: DAG, broadcast: Optional[Dict[str, Any]] = None,
            faults: Optional[Dict[str, FaultPlan]] = None) -> DagResult:
        """Execute one round of ``dag``: every stage once, in topo order.

        ``broadcast`` seeds the per-round state read by app factories;
        each stage's ``publish`` hook merges updates into it, and the
        final dict comes back on the :class:`DagResult`.  ``faults``
        optionally injects a :class:`FaultPlan` per stage name.
        """
        stages = dag.toposort()
        if faults:
            unknown = sorted(set(faults) - set(dag.stages))
            if unknown:
                raise DagError(f"fault plans target unknown stages {unknown}")
        broadcast = dict(broadcast or {})
        self.rounds += 1
        round_no = self.rounds
        backend = self._ensure_backend()
        for ds in dag.datasets.values():
            self._install(ds.path, ds.data, ds.immutable)

        runs: List[StageRun] = []
        outputs: Dict[str, List[Tuple[Any, Any]]] = {}
        raw_outputs: Dict[str, GlasswingResult] = {}
        for stage in stages:
            inputs: Dict[str, bytes] = {}
            for ref in stage.inputs:
                if isinstance(ref, StageOutput):
                    upstream = raw_outputs[ref.stage]
                    data = ref.encode(upstream.sorted_output())
                    # Join files change whenever the upstream re-runs:
                    # fingerprinted, never pinned.
                    self._install(ref.path, data, immutable=False)
                    inputs[ref.path] = data
                else:
                    inputs[ref] = dag.datasets[ref].data
            result, run = self._run_stage(stage, inputs, broadcast, round_no,
                                          faults.get(stage.name)
                                          if faults else None)
            runs.append(run)
            raw_outputs[stage.name] = result
            outputs[stage.name] = result.sorted_output()
            if stage.publish is not None:
                update = stage.publish(outputs[stage.name])
                if update is not None:
                    if not isinstance(update, dict):
                        raise DagError(
                            f"stage {stage.name!r}: publish must return a "
                            f"dict (or None), got {type(update).__name__}")
                    broadcast.update(update)
        self.stage_runs.extend(runs)
        return DagResult(dag_name=dag.name, round=round_no, stage_runs=runs,
                         broadcast=broadcast, outputs=outputs,
                         cache=backend.stats())

    def _run_stage(self, stage: Stage, inputs: Dict[str, bytes],
                   broadcast: Dict[str, Any], round_no: int,
                   faults: Optional[FaultPlan]
                   ) -> Tuple[GlasswingResult, StageRun]:
        session = self.session
        backend = self._ensure_backend()
        config = stage.config or self.config
        app = stage.make_app(broadcast)
        record_size = (app.record_format.record_size
                       if isinstance(app.record_format, FixedRecordFormat)
                       else None)
        splits = self._splits_for(sorted(inputs), config, record_size)
        label = f"{stage.name}@r{round_no}"
        hit0, miss0 = backend.hit_bytes, backend.miss_bytes
        t0 = session.sim.now
        execution = JobExecution(
            session, app, inputs, config=config, costs=self.costs,
            faults=faults, name=label, exclusive=False,
            timeline=session.timeline.fork(label),
            backend=backend, splits=splits)
        execution.start()
        if session.telemetry is not None:
            # The sampler self-terminates when the heap drains between
            # rounds; respawn it so every round is sampled.
            session.telemetry.resume()
        session.run()
        result = execution.result()
        # Session time is absolute; per-round job time is this round's
        # extent (map/merge/reduce components are durations already).
        result.job_time -= t0
        session.timeline.record("dag.stage", label, t0, session.sim.now,
                                stage=stage.name, round=round_no)
        run = StageRun(stage=stage.name, round=round_no, label=label,
                       result=result, elapsed=result.job_time,
                       cache_hit_bytes=backend.hit_bytes - hit0,
                       cache_miss_bytes=backend.miss_bytes - miss0)
        return result, run

    # -- teardown -----------------------------------------------------------
    def close(self) -> None:
        """Stop telemetry (final snapshot); the runner stays queryable."""
        if self.session.telemetry is not None:
            self.session.telemetry.stop()

    @property
    def total_time(self) -> float:
        """Simulated seconds across every round so far."""
        return sum(run.elapsed for run in self.stage_runs)

    def cache_stats(self) -> Dict[str, Any]:
        """Cache-aside counters so far (empty before the first round)."""
        return self.backend.stats() if self.backend is not None else {}
