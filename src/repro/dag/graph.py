"""The declarative DAG-of-stages graph (validation and topological order).

A :class:`DAG` names input datasets and MapReduce stages; edges come
from two places:

* **data edges** — a stage input that is a :class:`StageOutput` consumes
  an upstream stage's reduced output, materialised to a file (fan-in
  join);
* **broadcast edges** — small per-round state (k-means centers, prefix
  offsets) published by an upstream stage's ``publish`` hook and read by
  a downstream stage's app factory.  Broadcast ordering follows the data
  edges plus declaration order (``after=``) when no data edge exists.

The graph is *pure structure*: nothing simulated happens until a
:class:`~repro.dag.runner.DagRunner` compiles it to a sequence of
:class:`~repro.core.engine.JobExecution`\\ s on one shared session.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.api import MapReduceApp
from repro.core.config import JobConfig

__all__ = ["DAG", "Dataset", "Stage", "StageOutput", "DagError"]


class DagError(ValueError):
    """Structural problem in a DAG: unknown reference, duplicate name,
    or a cycle."""


class Dataset:
    """A named input file.

    ``immutable=True`` (the default) declares the content fixed across
    rounds: the runner pins the path in the cache-aside layer so split
    reads are served from RAM after the first round.  A mutable dataset
    is re-checked every round (fingerprint) and never cached.
    """

    def __init__(self, path: str, data: bytes, immutable: bool = True):
        if not path:
            raise DagError("dataset path must be non-empty")
        self.path = path
        self.data = data
        self.immutable = immutable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "immutable" if self.immutable else "mutable"
        return f"<Dataset {self.path} ({len(self.data)}B, {kind})>"


class StageOutput:
    """Fan-in reference: a downstream stage reads an upstream stage's
    reduced output as a file.

    ``encode`` turns the upstream's sorted output pairs into the bytes
    the downstream app reads (the app defines its own record format, so
    the join owns the encoding).  The materialised file is mutable by
    construction — its content changes whenever the upstream re-runs —
    so it is fingerprinted, never pinned.
    """

    def __init__(self, stage: str,
                 encode: Callable[[List[Tuple[Any, Any]]], bytes],
                 path: Optional[str] = None):
        self.stage = stage
        self.encode = encode
        self.path = path or f"{stage}.out"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StageOutput {self.stage} -> {self.path}>"


StageInput = Union[str, StageOutput]
AppSource = Union[MapReduceApp, Callable[[Dict[str, Any]], MapReduceApp]]


class Stage:
    """One MapReduce job template inside the DAG.

    ``app`` is either a ready :class:`MapReduceApp` or a factory called
    with the current broadcast dict each round — iterative apps rebuild
    themselves around the fresh per-round state (e.g. new centers).
    ``publish`` maps the stage's sorted output pairs to a dict merged
    into the broadcast for downstream stages (and returned to the
    caller).  ``after`` adds broadcast-only ordering edges to stages the
    data edges do not already imply.
    """

    def __init__(self, name: str, app: AppSource,
                 inputs: Sequence[StageInput],
                 config: Optional[JobConfig] = None,
                 publish: Optional[
                     Callable[[List[Tuple[Any, Any]]], Dict[str, Any]]] = None,
                 after: Sequence[str] = ()):
        if not name:
            raise DagError("stage name must be non-empty")
        if not isinstance(app, MapReduceApp) and not callable(app):
            raise DagError(
                f"stage {name!r}: app must be a MapReduceApp or a "
                "factory callable(broadcast) -> MapReduceApp")
        if not inputs:
            raise DagError(f"stage {name!r} has no inputs")
        for ref in inputs:
            if not isinstance(ref, (str, StageOutput)):
                raise DagError(
                    f"stage {name!r}: inputs must be dataset paths or "
                    f"StageOutput references, got {ref!r}")
        self.name = name
        self.app = app
        self.inputs = tuple(inputs)
        self.config = config
        self.publish = publish
        self.after = tuple(after)

    def make_app(self, broadcast: Dict[str, Any]) -> MapReduceApp:
        """The concrete app for this round."""
        if isinstance(self.app, MapReduceApp):
            return self.app
        app = self.app(broadcast)
        if not isinstance(app, MapReduceApp):
            raise DagError(
                f"stage {self.name!r}: app factory returned "
                f"{type(app).__name__}, not a MapReduceApp")
        return app

    def upstream(self) -> List[str]:
        """Names of stages this one depends on (data + ordering edges)."""
        deps = [ref.stage for ref in self.inputs
                if isinstance(ref, StageOutput)]
        deps.extend(self.after)
        return deps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} inputs={[str(i) for i in self.inputs]}>"


class DAG:
    """A named collection of datasets and stages with validated edges."""

    def __init__(self, name: str = "dag"):
        self.name = name
        self.datasets: Dict[str, Dataset] = {}
        self.stages: Dict[str, Stage] = {}
        self._order: List[str] = []          # declaration order

    # -- construction ------------------------------------------------------
    def add_input(self, path: str, data: bytes,
                  immutable: bool = True) -> Dataset:
        if path in self.datasets:
            raise DagError(f"duplicate dataset {path!r}")
        ds = Dataset(path, data, immutable=immutable)
        self.datasets[path] = ds
        return ds

    def add_stage(self, name: str, app: AppSource,
                  inputs: Sequence[StageInput],
                  config: Optional[JobConfig] = None,
                  publish: Optional[
                      Callable[[List[Tuple[Any, Any]]], Dict[str, Any]]] = None,
                  after: Sequence[str] = ()) -> Stage:
        if name in self.stages:
            raise DagError(f"duplicate stage {name!r}")
        stage = Stage(name, app, inputs, config=config, publish=publish,
                      after=after)
        self.stages[name] = stage
        self._order.append(name)
        return stage

    # -- validation / ordering ---------------------------------------------
    def toposort(self) -> List[Stage]:
        """Stages in executable order; raises :class:`DagError` on unknown
        references or cycles.  Ties (no edge between two stages) break by
        declaration order, so execution is deterministic."""
        if not self.stages:
            raise DagError(f"DAG {self.name!r} has no stages")
        for stage in self.stages.values():
            for ref in stage.inputs:
                if isinstance(ref, str):
                    if ref not in self.datasets:
                        raise DagError(
                            f"stage {stage.name!r} reads unknown dataset "
                            f"{ref!r}")
                else:
                    if ref.stage not in self.stages:
                        raise DagError(
                            f"stage {stage.name!r} joins unknown stage "
                            f"{ref.stage!r}")
                    if ref.path in self.datasets:
                        raise DagError(
                            f"stage output path {ref.path!r} collides "
                            "with a dataset")
            for dep in stage.after:
                if dep not in self.stages:
                    raise DagError(
                        f"stage {stage.name!r} ordered after unknown "
                        f"stage {dep!r}")

        # Kahn's algorithm with declaration-order tie-breaking (n is
        # small, so the quadratic first-ready scan is fine).
        deps: Dict[str, set] = {}
        for stage in self.stages.values():
            up = set(stage.upstream())
            if stage.name in up:
                raise DagError(f"stage {stage.name!r} depends on itself")
            deps[stage.name] = up
        done: set = set()
        out: List[Stage] = []
        while len(out) < len(self.stages):
            name = next((n for n in self._order
                         if n not in done and deps[n] <= done), None)
            if name is None:
                stuck = sorted(n for n in self._order if n not in done)
                raise DagError(f"cycle through stages {stuck}")
            done.add(name)
            out.append(self.stages[name])
        return out
