"""Cluster interconnect: per-node full-duplex links with a shared fabric.

Transfers occupy the sender's TX channel and the receiver's RX channel for
``bytes / effective_bandwidth`` after a one-way latency, so a node pushing
partitions to many peers and receiving from many peers at once serialises
on its own NIC — the behaviour that makes the shuffle a real pipeline
stage worth overlapping (the paper's central claim).
"""

from repro.net.transport import Network, Transfer

__all__ = ["Network", "Transfer"]
