"""Point-to-point transfers over a modeled interconnect.

Fault semantics: transfers are interrupt-safe (a sender killed by a node
crash withdraws its queued NIC/fabric requests instead of wedging them),
and when the network is given a :class:`~repro.core.faults.ClusterHealth`
view, data addressed to a dead node is dropped — :meth:`Network.send`
reports delivery, so shuffle data in flight to (or from) a crashed node
is lost exactly as on a real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.simt.core import Interrupt, Simulator
from repro.simt.resources import Resource
from repro.simt.trace import Timeline

from repro.hw.specs import NetworkSpec

__all__ = ["Network", "Transfer", "TrafficMeter"]


@dataclass(frozen=True)
class Transfer:
    """Record of one completed transfer (for tests and accounting)."""

    src: int
    dst: int
    nbytes: int
    start: float
    end: float


class TrafficMeter:
    """Per-tenant attribution of traffic on a shared fabric.

    A multi-job session runs many tenants over one :class:`Network`; the
    NICs and fabric slots stay shared (that is the contention being
    modelled) but each job needs its own byte accounting, its own
    ``net.transfer`` spans and its own liveness view.  A job threads its
    meter through every ``send`` it issues:

    * ``bytes_moved`` / ``transfers`` count only this tenant's traffic;
    * ``timeline``, when set, receives the transfer spans instead of the
      network's session timeline (a :class:`~repro.simt.trace.Timeline`
      fork forwards them to the session anyway, job-tagged);
    * ``health``, when set, overrides the network-wide health view, so a
      node that crashed *for this job* drops this job's deliveries while
      other tenants keep using it (executor-crash semantics).
    """

    __slots__ = ("timeline", "health", "bytes_moved", "transfers")

    def __init__(self, timeline: Optional[Timeline] = None, health=None):
        self.timeline = timeline
        self.health = health
        self.bytes_moved = 0
        self.transfers = 0


class Network:
    """Shared fabric connecting ``n`` nodes with full-duplex NICs.

    Each node has one TX and one RX channel at ``spec.bandwidth``; the
    fabric itself sustains ``bisection_factor * n * bandwidth`` aggregate,
    modeled as a pool of fabric slots.  Local (same-node) transfers are
    free of network time but still pay a memcpy at memory bandwidth — the
    caller decides whether to route locally.
    """

    def __init__(self, sim: Simulator, spec: NetworkSpec, n_nodes: int,
                 timeline: Optional[Timeline] = None):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        self.timeline = timeline
        self._tx = [Resource(sim, 1, name=f"nic{t}.tx") for t in range(n_nodes)]
        self._rx = [Resource(sim, 1, name=f"nic{r}.rx") for r in range(n_nodes)]
        # Fabric capacity in whole-link units; >= 1 so a 1-node "cluster"
        # still works.
        fabric_links = max(1, int(n_nodes * spec.bisection_factor))
        self._fabric = Resource(sim, fabric_links, name="fabric")
        self.transfers: list[Transfer] = []
        self.bytes_moved = 0
        # Monotonic transfer sequence: concurrent transfers on the same
        # directed link produce overlapping same-identity spans, so each
        # span and its wait edges share an ``op`` token to stay matchable.
        self._seq = 0
        #: optional ClusterHealth view; when set, sends to dead nodes drop
        self.health = None
        # Per-link telemetry state, maintained only when the timeline
        # carries a live metrics hub (zero cost otherwise).
        self._inflight: dict[tuple[int, int], int] = {}
        self._link_counters: dict[tuple[int, int], Any] = {}

    def _link_telemetry(self, src: int, dst: int):
        """Lazily register (gauge, counter) for one directed link."""
        tele = self.timeline.telemetry if self.timeline is not None else None
        if tele is None:
            return None
        key = (src, dst)
        counter = self._link_counters.get(key)
        if counter is None:
            link = f"{src}->{dst}"
            self._inflight.setdefault(key, 0)
            tele.gauge("glasswing_shuffle_inflight_bytes",
                       help="bytes currently on the wire per directed link",
                       probe=lambda k=key: self._inflight[k], link=link)
            counter = self._link_counters[key] = tele.counter(
                "glasswing_shuffle_bytes",
                help="cumulative bytes completed per directed link",
                link=link)
        return counter

    def _endpoint_alive(self, node: int,
                        meter: Optional[TrafficMeter] = None) -> bool:
        health = self.health
        if meter is not None and meter.health is not None:
            health = meter.health
        return health is None or health.alive(node)

    def send(self, src: int, dst: int, nbytes: int,
             meter: Optional[TrafficMeter] = None) -> Generator:
        """Process-style generator: move ``nbytes`` from ``src`` to ``dst``.

        Completes when the last byte has been received, returning ``True``
        on delivery.  Same-node sends complete immediately (the caller
        models any memcpy cost).  With a health view attached, a send to
        an already-dead node returns ``False`` immediately (connection
        refused) and a receiver dying mid-transfer loses the data — the
        wire time is still paid, but the send reports ``False``.

        A :class:`TrafficMeter` attributes the transfer to one tenant of
        a shared fabric: its health view takes precedence over the
        network-wide one and its timeline receives the transfer span.
        """
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if not self._endpoint_alive(dst, meter):
            return False
        if src == dst or nbytes == 0:
            return True
        link_counter = self._link_telemetry(src, dst)
        if link_counter is None:
            return (yield from self._wire(src, dst, nbytes, meter))
        # In-flight gauge covers the whole transfer, including interrupt
        # exits (a killed sender must not pin phantom bytes on the link).
        self._inflight[(src, dst)] += nbytes
        try:
            delivered = yield from self._wire(src, dst, nbytes, meter)
        finally:
            self._inflight[(src, dst)] -= nbytes
        link_counter.inc(nbytes)
        return delivered

    def _wire(self, src: int, dst: int, nbytes: int,
              meter: Optional[TrafficMeter] = None) -> Generator:
        start = self.sim.now
        wire_time = nbytes / self.spec.bandwidth
        # Store-and-forward phases: a flow never holds one endpoint while
        # queueing for another, so all-to-all shuffles cannot convoy (and
        # deadlock is structurally impossible).  Sender-side serialisation
        # and receiver-side delivery each take bytes/bandwidth; incast
        # still contends on the receiver's NIC.
        tx_req = self._tx[src].acquire()
        try:
            yield tx_req
        except Interrupt:
            self._tx[src].cancel(tx_req)
            raise
        tx_wait = self.sim.now - start
        t_fab = self.sim.now
        fab_req = self._fabric.acquire()
        try:
            yield fab_req
        except Interrupt:
            self._fabric.cancel(fab_req)
            self._tx[src].release()
            raise
        fabric_wait = self.sim.now - t_fab
        try:
            # Coalesced timeouts: a batched shuffle starts many
            # equal-sized transfers at the same instant; same-delay waits
            # share one event (and FIFO order among the sharers follows
            # subscription order, i.e. send order).
            yield self.sim.shared_timeout(wire_time)
        finally:
            self._tx[src].release()
            self._fabric.release()
        yield self.sim.shared_timeout(self.spec.latency)
        t_rx = self.sim.now
        rx_req = self._rx[dst].acquire()
        try:
            yield rx_req
        except Interrupt:
            self._rx[dst].cancel(rx_req)
            raise
        rx_wait = self.sim.now - t_rx
        try:
            yield self.sim.shared_timeout(wire_time)
        finally:
            self._rx[dst].release()
        delivered = self._endpoint_alive(dst, meter)
        self.bytes_moved += nbytes
        record = Transfer(src, dst, nbytes, start, self.sim.now)
        self.transfers.append(record)
        timeline = self.timeline
        if meter is not None:
            meter.bytes_moved += nbytes
            meter.transfers += 1
            if meter.timeline is not None:
                timeline = meter.timeline
        if timeline is not None:
            self._seq += 1
            op = self._seq
            link = f"{src}->{dst}"
            timeline.record("net.transfer", link,
                            start, self.sim.now, bytes=nbytes,
                            delivered=delivered, tx_wait=tx_wait,
                            fabric_wait=fabric_wait, rx_wait=rx_wait,
                            op=op)
            # The three queueing phases are in-span waits (the span covers
            # the whole store-and-forward transfer); everything else in it
            # is wire/latency self-time.
            timeline.record_wait("shuffle-link", self._tx[src].name,
                                 "net.transfer", link,
                                 start, start + tx_wait, op=op)
            timeline.record_wait("shuffle-link", self._fabric.name,
                                 "net.transfer", link,
                                 t_fab, t_fab + fabric_wait, op=op)
            timeline.record_wait("shuffle-link", self._rx[dst].name,
                                 "net.transfer", link,
                                 t_rx, t_rx + rx_wait, op=op)
        return delivered

    def time_for(self, nbytes: int) -> float:
        """Uncontended duration of one transfer (store-and-forward)."""
        return self.spec.latency + 2 * nbytes / self.spec.bandwidth

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"unknown node {node} (cluster has {self.n_nodes})")
