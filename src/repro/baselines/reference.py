"""Sequential reference executor: the ground truth for every engine.

No simulation, no pipeline — just ``map``, group, ``reduce`` in one
process.  All engines' outputs are asserted equal (or numerically close,
for floating-point reductions) to this.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Tuple

from repro.core.api import MapReduceApp

__all__ = ["run_reference", "canonical_output"]

Pair = Tuple[Any, Any]


def run_reference(app: MapReduceApp, inputs: Dict[str, bytes]) -> List[Pair]:
    """Execute the job sequentially; returns canonically sorted output."""
    records: List[bytes] = []
    for path in sorted(inputs):
        records.extend(app.record_format.split_records(inputs[path]))
    pairs = app.map_batch(records)
    pairs = sorted(pairs, key=lambda kv: app.sort_key(kv[0]))
    out: List[Pair] = []
    if app.map_only_output:
        out = pairs
    else:
        for key, group in itertools.groupby(pairs, key=lambda kv: kv[0]):
            out.extend(app.reduce(key, [v for _, v in group]))
    return canonical_output(out)


def canonical_output(pairs: List[Pair]) -> List[Pair]:
    """Deterministic ordering for output comparison across engines."""
    return sorted(pairs, key=lambda kv: repr(kv[0]))
