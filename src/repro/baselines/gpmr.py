"""GPMR-style GPU MapReduce engine (the paper's GPU baseline).

Modeled after the behaviours the paper measures:

* **GPU only** — map and reduce kernels run on the node's GPU; a node
  without one is an error;
* **no I/O-compute overlap** — "GPMR first reads all data, then starts
  its computation pipeline; its total time is the sum of computation and
  I/O" (Fig 3e's two lines are exactly ``compute`` and ``compute + IO``);
* **in-core intermediate data** — "limited to processing data sets where
  intermediate data fits in host memory";
* input fully replicated on each node's local FS (the GPMR experimental
  layout), no HDFS/JNI;
* optional benchmark quirks from the paper: its MM "does not read its
  input matrices from files, but generates them on the fly and excludes
  the generation time" (``skip_input_io``) and "does not aggregate the
  partial submatrices as it has no reduce implementation"
  (``skip_reduce``); its KM is "optimized for a small number of centers"
  (``compute_factor`` models the adapted large-center inefficiency).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import ClusterSpec, DeviceKind, MiB
from repro.ocl.runtime import Device
from repro.simt.core import Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.coordinator import make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts, sort_seconds
from repro.core.io import make_backend
from repro.core.splitread import read_split_records
from repro.storage.records import FixedRecordFormat

__all__ = ["GPMRConfig", "GPMRResult", "run_gpmr"]

Pair = Tuple[Any, Any]


class IntermediateDataTooLarge(RuntimeError):
    """GPMR keeps intermediate data in host memory; it did not fit."""


@dataclass(frozen=True)
class GPMRConfig:
    """GPMR run configuration."""

    chunk_size: int = 16 * MiB
    compute_factor: float = 1.0    # kernel inefficiency (adapted KM > 16 centers)
    skip_input_io: bool = False    # MM generates input on the fly
    skip_reduce: bool = False      # MM has no reduce implementation
    host_memory_fraction: float = 0.8  # of node RAM usable for intermediates


@dataclass
class GPMRResult:
    """Outcome of one GPMR job; compute vs total I/O split is first-class
    because Figure 3(e) plots both."""

    app_name: str
    n_nodes: int
    job_time: float
    io_time: float            # max per-node input read time
    compute_time: float       # job time minus the input-read prefix
    output: Dict[int, List[Pair]]
    timeline: Timeline
    stats: Dict[str, Any] = field(default_factory=dict)

    def output_pairs(self):
        for pid in sorted(self.output):
            yield from self.output[pid]


def run_gpmr(app: MapReduceApp, inputs: Dict[str, bytes],
             cluster_spec: ClusterSpec,
             config: Optional[GPMRConfig] = None,
             costs: HostCosts = DEFAULT_HOST_COSTS) -> GPMRResult:
    """Run one GPMR job on a fresh simulated cluster (GPU nodes only)."""
    config = config or GPMRConfig()
    sim = Simulator()
    timeline = Timeline()
    cluster = Cluster(sim, cluster_spec, timeline=timeline)
    n = len(cluster)
    for node in cluster:
        if not node.spec.has_device(DeviceKind.GPU):
            raise ValueError(
                f"GPMR requires GPUs; node {node.node_id} has none")
    devices = [Device(sim, node.spec.device(DeviceKind.GPU), node)
               for node in cluster]
    backend = make_backend("local", cluster)
    for path, data in inputs.items():
        backend.install(path, data)
    backend.purge_caches()
    record_size = (app.record_format.record_size
                   if isinstance(app.record_format, FixedRecordFormat) else None)
    splits = make_splits(backend, sorted(inputs), config.chunk_size,
                         record_size=record_size)
    # Static round-robin split ownership (input is replicated everywhere).
    assignment = {i: [s for s in splits if s.index % n == i]
                  for i in range(n)}

    inter: Dict[int, Dict[int, List[Pair]]] = {i: {} for i in range(n)}
    outputs: Dict[int, List[Pair]] = {}
    box: Dict[str, float] = {"io": 0.0}

    def node_job(node_id: int) -> Generator:
        node = cluster[node_id]
        device = devices[node_id]
        # Phase 1: read ALL input before any computation.
        io_start = sim.now
        chunks = []
        for split in assignment[node_id]:
            if config.skip_input_io:
                data = yield from _free_read(backend, node_id, split, app)
                chunks.append(data)
            else:
                records, nbytes = yield from read_split_records(
                    backend, node_id, split, app.record_format)
                chunks.append((records, nbytes))
        io_time = sim.now - io_start
        box["io"] = max(box["io"], io_time)
        timeline.record("gpmr.io", node.name, io_start, sim.now)
        # Phase 2: map every chunk on the GPU (transfers + kernels).
        mem_budget = int(node.spec.ram * config.host_memory_fraction)
        held_bytes = 0
        compute_start = sim.now
        for records, nbytes in chunks:
            yield from device.transfer(nbytes, "h2d")
            pairs = app.map_batch(records)
            cost = app.map_cost(device.spec, len(records), nbytes)
            cost = cost.scaled(config.compute_factor)
            yield from device.execute_cost(cost)
            raw = app.inter_schema.size_of(pairs)
            yield from device.transfer(raw, "d2h")
            held_bytes += raw
            if held_bytes > mem_budget:
                raise IntermediateDataTooLarge(
                    f"node {node_id}: {held_bytes} bytes of intermediate "
                    f"data exceed the {mem_budget}-byte host budget")
            # Host-side partial reduction (GPMR's partial-reduce step).
            if app.has_combiner and not config.skip_reduce:
                pairs = app.run_combine(pairs)
            for pair in pairs:
                pid = app.partition(pair[0], n)
                inter[node_id].setdefault(pid, []).append(pair)
        timeline.record("gpmr.map", node.name, compute_start, sim.now)

    def exchange_and_reduce(node_id: int) -> Generator:
        node = cluster[node_id]
        device = devices[node_id]
        # All-to-all exchange of partition data.
        sends = []
        for pid, pairs in sorted(inter[node_id].items()):
            if pid != node_id and pairs:
                nbytes = app.inter_schema.size_of(pairs)
                sends.append(sim.process(
                    _send(cluster, node_id, pid, nbytes),
                    name=f"gpmr-send-{node_id}-{pid}"))
        if sends:
            yield sim.all_of(sends)
        return

    def reduce_node(node_id: int) -> Generator:
        node = cluster[node_id]
        device = devices[node_id]
        mine: List[Pair] = []
        for src in range(n):
            mine.extend(inter[src].get(node_id, []))
        mine.sort(key=lambda kv: app.sort_key(kv[0]))
        yield node.host_work(1, sort_seconds(costs, len(mine)), tag="sort")
        out: List[Pair] = []
        if config.skip_reduce or app.map_only_output:
            out = mine
        elif mine:
            groups = [(k, [v for _, v in grp]) for k, grp in
                      itertools.groupby(mine, key=lambda kv: kv[0])]
            raw = app.inter_schema.size_of(mine)
            yield from device.transfer(raw, "h2d")
            base = app.reduce_cost(device.spec, len(groups), len(mine))
            yield from device.execute_cost(base.scaled(config.compute_factor))
            for key, values in groups:
                out.extend(app.reduce(key, values))
            yield from device.transfer(app.output_schema.size_of(out), "d2h")
        yield from backend.write_chunk(node_id, app.output_schema.size_of(out), 1)
        outputs[node_id] = out

    def driver():
        yield sim.all_of([sim.process(node_job(i), name=f"gpmr-map-{i}")
                          for i in range(n)])
        yield sim.all_of([sim.process(exchange_and_reduce(i),
                                      name=f"gpmr-xchg-{i}") for i in range(n)])
        yield sim.all_of([sim.process(reduce_node(i),
                                      name=f"gpmr-red-{i}") for i in range(n)])

    sim.process(driver(), name="gpmr-driver")
    sim.run()

    total = sim.now
    return GPMRResult(
        app_name=app.name, n_nodes=n, job_time=total,
        io_time=box["io"], compute_time=total - box["io"],
        output=outputs, timeline=timeline,
        stats={"splits": len(splits)})


def _send(cluster: Cluster, src: int, dst: int, nbytes: int) -> Generator:
    yield from cluster.network.send(src, dst, nbytes)


def _free_read(backend, node_id: int, split, app) -> Generator:
    """Read the split's bytes without charging I/O time (GPMR's MM
    generates its input on the fly and excludes generation time)."""
    fs = backend.node_fs[node_id]
    data = fs._files[split.path][split.offset:split.offset + split.length]
    records = app.record_format.split_records(data)
    return records, split.length
    yield  # pragma: no cover - keeps this a generator
