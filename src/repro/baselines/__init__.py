"""Comparison systems: sequential reference, Hadoop-like and GPMR-like.

* :mod:`repro.baselines.reference` — a direct, single-process executor
  defining the *semantics* every engine must match (the paper verified
  Glasswing's and Hadoop's outputs "to be identical and correct").
* :mod:`repro.baselines.hadoop` — coarse-grained Hadoop 1.x-style engine:
  JVM task startup, sequential per-split map tasks, sort/spill/merge,
  pull-based shuffle with slow-start, map/reduce slots.
* :mod:`repro.baselines.gpmr` — GPU-only engine that reads all input
  before computing (no I/O-compute overlap) and keeps intermediate data
  in host memory.
"""

from repro.baselines.reference import run_reference

__all__ = ["run_reference"]
