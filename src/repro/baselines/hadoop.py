"""Hadoop 1.x-style MapReduce engine (the paper's primary baseline).

Coarse-grained execution, faithful to the behaviours the paper contrasts
Glasswing against:

* one JVM task per input split, scheduled into per-node **map slots**;
  each task runs *sequentially*: read split, then map, then sort/spill —
  no intra-task pipeline overlap (overlap only arises across slots);
* map/reduce functions pay a **JVM factor** relative to tuned OpenCL
  kernels, and every task pays a JVM startup cost;
* single-threaded sort/partition inside each task (no fine-grained
  parallelism);
* **pull-based shuffle**: reducers fetch map-output segments after the
  slow-start threshold, one fetch per (map task x reducer) with per-fetch
  overhead — versus Glasswing's push;
* reducers process keys sequentially; output written with replication.

Speculative execution is disabled (as the paper configures) and the
scheduler is data-local first, mirroring "we ensured that the Hadoop
executions are well load-balanced".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.hw.node import Cluster
from repro.hw.specs import ClusterSpec, MiB
from repro.simt.core import Event, Simulator
from repro.simt.trace import Timeline

from repro.core.api import MapReduceApp
from repro.core.coordinator import Split, assign_splits, make_splits
from repro.core.costs import DEFAULT_HOST_COSTS, HostCosts, sort_seconds
from repro.core.io import make_backend
from repro.core.splitread import read_split_records
from repro.storage.records import CompressionModel, FixedRecordFormat

__all__ = ["HadoopConfig", "HadoopResult", "run_hadoop"]

Pair = Tuple[Any, Any]


@dataclass(frozen=True)
class HadoopConfig:
    """Hadoop job/site configuration (scaled defaults; see EXPERIMENTS.md)."""

    map_slots: Optional[int] = None       # per node; default = hw threads
    reduce_slots: int = 2                 # per node (typical tuned Hadoop 1.x)
    chunk_size: int = 16 * MiB            # split = HDFS block size
    # Scaled from the physical ~1.5 s: jobs here run ~1/1000 of the
    # paper's data, so fixed per-task costs are scaled with them (same
    # rationale as the disk seek_time preset; see EXPERIMENTS.md).
    jvm_startup: float = 0.005            # task launch cost, seconds
    # Scalar 2014-era Java (no autovectorisation, bounds checks, boxing)
    # against hand-tuned OpenCL C on the same cores.
    jvm_factor: float = 3.0               # Java vs tuned-OpenCL compute ratio
    slowstart: float = 0.5                # fraction of maps done before fetch
    # Scaled like jvm_startup (real Hadoop pulls MB-sized segments; the
    # scaled run pulls KB-sized ones).
    fetch_overhead: float = 50e-6         # per map-segment pull
    parallel_copies: int = 5              # mapred.reduce.parallel.copies
    # TaskTracker heartbeat (scaled from Hadoop 1.x's ~3 s): locality is
    # relaxed only after a heartbeat with no local work.
    heartbeat: float = 3e-3
    # Speculative execution of in-flight map tasks by idle slots.  The
    # paper disables it ("Hadoop was configured to disable redundant
    # speculative computation, since the DAS cluster is extremely
    # stable"), so the default matches; the mechanism exists for
    # completeness and is covered by tests.
    speculative: bool = False
    use_combiner: bool = True
    compression: CompressionModel = field(default_factory=CompressionModel)
    output_replication: int = 3
    input_replication: int = 3

    def __post_init__(self) -> None:
        if not (0.0 <= self.slowstart <= 1.0):
            raise ValueError("slowstart must be within [0, 1]")
        if self.jvm_factor < 1.0:
            raise ValueError("jvm_factor below 1 would beat tuned kernels")


@dataclass
class HadoopResult:
    """Outcome of one Hadoop job."""

    app_name: str
    n_nodes: int
    job_time: float
    map_phase_time: float       # until the last map task finished
    shuffle_wait: float         # reducers' post-map fetch/merge tail
    output: Dict[int, List[Pair]]
    timeline: Timeline
    stats: Dict[str, Any] = field(default_factory=dict)

    def output_pairs(self):
        for pid in sorted(self.output):
            yield from self.output[pid]


@dataclass
class _MapOutputSegment:
    """One reducer's slice of one finished map task's output."""

    pairs: List[Pair]
    stored_bytes: int
    raw_bytes: int


class _HadoopJob:
    """Shared state of one running job."""

    def __init__(self, sim: Simulator, cluster: Cluster, app: MapReduceApp,
                 config: HadoopConfig, backend, timeline: Timeline,
                 splits: List[Split], costs: HostCosts):
        self.sim = sim
        self.cluster = cluster
        self.app = app
        self.config = config
        self.backend = backend
        self.timeline = timeline
        self.costs = costs
        n = len(cluster)
        self.map_slots = config.map_slots or cluster[0].spec.hw_threads
        self.reduce_slots = config.reduce_slots
        self.n_reducers = n * self.reduce_slots
        # Task queue: data-local first via the shared affinity assigner.
        self.pending: Dict[int, List[Split]] = assign_splits(splits, backend, n)
        self.total_maps = len(splits)
        self.maps_done = 0
        self.map_phase_end: Optional[float] = None
        self._slowstart_evt = Event(sim)
        # segments[reducer][...] grows as map tasks finish.
        self.segments: Dict[int, List[Tuple[int, _MapOutputSegment]]] = {
            r: [] for r in range(self.n_reducers)}
        self._seg_waiters: Dict[int, Optional[Event]] = {
            r: None for r in range(self.n_reducers)}
        # Speculation bookkeeping: in-flight attempts and finished splits.
        self.running: Dict[int, Tuple[Split, float]] = {}
        self.completed: set = set()
        self.stats = {"map_tasks": 0, "fetches": 0, "spilled_bytes": 0,
                      "speculative_attempts": 0, "speculative_wasted": 0}

    # -- split scheduling -------------------------------------------------
    def take_local_split(self, node_id: int) -> Optional[Split]:
        """Next data-local split for a free slot on ``node_id``."""
        if self.pending[node_id]:
            return self.pending[node_id].pop(0)
        return None

    def steal_split(self) -> Optional[Split]:
        """Non-local assignment from the most loaded node's queue.

        Only consulted after a heartbeat with no local work (so a fast
        node cannot vacuum the whole cluster's queue at t=0 before the
        other TaskTrackers have even reported in)."""
        donor = max(self.pending, key=lambda nid: len(self.pending[nid]))
        if self.pending[donor]:
            return self.pending[donor].pop(0)
        return None

    def splits_remaining(self) -> bool:
        return any(self.pending.values())

    def speculation_candidate(self) -> Optional[Split]:
        """Longest-running in-flight map attempt, for an idle slot."""
        if not self.config.speculative or not self.running:
            return None
        index = min(self.running, key=lambda i: self.running[i][1])
        return self.running[index][0]

    # -- map completion bookkeeping ------------------------------------------
    def map_finished(self, map_index: int,
                     per_reducer: Dict[int, _MapOutputSegment]) -> bool:
        """Register a finished attempt; returns False for a duplicate
        (a speculative attempt that lost the race — discarded)."""
        if map_index in self.completed:
            self.stats["speculative_wasted"] += 1
            return False
        self.completed.add(map_index)
        self.running.pop(map_index, None)
        for reducer, seg in per_reducer.items():
            self.segments[reducer].append((map_index, seg))
        # Wake every waiting reducer: even one that received no segment
        # must recheck, since maps_done advanced (it may be done pulling).
        for reducer, waiter in self._seg_waiters.items():
            if waiter is not None and not waiter.triggered:
                waiter.succeed(None)
                self._seg_waiters[reducer] = None
        self.maps_done += 1
        if (self.maps_done >= self.config.slowstart * self.total_maps
                and not self._slowstart_evt.triggered):
            self._slowstart_evt.succeed(None)
        if self.maps_done == self.total_maps:
            self.map_phase_end = self.sim.now
            if not self._slowstart_evt.triggered:
                self._slowstart_evt.succeed(None)
        return True

    def wait_slowstart(self) -> Event:
        """Event fired once the slow-start fraction of maps completed."""
        return self._slowstart_evt

    def wait_segments(self, reducer: int, have: int) -> Event:
        """Event that fires when reducer has more than ``have`` segments."""
        ev = Event(self.sim)
        if len(self.segments[reducer]) > have or self.maps_done == self.total_maps:
            ev.succeed(None)
        else:
            self._seg_waiters[reducer] = ev
        return ev


def run_hadoop(app: MapReduceApp, inputs: Dict[str, bytes],
               cluster_spec: ClusterSpec,
               config: Optional[HadoopConfig] = None,
               costs: HostCosts = DEFAULT_HOST_COSTS) -> HadoopResult:
    """Run one Hadoop job on a fresh simulated cluster."""
    config = config or HadoopConfig()
    sim = Simulator()
    timeline = Timeline()
    cluster = Cluster(sim, cluster_spec, timeline=timeline)
    n = len(cluster)
    backend = make_backend("dfs", cluster, block_size=config.chunk_size,
                           replication=config.input_replication)
    for path, data in inputs.items():
        backend.install(path, data)
    backend.purge_caches()
    record_size = (app.record_format.record_size
                   if isinstance(app.record_format, FixedRecordFormat) else None)
    splits = make_splits(backend, sorted(inputs), config.chunk_size,
                         record_size=record_size)
    job = _HadoopJob(sim, cluster, app, config, backend, timeline, splits,
                     costs)

    outputs: Dict[int, List[Pair]] = {}
    procs = []
    for node_id in range(n):
        for slot in range(job.map_slots):
            procs.append(sim.process(
                _map_slot(job, node_id), name=f"map-slot-{node_id}.{slot}"))
    for reducer in range(job.n_reducers):
        node_id = reducer % n
        procs.append(sim.process(
            _reduce_task(job, reducer, node_id, outputs),
            name=f"reduce-{reducer}"))

    done = {}

    def driver():
        yield sim.all_of(procs)
        done["t"] = sim.now

    sim.process(driver(), name="hadoop-driver")
    sim.run()

    map_phase_time = job.map_phase_end if job.map_phase_end is not None else 0.0
    return HadoopResult(
        app_name=app.name, n_nodes=n, job_time=done["t"],
        map_phase_time=map_phase_time,
        shuffle_wait=done["t"] - map_phase_time,
        output=outputs, timeline=timeline, stats=job.stats)


# --------------------------------------------------------------- map side
def _map_slot(job: _HadoopJob, node_id: int) -> Generator:
    """One map slot: run map tasks until no splits remain."""
    sim = job.sim
    node = job.cluster[node_id]
    cfg = job.config
    app = job.app
    cpu_spec = node.spec.cpu_device
    speculated: set = set()
    while True:
        split = job.take_local_split(node_id)
        if split is None:
            if not job.splits_remaining():
                # Out of fresh work: optionally speculate on stragglers.
                candidate = job.speculation_candidate()
                if candidate is None or candidate.index in speculated \
                        or candidate.index in job.completed:
                    return
                speculated.add(candidate.index)
                job.stats["speculative_attempts"] += 1
                split = candidate
            else:
                # No local work: wait one heartbeat, then accept a
                # non-local assignment (the JobTracker relaxes locality
                # over time).
                yield sim.timeout(cfg.heartbeat)
                split = job.steal_split()
                if split is None:
                    continue
        if split.index not in job.running:
            job.running[split.index] = (split, sim.now)
        start = sim.now
        job.stats["map_tasks"] += 1
        # JVM startup (one core busy while the task JVM spins up).
        yield node.host_work(1, cfg.jvm_startup, tag="jvm")
        # 1. Read the split — sequential, before any computation.
        records, nbytes = yield from read_split_records(
            job.backend, node_id, split, app.record_format)
        # 2. Map function, single-threaded Java.
        pairs = app.map_batch(records)
        kernel_cost = app.map_cost(cpu_spec, len(records), nbytes)
        work = (kernel_cost.roofline_on(cpu_spec) * cpu_spec.compute_units
                * cfg.jvm_factor)
        yield node.host_work(1, work, tag="map-func")
        # 3. Combine (map-side aggregation), single-threaded.
        if cfg.use_combiner and app.has_combiner:
            combined = app.run_combine(pairs)
            comb_cost = app.combine_cost(cpu_spec, len(pairs))
            yield node.host_work(
                1, comb_cost.roofline_on(cpu_spec) * cpu_spec.compute_units
                * cfg.jvm_factor, tag="combine")
            pairs = combined
        # 4. Partition + sort + spill to local disk, single-threaded.
        per_reducer: Dict[int, List[Pair]] = {}
        for pair in pairs:
            r = app.partition(pair[0], job.n_reducers)
            per_reducer.setdefault(r, []).append(pair)
        raw = app.inter_schema.size_of(pairs)
        cpu = (job.costs.decode_seconds(len(pairs), raw)
               + sort_seconds(job.costs, len(pairs))
               + cfg.compression.compress_seconds(raw))
        yield node.host_work(1, cpu, tag="sort-spill")
        stored = cfg.compression.compressed_size(raw)
        yield from node.disk.write(stored, stream=f"spill-{split.index}")
        job.stats["spilled_bytes"] += stored
        segments = {}
        for r, rpairs in per_reducer.items():
            rpairs.sort(key=lambda kv: app.sort_key(kv[0]))
            rraw = app.inter_schema.size_of(rpairs)
            segments[r] = _MapOutputSegment(
                pairs=rpairs, raw_bytes=rraw,
                stored_bytes=cfg.compression.compressed_size(rraw))
        job.timeline.record("hadoop.map_task", node.name, start, sim.now,
                            split=split.index)
        job.map_finished(split.index, segments)


# -------------------------------------------------------------- reduce side
def _reduce_task(job: _HadoopJob, reducer: int, node_id: int,
                 outputs: Dict[int, List[Pair]]) -> Generator:
    """One reduce task: pull, merge, reduce, write."""
    sim = job.sim
    node = job.cluster[node_id]
    cfg = job.config
    app = job.app
    cpu_spec = node.spec.cpu_device
    yield job.wait_slowstart()
    fetched: List[_MapOutputSegment] = []
    fetched_from = 0

    def fetch_one(map_index: int, seg: _MapOutputSegment) -> Generator:
        src = _map_node_of(job, map_index)
        start = sim.now
        yield node.host_work(1, cfg.fetch_overhead, tag="fetch")
        if src != node_id:
            # Serve from the mapper's spill disk, then cross the wire.
            yield from job.cluster[src].disk.read(seg.stored_bytes,
                                                  stream="shuffle-serve")
            yield from job.cluster.network.send(src, node_id,
                                                seg.stored_bytes)
        else:
            yield from node.disk.read(seg.stored_bytes,
                                      stream="shuffle-serve")
        job.stats["fetches"] += 1
        job.timeline.record("hadoop.fetch", node.name, start, sim.now,
                            reducer=reducer)
        fetched.append(seg)

    # Pull loop: fetch published segments, ``parallel_copies`` at a time.
    while True:
        available = job.segments[reducer]
        while fetched_from < len(available):
            wave = available[fetched_from:fetched_from + cfg.parallel_copies]
            fetched_from += len(wave)
            yield sim.all_of([
                sim.process(fetch_one(mi, seg),
                            name=f"copier-{reducer}-{mi}")
                for mi, seg in wave])
        if job.maps_done == job.total_maps and \
                fetched_from == len(job.segments[reducer]):
            break
        yield job.wait_segments(reducer, fetched_from)
    # Merge-sort the fetched segments, single-threaded.
    all_pairs: List[Pair] = []
    for seg in fetched:
        all_pairs.extend(seg.pairs)
    raw = sum(seg.raw_bytes for seg in fetched)
    cpu = (cfg.compression.decompress_seconds(raw)
           + sort_seconds(job.costs, len(all_pairs)))
    yield node.host_work(1, cpu, tag="reduce-merge")
    all_pairs.sort(key=lambda kv: app.sort_key(kv[0]))
    # Reduce sequentially per key.
    out_pairs: List[Pair] = []
    if app.map_only_output:
        out_pairs = all_pairs
    else:
        import itertools as _it
        n_values = len(all_pairs)
        groups = [(k, [v for _, v in grp]) for k, grp in
                  _it.groupby(all_pairs, key=lambda kv: kv[0])]
        base = app.reduce_cost(cpu_spec, len(groups), n_values)
        work = (base.roofline_on(cpu_spec) * cpu_spec.compute_units
                * cfg.jvm_factor)
        yield node.host_work(1, work, tag="reduce-func")
        for key, values in groups:
            out_pairs.extend(app.reduce(key, values))
    nbytes = app.output_schema.size_of(out_pairs)
    yield from job.backend.write_chunk(node_id, nbytes,
                                       cfg.output_replication)
    outputs[reducer] = out_pairs


def _map_node_of(job: _HadoopJob, map_index: int) -> int:
    """Node that ran a map task — recovered from the task trace."""
    for span in job.timeline.by_category("hadoop.map_task"):
        if span.meta.get("split") == map_index:
            return int(span.name.removeprefix("node"))
    raise KeyError(f"map task {map_index} not finished")
