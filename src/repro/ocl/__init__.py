"""Miniature OpenCL-style runtime over modeled devices.

Glasswing requires map and reduce functions to be OpenCL kernels; since no
OpenCL implementation is available offline, this package provides the same
*shape* of API (platforms, contexts, in-order command queues with events,
device buffers, NDRange kernel launches) over the device models of
:mod:`repro.hw`.  Kernels are real Python/numpy callables — they compute
real output — while their *duration* is charged to the virtual clock via a
per-device analytical cost model.

Key correspondences with real OpenCL:

* ``CL_MEM_ALLOC_HOST_PTR`` / unified memory — CPU devices set
  ``unified_memory``; host<->device copies become no-ops, which is exactly
  how Glasswing disables its Stage and Retrieve pipeline stages.
* in-order queues — each enqueued command waits for the previously
  enqueued one, plus any explicit event dependencies.
* device memory limits — buffer allocation beyond ``device_mem`` raises,
  bounding the pipeline's buffering level on small-memory GPUs.
"""

from repro.ocl.kernel import Kernel, KernelCost, NDRange
from repro.ocl.runtime import (
    Buffer,
    CommandQueue,
    Context,
    Device,
    OCLError,
    OCLEvent,
    OutOfDeviceMemory,
)

__all__ = [
    "Buffer",
    "CommandQueue",
    "Context",
    "Device",
    "Kernel",
    "KernelCost",
    "NDRange",
    "OCLError",
    "OCLEvent",
    "OutOfDeviceMemory",
]
