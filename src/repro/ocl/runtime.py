"""Contexts, devices, buffers, command queues and events."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, Iterable, List, Optional

from repro.hw.node import Node
from repro.hw.specs import DeviceKind, DeviceSpec
from repro.simt.core import Event, Interrupt, Simulator
from repro.simt.resources import Resource

from repro.ocl.kernel import Kernel, KernelCost

__all__ = [
    "OCLError",
    "OutOfDeviceMemory",
    "Device",
    "Context",
    "Buffer",
    "OCLEvent",
    "CommandQueue",
]


class OCLError(RuntimeError):
    """Generic runtime error (invalid handle, bad enqueue, ...)."""


class OutOfDeviceMemory(OCLError):
    """Buffer allocation exceeded the device's memory capacity."""


class Device:
    """A compute device bound to a node.

    * CPU devices execute kernels on the node's fluid-shared host threads,
      so they contend with partitioner/merger threads.
    * Discrete devices (GPU, Xeon Phi) have their own serial execution
      engine and a DMA engine for host<->device transfers; they leave the
      host threads free (the paper's Table III(b) effect).
    """

    def __init__(self, sim: Simulator, spec: DeviceSpec, node: Node):
        self.sim = sim
        self.spec = spec
        self.node = node
        self.mem_used = 0
        self._exec_engine = Resource(sim, 1, name=f"{spec.name}.exec")
        self._dma_engine = Resource(sim, 1, name=f"{spec.name}.dma")
        self.kernels_launched = 0
        self.bytes_transferred = 0

    # -- memory ----------------------------------------------------------
    def _alloc(self, nbytes: int) -> None:
        if self.mem_used + nbytes > self.spec.device_mem:
            raise OutOfDeviceMemory(
                f"{self.spec.name}: {nbytes} bytes requested, "
                f"{self.spec.device_mem - self.mem_used} free")
        self.mem_used += nbytes

    def _free(self, nbytes: int) -> None:
        self.mem_used -= nbytes
        if self.mem_used < 0:
            raise OCLError("device memory accounting underflow")

    def _acquire_engine(self, engine: Resource) -> Generator:
        """Interrupt-safe engine acquisition: a killed process (losing
        speculative task, crashed node) withdraws its queued request so
        the engine cannot be granted to a dead waiter and wedge."""
        request = engine.acquire()
        try:
            yield request
        except Interrupt:
            engine.cancel(request)
            raise

    # -- operations (process-style generators) -----------------------------
    def run_kernel(self, kernel: Kernel, args: Dict[str, Any],
                   threads: Optional[int] = None) -> Generator:
        """Execute ``kernel`` with ``args``; yields until done, returns result.

        ``threads`` overrides how many host threads a CPU-device launch
        occupies (Glasswing's per-device tuning knob); ignored for
        discrete devices, which always run kernels on their own engine.
        """
        cost = kernel.cost(self.spec, args)
        duration = cost.time_on(self.spec)
        result = kernel(**args)  # the real data transformation
        self.kernels_launched += cost.launches
        if self.spec.kind is DeviceKind.CPU:
            # The cost model's duration assumes the full device; the total
            # work in thread-seconds is therefore duration * compute_units.
            # Running it over fewer threads (Glasswing's tuning knob)
            # lengthens the launch proportionally via the fluid CPU model.
            n = threads if threads is not None else self.spec.compute_units
            n = max(1, min(n, self.node.cpu.capacity))
            work = duration * self.spec.compute_units
            yield self.node.cpu.run(n, work, tag=f"kernel:{kernel.name}")
        else:
            yield from self._acquire_engine(self._exec_engine)
            try:
                yield self.sim.timeout(duration)
            finally:
                self._exec_engine.release()
        return result

    def execute_cost(self, cost: KernelCost,
                     threads: Optional[int] = None) -> Generator:
        """Charge the time of a launch whose real work ran host-side.

        The Glasswing phases compute their data transformations inline and
        use this to charge the device: ``threads`` is how many device
        work-items actually have work (reduce with few concurrent keys
        underutilises the device; a CPU launch over fewer host threads
        both slows down and frees cores for other stages).
        """
        overhead = self.spec.launch_overhead * cost.launches
        roofline = cost.roofline_on(self.spec)
        self.kernels_launched += cost.launches
        if self.spec.kind is DeviceKind.CPU:
            if overhead > 0:
                # Kernel dispatch is serial host work.
                yield self.node.cpu.run(1, overhead, tag="launch")
            if roofline > 0:
                n = threads if threads is not None else self.spec.compute_units
                n = max(1, min(n, self.node.cpu.capacity))
                yield self.node.cpu.run(n, roofline * self.spec.compute_units,
                                        tag="kernel")
        else:
            util = 1.0
            if threads is not None:
                util = max(1.0 / self.spec.compute_units,
                           min(1.0, threads / self.spec.compute_units))
            yield from self._acquire_engine(self._exec_engine)
            try:
                yield self.sim.timeout(overhead + roofline / util)
            finally:
                self._exec_engine.release()

    def transfer(self, nbytes: int, direction: str = "h2d") -> Generator:
        """Move ``nbytes`` between host and device memory (no-op if unified)."""
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"unknown transfer direction {direction!r}")
        if self.spec.unified_memory or nbytes == 0:
            return
        yield from self._acquire_engine(self._dma_engine)
        try:
            yield self.sim.timeout(nbytes / self.spec.transfer_bw)
            self.bytes_transferred += nbytes
        finally:
            self._dma_engine.release()

    def kernel_time(self, kernel: Kernel, args: Dict[str, Any]) -> float:
        """Uncontended duration estimate of one launch."""
        return kernel.cost(self.spec, args).time_on(self.spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.spec.name!r} on node {self.node.node_id}>"


class Context:
    """Owns devices and the buffers allocated against them."""

    def __init__(self, sim: Simulator, devices: Iterable[Device]):
        self.sim = sim
        self.devices: List[Device] = list(devices)
        if not self.devices:
            raise OCLError("a context needs at least one device")
        self._buffers: List["Buffer"] = []

    def alloc_buffer(self, device: Device, nbytes: int,
                     name: str = "buf") -> "Buffer":
        """Allocate ``nbytes`` of device memory on ``device``."""
        if device not in self.devices:
            raise OCLError("device not part of this context")
        if nbytes < 0:
            raise ValueError("negative buffer size")
        device._alloc(nbytes)
        buf = Buffer(self, device, nbytes, name)
        self._buffers.append(buf)
        return buf

    def release(self, buf: "Buffer") -> None:
        """Free a buffer's device memory."""
        if buf.released:
            raise OCLError(f"double release of buffer {buf.name!r}")
        buf.device._free(buf.nbytes)
        buf.released = True
        self._buffers.remove(buf)

    @property
    def live_buffers(self) -> int:
        return len(self._buffers)


class Buffer:
    """A device-memory allocation; carries arbitrary host-side payload."""

    def __init__(self, context: Context, device: Device, nbytes: int, name: str):
        self.context = context
        self.device = device
        self.nbytes = nbytes
        self.name = name
        self.released = False
        self.payload: Any = None  # real data travelling through the pipeline

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self.released else f"{self.nbytes}B"
        return f"<Buffer {self.name!r} {state}>"


class OCLEvent:
    """Completion handle with OpenCL-style profiling timestamps."""

    _ids = itertools.count()

    def __init__(self, sim: Simulator, label: str = ""):
        self.id = next(self._ids)
        self.label = label
        self.queued: float = sim.now
        self.started: Optional[float] = None
        self.ended: Optional[float] = None
        self.result: Any = None
        self._done = Event(sim)

    @property
    def done(self) -> Event:
        """simt event fired on completion (yieldable from processes)."""
        return self._done

    @property
    def complete(self) -> bool:
        return self.ended is not None

    @property
    def duration(self) -> float:
        if self.started is None or self.ended is None:
            raise OCLError(f"event {self.label!r} has not completed")
        return self.ended - self.started


class CommandQueue:
    """In-order command queue for one device.

    Every enqueued command implicitly depends on the previously enqueued
    command (in-order semantics) and on any explicit ``wait_for`` events.
    """

    def __init__(self, context: Context, device: Device):
        if device not in context.devices:
            raise OCLError("device not part of context")
        self.context = context
        self.device = device
        self.sim = context.sim
        self._tail: Optional[Event] = None

    # -- enqueue operations -------------------------------------------------
    def enqueue_kernel(self, kernel: Kernel, args: Dict[str, Any],
                       wait_for: Optional[List[OCLEvent]] = None,
                       threads: Optional[int] = None) -> OCLEvent:
        """Launch ``kernel``; the returned event carries the kernel result."""
        def op() -> Generator:
            result = yield from self.device.run_kernel(kernel, args,
                                                       threads=threads)
            return result
        return self._submit(op, label=f"kernel:{kernel.name}",
                            wait_for=wait_for)

    def enqueue_write(self, buf: Buffer, payload: Any, nbytes: int,
                      wait_for: Optional[List[OCLEvent]] = None) -> OCLEvent:
        """Host -> device copy of ``nbytes``; stores ``payload`` in ``buf``."""
        self._check_buffer(buf)
        def op() -> Generator:
            yield from self.device.transfer(nbytes, "h2d")
            buf.payload = payload
            return payload
        return self._submit(op, label=f"write:{buf.name}", wait_for=wait_for)

    def enqueue_read(self, buf: Buffer, nbytes: int,
                     wait_for: Optional[List[OCLEvent]] = None) -> OCLEvent:
        """Device -> host copy; the event's result is the buffer payload."""
        self._check_buffer(buf)
        def op() -> Generator:
            yield from self.device.transfer(nbytes, "d2h")
            return buf.payload
        return self._submit(op, label=f"read:{buf.name}", wait_for=wait_for)

    def enqueue_marker(self) -> OCLEvent:
        """Event that fires when all previously enqueued commands finish."""
        def op() -> Generator:
            return
            yield  # pragma: no cover - makes this a generator
        return self._submit(op, label="marker")

    def finish(self) -> Event:
        """simt event fired when the queue drains (clFinish)."""
        return self.enqueue_marker().done

    # -- internals -----------------------------------------------------------
    def _check_buffer(self, buf: Buffer) -> None:
        if buf.released:
            raise OCLError(f"use of released buffer {buf.name!r}")
        if buf.device is not self.device:
            raise OCLError("buffer belongs to a different device")

    def _submit(self, op, label: str,
                wait_for: Optional[List[OCLEvent]] = None) -> OCLEvent:
        ev = OCLEvent(self.sim, label=label)
        deps: List[Event] = []
        if self._tail is not None:
            deps.append(self._tail)
        for dep in (wait_for or []):
            deps.append(dep.done)

        def runner() -> Generator:
            if deps:
                yield self.sim.all_of(deps)
            ev.started = self.sim.now
            result = yield from op()
            ev.ended = self.sim.now
            ev.result = result
            ev._done.succeed(result)

        self._tail = self.sim.process(runner(), name=f"cq:{label}")
        return ev
