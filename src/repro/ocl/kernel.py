"""Kernel abstraction and analytical cost model.

A :class:`Kernel` couples a real Python callable (the data transformation)
with a :class:`KernelCost` describing the resources one launch consumes.
The device translates the cost into virtual seconds::

    time = launch_overhead * launches
         + max(flops / device.flops, device_bytes / device.mem_bw)
         * (1 + device.atomic_penalty * atomic_intensity)

The ``max`` term follows the roofline model: a kernel is either
compute-bound or memory-bound.  ``atomic_intensity`` in [0, 1] models
contended atomics — the paper's hash-table collector slows down kernels on
workloads with heavy key repetition (WordCount), and more so on devices
with expensive atomics (GTX480).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional

from repro.hw.specs import DeviceSpec

__all__ = ["KernelCost", "NDRange", "Kernel"]


@dataclass(frozen=True)
class KernelCost:
    """Resource consumption of one kernel launch."""

    flops: float = 0.0              # floating/integer ops executed
    device_bytes: float = 0.0       # device-memory traffic, bytes
    atomic_intensity: float = 0.0   # 0 = no atomics .. 1 = fully serialised
    launches: int = 1               # kernel invocations (Fig 5: overhead!)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.device_bytes < 0 or self.launches < 0:
            raise ValueError("negative kernel cost")
        if not (0.0 <= self.atomic_intensity <= 1.0):
            raise ValueError("atomic_intensity must be within [0, 1]")

    def roofline_on(self, device: DeviceSpec) -> float:
        """Roofline execution time (no launch overhead), full device."""
        roofline = max(
            self.flops / device.flops,
            self.device_bytes / device.mem_bw,
        )
        contention = 1.0 + device.atomic_penalty * self.atomic_intensity
        return roofline * contention

    def time_on(self, device: DeviceSpec) -> float:
        """Virtual seconds this launch takes on ``device``."""
        return device.launch_overhead * self.launches + self.roofline_on(device)

    def scaled(self, factor: float) -> "KernelCost":
        """Cost multiplied by ``factor`` (launches kept)."""
        return replace(self, flops=self.flops * factor,
                       device_bytes=self.device_bytes * factor)

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            flops=self.flops + other.flops,
            device_bytes=self.device_bytes + other.device_bytes,
            atomic_intensity=max(self.atomic_intensity, other.atomic_intensity),
            launches=self.launches + other.launches,
        )


@dataclass(frozen=True)
class NDRange:
    """Launch geometry: global/local work sizes (1-D, as Glasswing uses)."""

    global_size: int
    local_size: int = 64

    def __post_init__(self) -> None:
        if self.global_size < 1 or self.local_size < 1:
            raise ValueError("work sizes must be positive")

    @property
    def work_groups(self) -> int:
        return -(-self.global_size // self.local_size)


class Kernel:
    """A named device function: real computation + cost estimator.

    Parameters
    ----------
    name:
        Kernel identifier (for traces).
    fn:
        ``fn(**args) -> result`` — performs the real data transformation.
    cost_fn:
        ``cost_fn(device_spec, args) -> KernelCost`` — resources for one
        launch over those args.  When omitted, a kernel costs one launch
        overhead only (useful for control kernels such as compaction
        markers in tests).
    """

    def __init__(self, name: str,
                 fn: Callable[..., Any],
                 cost_fn: Optional[Callable[[DeviceSpec, Dict[str, Any]], KernelCost]] = None):
        self.name = name
        self.fn = fn
        self.cost_fn = cost_fn

    def cost(self, device: DeviceSpec, args: Dict[str, Any]) -> KernelCost:
        """Cost of one launch of this kernel with ``args`` on ``device``."""
        if self.cost_fn is None:
            return KernelCost()
        return self.cost_fn(device, args)

    def __call__(self, **args: Any) -> Any:
        return self.fn(**args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name!r}>"
