"""Glasswing reproduction: *Scaling MapReduce Vertically and Horizontally* (SC'14).

This package implements the Glasswing MapReduce framework — a 5-stage
pipeline that overlaps disk I/O, host<->device transfers, computation and
network communication — together with every substrate the paper depends on:
a discrete-event simulation kernel (:mod:`repro.simt`), hardware models
(:mod:`repro.hw`), a miniature OpenCL-style runtime (:mod:`repro.ocl`),
local and distributed storage (:mod:`repro.storage`), a network transport
(:mod:`repro.net`), the Glasswing core (:mod:`repro.core`), Hadoop- and
GPMR-style baselines (:mod:`repro.baselines`), the paper's five
applications (:mod:`repro.apps`) and the experiment harness
(:mod:`repro.bench`).

Quickstart::

    from repro.apps import WordCountApp
    from repro.core import JobConfig, run_glasswing
    from repro.hw.presets import das4_cluster

    inputs = {"corpus": b"the quick brown fox\\nthe lazy dog\\n"}
    result = run_glasswing(WordCountApp(), inputs,
                           das4_cluster(nodes=2),
                           JobConfig(chunk_size=1024))
    print(sorted(result.output_pairs()))
"""

from repro.version import __version__

__all__ = ["__version__"]
