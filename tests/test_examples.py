"""Smoke tests: the runnable examples must actually run.

The heavyweight sweeps (tuning_pipeline) are exercised by the benchmark
suite; here the quick examples run as real subprocesses so import errors,
API drift or broken assertions in any example fail the test suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

QUICK = [
    "quickstart.py",
    "gpu_kmeans.py",
    "fault_tolerance.py",
    "inverted_index.py",
    "trace_explain.py",
    "telemetry_walkthrough.py",
]


@pytest.mark.parametrize("script", QUICK)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=240)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = (EXAMPLES / script).read_text()
        assert text.startswith("#!/usr/bin/env python3"), script
        assert '"""' in text, f"{script} lacks a docstring"
