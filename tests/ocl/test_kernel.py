"""Tests for kernel cost model and NDRange."""

import pytest

from repro.hw.presets import CPU_TYPE1, GTX480
from repro.ocl import Kernel, KernelCost, NDRange


def test_compute_bound_cost():
    cost = KernelCost(flops=19e9)  # exactly 1s of CPU_TYPE1 compute
    t = cost.time_on(CPU_TYPE1)
    assert t == pytest.approx(1.0 + CPU_TYPE1.launch_overhead)


def test_memory_bound_cost():
    cost = KernelCost(flops=1e6, device_bytes=20e9)
    t = cost.time_on(CPU_TYPE1)
    # 20 GB over 20 GB/s memory bandwidth dominates the tiny flop count.
    assert t == pytest.approx(1.0 + CPU_TYPE1.launch_overhead)


def test_roofline_takes_max_not_sum():
    cost = KernelCost(flops=19e9, device_bytes=20e9)
    t = cost.time_on(CPU_TYPE1)
    assert t == pytest.approx(1.0 + CPU_TYPE1.launch_overhead)


def test_gpu_much_faster_on_compute():
    cost = KernelCost(flops=38e9)
    assert cost.time_on(CPU_TYPE1) / cost.time_on(GTX480) > 15


def test_atomic_contention_slows_kernel():
    base = KernelCost(flops=1e9)
    contended = KernelCost(flops=1e9, atomic_intensity=0.8)
    assert contended.time_on(GTX480) > base.time_on(GTX480)
    # Fermi pays more for contention than the CPU.
    gpu_ratio = contended.time_on(GTX480) / base.time_on(GTX480)
    cpu_ratio = contended.time_on(CPU_TYPE1) / base.time_on(CPU_TYPE1)
    assert gpu_ratio > cpu_ratio


def test_launch_overhead_scales_with_launches():
    one = KernelCost(launches=1)
    many = KernelCost(launches=1000)
    assert many.time_on(GTX480) == pytest.approx(1000 * one.time_on(GTX480))


def test_cost_validation():
    with pytest.raises(ValueError):
        KernelCost(flops=-1)
    with pytest.raises(ValueError):
        KernelCost(atomic_intensity=1.5)


def test_cost_scaled_and_add():
    a = KernelCost(flops=10, device_bytes=20, atomic_intensity=0.2)
    b = a.scaled(2.0)
    assert b.flops == 20 and b.device_bytes == 40
    c = a + b
    assert c.flops == 30
    assert c.launches == 2
    assert c.atomic_intensity == 0.2


def test_ndrange_work_groups():
    assert NDRange(1000, 64).work_groups == 16
    assert NDRange(1024, 64).work_groups == 16
    assert NDRange(1, 64).work_groups == 1
    with pytest.raises(ValueError):
        NDRange(0)


def test_kernel_executes_real_function():
    k = Kernel("double", lambda xs: [2 * x for x in xs])
    assert k(xs=[1, 2, 3]) == [2, 4, 6]


def test_kernel_default_cost_is_launch_only():
    k = Kernel("noop", lambda: None)
    assert k.cost(CPU_TYPE1, {}).flops == 0
    assert k.cost(CPU_TYPE1, {}).launches == 1


def test_kernel_custom_cost_fn():
    k = Kernel("sized", lambda xs: sum(xs),
               cost_fn=lambda dev, args: KernelCost(flops=len(args["xs"]) * 10.0))
    cost = k.cost(CPU_TYPE1, {"xs": [0] * 100})
    assert cost.flops == 1000.0
