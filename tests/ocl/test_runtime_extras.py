"""Additional coverage for public utilities of the hw/ocl layers."""

import pytest

from repro.hw import Disk, Node
from repro.hw.presets import type1_node
from repro.hw.specs import DeviceKind, DiskSpec
from repro.ocl import CommandQueue, Context, Device, Kernel, KernelCost
from repro.simt import Simulator


def make_ctx(gpu=True):
    sim = Simulator()
    node = Node(sim, type1_node(gpu=gpu), 0)
    dev = Device(sim, node.spec.device(DeviceKind.GPU if gpu
                                       else DeviceKind.CPU), node)
    return sim, node, dev, Context(sim, [dev])


def test_disk_time_for_estimate():
    sim = Simulator()
    disk = Disk(sim, DiskSpec(name="d", read_bw=100e6, write_bw=50e6,
                              seek_time=0.01))
    assert disk.time_for("read", 100_000_000) == pytest.approx(1.01)
    assert disk.time_for("write", 100_000_000) == pytest.approx(2.01)


def test_context_live_buffers_accounting():
    sim, node, dev, ctx = make_ctx()
    assert ctx.live_buffers == 0
    a = ctx.alloc_buffer(dev, 100)
    b = ctx.alloc_buffer(dev, 200)
    assert ctx.live_buffers == 2
    ctx.release(a)
    assert ctx.live_buffers == 1
    ctx.release(b)
    assert ctx.live_buffers == 0


def test_ocl_event_profiling_fields():
    sim, node, dev, ctx = make_ctx()
    q = CommandQueue(ctx, dev)
    k = Kernel("w", lambda: 42, cost_fn=lambda d, a: KernelCost(flops=380e9))
    ev = q.enqueue_kernel(k, {})
    assert not ev.complete
    assert ev.queued == 0.0
    sim.run()
    assert ev.complete
    assert ev.result == 42
    assert ev.started is not None and ev.ended > ev.started
    assert ev.duration == pytest.approx(ev.ended - ev.started)


def test_negative_buffer_size_rejected():
    sim, node, dev, ctx = make_ctx()
    with pytest.raises(ValueError):
        ctx.alloc_buffer(dev, -1)


def test_transfer_direction_validated():
    sim, node, dev, ctx = make_ctx()

    def proc():
        yield from dev.transfer(100, "sideways")

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()


def test_device_kernel_time_estimate():
    sim, node, dev, ctx = make_ctx()
    k = Kernel("w", lambda: None, cost_fn=lambda d, a: KernelCost(flops=380e9))
    est = dev.kernel_time(k, {})
    assert est == pytest.approx(1.0 + dev.spec.launch_overhead, rel=1e-3)
