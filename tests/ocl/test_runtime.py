"""Tests for the mini-OpenCL runtime: devices, buffers, queues, events."""

import pytest

from repro.hw import Node
from repro.hw.presets import type1_node
from repro.ocl import (
    CommandQueue,
    Context,
    Device,
    Kernel,
    KernelCost,
    OCLError,
    OutOfDeviceMemory,
)
from repro.hw.specs import DeviceKind
from repro.simt import Simulator


def make_node(gpu=True):
    sim = Simulator()
    node = Node(sim, type1_node(gpu=gpu), 0)
    return sim, node


def make_devices(sim, node):
    cpu = Device(sim, node.spec.cpu_device, node)
    gpu = Device(sim, node.spec.device(DeviceKind.GPU), node)
    return cpu, gpu


def test_cpu_kernel_runs_on_host_threads():
    sim, node = make_node()
    cpu, _ = make_devices(sim, node)
    ctx = Context(sim, [cpu])
    q = CommandQueue(ctx, cpu)
    # 19 GFLOP = 1 second on the full CPU device.
    k = Kernel("work", lambda: "out", cost_fn=lambda d, a: KernelCost(flops=19e9))
    ev = q.enqueue_kernel(k, {})
    sim.run()
    assert ev.result == "out"
    assert ev.duration == pytest.approx(1.0 + node.spec.cpu_device.launch_overhead,
                                        rel=1e-3)


def test_cpu_kernel_with_fewer_threads_is_slower():
    sim, node = make_node()
    cpu, _ = make_devices(sim, node)
    ctx = Context(sim, [cpu])
    q = CommandQueue(ctx, cpu)
    k = Kernel("work", lambda: None, cost_fn=lambda d, a: KernelCost(flops=19e9))
    ev = q.enqueue_kernel(k, {}, threads=4)  # 4 of 16 threads
    sim.run()
    assert ev.duration == pytest.approx(4.0, rel=1e-2)


def test_gpu_kernel_does_not_use_host_threads():
    sim, node = make_node()
    cpu, gpu = make_devices(sim, node)
    ctx = Context(sim, [cpu, gpu])
    q = CommandQueue(ctx, gpu)
    k = Kernel("work", lambda: None, cost_fn=lambda d, a: KernelCost(flops=380e9))
    busy = []

    def watcher(sim):
        yield sim.timeout(0.5)
        busy.append(node.cpu.demand)

    q.enqueue_kernel(k, {})
    sim.process(watcher(sim))
    sim.run()
    assert busy == [0]  # host threads idle during GPU kernel
    assert sim.now == pytest.approx(1.0 + gpu.spec.launch_overhead, rel=1e-3)


def test_gpu_kernels_serialize_on_exec_engine():
    sim, node = make_node()
    _, gpu = make_devices(sim, node)
    ctx = Context(sim, [gpu])
    q1 = CommandQueue(ctx, gpu)
    q2 = CommandQueue(ctx, gpu)
    k = Kernel("w", lambda: None, cost_fn=lambda d, a: KernelCost(flops=380e9))
    e1 = q1.enqueue_kernel(k, {})
    e2 = q2.enqueue_kernel(k, {})
    sim.run()
    # Two 1-second kernels from different queues share one device engine.
    assert max(e1.ended, e2.ended) == pytest.approx(2.0, rel=1e-2)


def test_in_order_queue_serializes_commands():
    sim, node = make_node()
    cpu, _ = make_devices(sim, node)
    ctx = Context(sim, [cpu])
    q = CommandQueue(ctx, cpu)
    k = Kernel("w", lambda: None, cost_fn=lambda d, a: KernelCost(flops=19e9))
    e1 = q.enqueue_kernel(k, {})
    e2 = q.enqueue_kernel(k, {})
    sim.run()
    assert e2.started >= e1.ended


def test_transfer_time_h2d():
    sim, node = make_node()
    _, gpu = make_devices(sim, node)
    ctx = Context(sim, [gpu])
    q = CommandQueue(ctx, gpu)
    buf = ctx.alloc_buffer(gpu, 55_000_000)
    ev = q.enqueue_write(buf, payload=b"data", nbytes=55_000_000)
    sim.run()
    assert ev.duration == pytest.approx(0.01, rel=1e-2)  # 55MB / 5.5GB/s
    assert buf.payload == b"data"
    assert gpu.bytes_transferred == 55_000_000


def test_unified_memory_transfer_is_free():
    sim, node = make_node()
    cpu, _ = make_devices(sim, node)
    ctx = Context(sim, [cpu])
    q = CommandQueue(ctx, cpu)
    buf = ctx.alloc_buffer(cpu, 10**9)
    ev = q.enqueue_write(buf, payload="x", nbytes=10**9)
    sim.run()
    assert ev.duration == 0.0


def test_read_returns_payload():
    sim, node = make_node()
    _, gpu = make_devices(sim, node)
    ctx = Context(sim, [gpu])
    q = CommandQueue(ctx, gpu)
    buf = ctx.alloc_buffer(gpu, 1000)
    q.enqueue_write(buf, payload=[1, 2, 3], nbytes=1000)
    ev = q.enqueue_read(buf, nbytes=1000)
    sim.run()
    assert ev.result == [1, 2, 3]


def test_device_memory_exhaustion():
    sim, node = make_node()
    _, gpu = make_devices(sim, node)
    ctx = Context(sim, [gpu])
    cap = gpu.spec.device_mem
    ctx.alloc_buffer(gpu, cap - 100)
    with pytest.raises(OutOfDeviceMemory):
        ctx.alloc_buffer(gpu, 200)


def test_buffer_release_returns_memory():
    sim, node = make_node()
    _, gpu = make_devices(sim, node)
    ctx = Context(sim, [gpu])
    buf = ctx.alloc_buffer(gpu, 1000)
    assert gpu.mem_used == 1000
    ctx.release(buf)
    assert gpu.mem_used == 0
    with pytest.raises(OCLError):
        ctx.release(buf)


def test_released_buffer_rejected_by_queue():
    sim, node = make_node()
    _, gpu = make_devices(sim, node)
    ctx = Context(sim, [gpu])
    q = CommandQueue(ctx, gpu)
    buf = ctx.alloc_buffer(gpu, 1000)
    ctx.release(buf)
    with pytest.raises(OCLError):
        q.enqueue_write(buf, payload=None, nbytes=1000)


def test_explicit_event_dependency():
    sim, node = make_node()
    cpu, gpu = make_devices(sim, node)
    ctx = Context(sim, [cpu, gpu])
    qc = CommandQueue(ctx, cpu)
    qg = CommandQueue(ctx, gpu)
    kc = Kernel("c", lambda: None, cost_fn=lambda d, a: KernelCost(flops=19e9))
    kg = Kernel("g", lambda: None, cost_fn=lambda d, a: KernelCost(flops=380e9))
    e1 = qc.enqueue_kernel(kc, {})
    e2 = qg.enqueue_kernel(kg, {}, wait_for=[e1])
    sim.run()
    assert e2.started >= e1.ended


def test_finish_marker():
    sim, node = make_node()
    cpu, _ = make_devices(sim, node)
    ctx = Context(sim, [cpu])
    q = CommandQueue(ctx, cpu)
    k = Kernel("w", lambda: None, cost_fn=lambda d, a: KernelCost(flops=19e9))
    q.enqueue_kernel(k, {})
    done = []

    def proc(sim):
        yield q.finish()
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done[0] >= 1.0


def test_incomplete_event_duration_raises():
    sim, node = make_node()
    cpu, _ = make_devices(sim, node)
    ctx = Context(sim, [cpu])
    q = CommandQueue(ctx, cpu)
    k = Kernel("w", lambda: None, cost_fn=lambda d, a: KernelCost(flops=19e9))
    ev = q.enqueue_kernel(k, {})
    with pytest.raises(OCLError):
        _ = ev.duration


def test_context_requires_devices():
    sim, node = make_node()
    with pytest.raises(OCLError):
        Context(sim, [])
