"""Tests for the service trace-replay bench and its regression gate.

The committed 200-job ``BENCH_service.json`` is replayed in CI by
``python -m repro.bench.regress``; these tests pin the machinery on a
reduced trace so they stay cheap: the replay is deterministic, the gate
passes against a just-measured baseline, and an injected host-cost
slowdown trips it.
"""

import json
from dataclasses import replace

from repro.bench.regress import (SERVICE_TOLERANCES, main,
                                 run_service_regress)
from repro.bench.service import service_point
from repro.core.costs import DEFAULT_HOST_COSTS

SMALL_JOBS = 10


def strip_wall(point):
    return {k: v for k, v in point.items() if k != "wall_s"}


def write_baseline(tmp_path, points):
    path = tmp_path / "BENCH_service.json"
    path.write_text(json.dumps({"points": points}))
    return str(path)


def test_service_point_is_deterministic():
    first = service_point("fair-share", n_jobs=SMALL_JOBS)
    second = service_point("fair-share", n_jobs=SMALL_JOBS)
    assert strip_wall(first) == strip_wall(second)
    assert first["completed"] == SMALL_JOBS
    assert first["leaked_buffer_slots"] == 0


def test_service_regress_passes_against_fresh_baseline(tmp_path):
    points = [service_point(a, n_jobs=SMALL_JOBS)
              for a in ("fair-share", "lpt")]
    result = run_service_regress(write_baseline(tmp_path, points))
    assert result["ok"], result["failures"]
    assert result["points"] == 2
    assert len(result["comparisons"]) == 2 * len(SERVICE_TOLERANCES)


def test_service_regress_detects_injected_slowdown(tmp_path):
    baseline = write_baseline(
        tmp_path, [service_point("fair-share", n_jobs=SMALL_JOBS)])
    slow = replace(DEFAULT_HOST_COSTS,
                   sort_item=DEFAULT_HOST_COSTS.sort_item * 10)
    result = run_service_regress(baseline, costs=slow)
    assert not result["ok"]
    failed = {r["metric"] for r in result["failures"]}
    assert "makespan_s" in failed


def test_cli_gates_on_service_baseline(tmp_path, capsys):
    doctored = [service_point("fair-share", n_jobs=SMALL_JOBS)]
    doctored[0]["makespan_s"] *= 2.0
    doctored[0]["throughput_jobs_per_s"] /= 2.0
    rc = main(["--nodes", "1",
               "--service-baseline", write_baseline(tmp_path, doctored)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "service:fair-share" in out


def test_cli_skips_service_when_baseline_absent(tmp_path, capsys,
                                                monkeypatch):
    """An older checkout without BENCH_service.json still gates scaling."""
    import shutil
    shutil.copy("BENCH_scaling.json", tmp_path / "BENCH_scaling.json")
    monkeypatch.chdir(tmp_path)
    rc = main(["--nodes", "1"])
    assert rc == 0
    assert "service replay skipped" in capsys.readouterr().out
