"""Tests for the standard bench workloads."""

import numpy as np

from repro.bench import workloads


def test_inputs_are_cached():
    a = workloads.wc_input()
    b = workloads.wc_input()
    assert a is b  # lru_cache: same object, no regeneration


def test_sizes_match_declared_scale():
    assert abs(len(workloads.wc_input()["wiki"]) - workloads.WC_BYTES) \
        < 0.3 * workloads.WC_BYTES
    assert len(workloads.ts_input()["teragen"]) == workloads.TS_RECORDS * 100
    pts = workloads.km_points()
    assert len(pts["points"]) == workloads.KM_POINTS * workloads.KM_DIMS * 4


def test_km_app_paper_operating_point():
    app = workloads.km_app_paper()
    assert app.k == workloads.KM_CENTERS_REAL
    assert app.cost_scale == workloads.KM_COST_SCALE
    # Effective center count equals the paper's 4096.
    assert app.k * app.cost_scale == workloads.KM_CENTERS_PAPER


def test_mm_app_paper_operating_point():
    app = workloads.mm_app_paper()
    assert app.tile == workloads.MM_TILE
    assert app.cost_scale == workloads.MM_COST_SCALE


def test_mm_input_is_consistent():
    inputs, a, b = workloads.mm_input(256, 128)
    app_rec = 12 + 2 * 128 * 128 * 4
    tasks = (256 // 128) ** 3
    assert len(inputs["tasks"]) == app_rec * tasks
    assert a.shape == (256, 256) and b.dtype == np.float32


def test_cost_scale_multiplies_kernel_flops():
    from repro.apps import KMeansApp
    from repro.hw.presets import CPU_TYPE1
    centers = workloads.km_centers(16)
    plain = KMeansApp(centers).map_cost(CPU_TYPE1, 100, 1600)
    scaled = KMeansApp(centers, cost_scale=4.0).map_cost(CPU_TYPE1, 100, 1600)
    assert scaled.flops == 4 * plain.flops
    assert scaled.device_bytes == plain.device_bytes  # bytes unchanged
