"""Tests for the DAG/iterative acceptance bench and its regression gate.

The committed ``BENCH_dag.json`` is replayed in CI by
``python -m repro.bench.regress``; these tests pin the machinery on
reduced shapes so they stay cheap: the points are deterministic, the
gate passes against a just-measured baseline, and an injected host-cost
slowdown trips it.
"""

import json
from dataclasses import replace

from repro.bench.dag import kmeans_point, prefixsum_point
from repro.bench.regress import DAG_TOLERANCES, main, run_dag_regress
from repro.core.costs import DEFAULT_HOST_COSTS

# Small shapes: enough rounds for the cache to matter, cheap to re-run.
KM_SMALL = dict(n_points=4_000, rounds=3)
PS_SMALL = dict(n_values=10_000)


def strip_wall(point):
    return {k: v for k, v in point.items() if k != "wall_s"}


def write_baseline(tmp_path, points):
    path = tmp_path / "BENCH_dag.json"
    path.write_text(json.dumps({"points": points}))
    return str(path)


def test_kmeans_point_is_deterministic():
    first = kmeans_point(**KM_SMALL)
    second = kmeans_point(**KM_SMALL)
    assert strip_wall(first) == strip_wall(second)
    assert first["identical_output"]
    assert first["cache_hit_bytes"] > 0


def test_dag_regress_passes_against_fresh_baseline(tmp_path):
    points = [kmeans_point(**KM_SMALL), prefixsum_point(**PS_SMALL)]
    result = run_dag_regress(write_baseline(tmp_path, points))
    assert result["ok"], result["failures"]
    assert result["points"] == 2
    # kmeans carries 3 extra metrics, prefixsum 1, on the shared 4.
    assert len(result["comparisons"]) == 2 * len(DAG_TOLERANCES) + 3 + 1


def test_dag_regress_detects_injected_slowdown(tmp_path):
    baseline = write_baseline(tmp_path, [prefixsum_point(**PS_SMALL)])
    # Per-item costs are noise next to I/O at this shape; the per-push
    # shuffle overhead dominates, so inflating it is a real slowdown.
    slow = replace(DEFAULT_HOST_COSTS,
                   push_overhead=DEFAULT_HOST_COSTS.push_overhead * 10)
    result = run_dag_regress(baseline, costs=slow)
    assert not result["ok"]
    failed = {r["metric"] for r in result["failures"]}
    assert "elapsed_s" in failed


def test_dag_regress_rejects_unknown_point(tmp_path):
    import pytest
    baseline = write_baseline(tmp_path, [{"app": "dag:mystery"}])
    with pytest.raises(ValueError, match="unknown dag point"):
        run_dag_regress(baseline)


def test_cli_gates_on_dag_baseline(tmp_path, capsys):
    doctored = [prefixsum_point(**PS_SMALL)]
    doctored[0]["elapsed_s"] *= 2.0
    rc = main(["--nodes", "1", "--skip-service",
               "--dag-baseline", write_baseline(tmp_path, doctored)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "dag:prefixsum" in out


def test_cli_skips_dag_when_baseline_absent(tmp_path, capsys, monkeypatch):
    """An older checkout without BENCH_dag.json still gates scaling."""
    import shutil
    shutil.copy("BENCH_scaling.json", tmp_path / "BENCH_scaling.json")
    monkeypatch.chdir(tmp_path)
    rc = main(["--nodes", "1"])
    assert rc == 0
    assert "dag replay skipped" in capsys.readouterr().out
