"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.bench.gantt import render_gantt
from repro.simt import Timeline


def make_timeline():
    tl = Timeline()
    tl.record("map.input", "node0", 0.0, 5.0)
    tl.record("map.kernel", "node0", 2.0, 10.0)
    tl.record("map.output", "node0", 8.0, 10.0)
    tl.record("reduce.kernel", "node0", 11.0, 12.0)
    tl.record("map.kernel", "node1", 0.0, 20.0)
    return tl


def test_renders_one_row_per_category():
    out = render_gantt(make_timeline(), prefix="map.", node="node0")
    lines = out.splitlines()
    assert len(lines) == 4  # header + 3 categories
    assert any(l.startswith("map.input") for l in lines)
    assert any(l.startswith("map.kernel") for l in lines)
    assert "reduce.kernel" not in out


def test_full_interval_is_solid():
    tl = Timeline()
    tl.record("x", "n", 0.0, 10.0)
    out = render_gantt(tl, width=10)
    row = out.splitlines()[1]
    assert row.endswith("█" * 10)


def test_idle_cells_are_dots():
    tl = Timeline()
    tl.record("x", "n", 0.0, 1.0)
    tl.record("x", "n", 9.0, 10.0)
    out = render_gantt(tl, width=10)
    row = out.splitlines()[1].split()[-1]
    assert "·" in row


def test_node_filter():
    out0 = render_gantt(make_timeline(), prefix="map.", node="node0")
    out1 = render_gantt(make_timeline(), prefix="map.", node="node1")
    assert "map.input" in out0
    assert "map.input" not in out1  # node1 only has kernel spans


def test_explicit_categories():
    out = render_gantt(make_timeline(), categories=["map.kernel"],
                       node="node0")
    assert out.count("map.") == 1


def test_empty_selection():
    assert render_gantt(Timeline()) == "(no spans to render)"


def test_width_validation():
    with pytest.raises(ValueError):
        render_gantt(make_timeline(), width=2)


def test_real_job_timeline_renders():
    from repro.apps import WordCountApp
    from repro.apps.datagen import wiki_text
    from repro.core import JobConfig, run_glasswing
    from repro.hw.presets import das4_cluster

    res = run_glasswing(WordCountApp(), {"f": wiki_text(200_000, seed=151)},
                        das4_cluster(nodes=1),
                        JobConfig(chunk_size=32_768, storage="local"))
    out = render_gantt(res.timeline, prefix="map.", node="node0")
    assert "map.kernel" in out
    assert len(out.splitlines()) >= 4
