"""Tests for the horizontal scaling sweep (``repro.bench.scaling``).

A micro sweep (tiny node counts, no 64-node comparison) keeps the test
fast while still exercising the real pipeline end to end: every sweep
point is a full simulated job.  The wall-clock speedup itself is only
asserted by the full benchmark run — wall time on a shared CI machine
is not a stable test subject — but its *plumbing* (comparison record,
check emission) is.
"""

import json

import pytest

from repro.bench import scaling

MICRO_NODES = (1, 2, 4)


@pytest.fixture(scope="module")
def micro(tmp_path_factory):
    path = tmp_path_factory.mktemp("scaling") / "BENCH_scaling.json"
    rep = scaling.report(nodes=MICRO_NODES, json_path=str(path))
    return rep, json.loads(path.read_text())


def test_micro_sweep_checks_pass(micro):
    rep, _ = micro
    assert rep.all_passed, [c.name for c in rep.checks if not c.passed]


def test_json_structure(micro):
    _, payload = micro
    assert payload["nodes_swept"] == list(MICRO_NODES)
    assert payload["per_node_bytes"] == scaling.PER_NODE_BYTES
    assert "wordcount_64_batched" in payload["wall_budget_s"]
    assert len(payload["sweep"]) == 2 * len(MICRO_NODES)
    apps = {p["app"] for p in payload["sweep"]}
    assert apps == {"wordcount", "terasort"}
    for p in payload["sweep"]:
        assert p["elapsed_s"] > 0
        assert p["wall_s"] > 0
        assert p["leaked_buffer_slots"] == 0
        assert p["batch_autotuned"] is True
        for phase in ("map_pipeline", "reduce_pipeline"):
            assert 0 < p[phase]["dominant_share"] <= 1.0
            assert p[phase]["overlap_factor"] >= p[phase]["dominant_share"]
    # No 64-node point in the micro sweep -> no comparison block.
    assert payload["batch_comparison"] is None
    assert all(c["passed"] for c in payload["checks"])


def test_sweep_point_records_granularity():
    p1 = scaling.sweep_point("wordcount", 2, batch_size=1)
    pb = scaling.sweep_point("wordcount", 2)
    assert p1["batch_size"] == 1 and not p1["batch_autotuned"]
    assert pb["batch_autotuned"] and pb["batch_size"] > 1
    # (Byte equality across granularities is the differential harness's
    # job, under the strict additive-cost tier; the default config's
    # combiner output is legitimately launch-granularity dependent.)
    assert p1["network_bytes"] > 0 and pb["network_bytes"] > 0


def test_weak_scaling_input_grows_linearly():
    a = scaling.sweep_point("terasort", 1)
    b = scaling.sweep_point("terasort", 4)
    # (== up to the fixed-size-record floor in teragen sizing)
    assert b["input_bytes"] == pytest.approx(4 * a["input_bytes"], rel=0.01)
    # Fixed per-node work: elapsed grows far slower than cluster size.
    assert b["elapsed_s"] < 4 * a["elapsed_s"]
