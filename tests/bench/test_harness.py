"""Tests for the experiment harness (tables, checks, reports)."""

import pytest

from repro.bench.harness import (ExperimentReport, ShapeCheck, Table,
                                 fmt_seconds, parallel_efficiency, speedups)


# ------------------------------------------------------------------ Table
def test_table_rendering_aligns():
    t = Table("demo", ["nodes", "time_s"])
    t.add_row(nodes=1, time_s=1.2345)
    t.add_row(nodes=64, time_s=0.001234)
    out = t.render()
    assert "demo" in out
    assert "nodes" in out and "time_s" in out
    assert "1.23" in out
    assert "0.0012" in out


def test_table_rejects_unknown_columns():
    t = Table("x", ["a"])
    with pytest.raises(KeyError):
        t.add_row(b=1)


def test_table_column_extraction():
    t = Table("x", ["a", "b"])
    t.add_row(a=1, b=2)
    t.add_row(a=3)
    assert t.column("a") == [1, 3]
    assert t.column("b") == [2, None]
    with pytest.raises(KeyError):
        t.column("c")


def test_fmt_seconds_scales():
    assert fmt_seconds(0) == "0"
    assert fmt_seconds(123.456) == "123"
    assert fmt_seconds(1.5) == "1.50"
    assert fmt_seconds(0.01234) == "0.0123"
    assert fmt_seconds(7) == "7"          # ints stay ints
    assert fmt_seconds("label") == "label"


# ----------------------------------------------------------------- checks
def test_report_check_accumulates():
    rep = ExperimentReport("Exp", "claim")
    rep.check("good", True)
    rep.check("bad", False, "detail here")
    assert not rep.all_passed
    assert len(rep.failed_checks()) == 1
    assert "detail here" in str(rep.failed_checks()[0])


def test_report_assert_shape_raises_on_failure():
    rep = ExperimentReport("Exp", "claim")
    rep.check("bad", False)
    with pytest.raises(AssertionError, match="Exp"):
        rep.assert_shape()


def test_report_assert_shape_passes():
    rep = ExperimentReport("Exp", "claim")
    rep.check("good", True)
    rep.assert_shape()


def test_report_render_contains_everything():
    rep = ExperimentReport("Figure X", "the claim")
    t = Table("numbers", ["v"])
    t.add_row(v=42)
    rep.tables.append(t)
    rep.check("a check", True, "info")
    rep.notes.append("a note")
    out = rep.render()
    for fragment in ("Figure X", "the claim", "numbers", "42",
                     "[PASS] a check", "note: a note"):
        assert fragment in out


# ----------------------------------------------------------------- traces
def test_report_exports_attached_timelines(tmp_path):
    import json
    from repro.simt import Timeline

    rep = ExperimentReport("Table II — demo", "claim")
    tl = Timeline()
    tl.record("map.kernel", "node0", 0.0, 1.0)
    rep.attach_timeline("hash+combiner", tl)
    paths = rep.export_traces(str(tmp_path))
    assert len(paths) == 1
    assert paths[0].endswith("table-ii---demo-hash-combiner.trace.json")
    trace = json.loads(open(paths[0]).read())
    assert any(e.get("ph") == "X" for e in trace["traceEvents"])


def test_report_without_timelines_exports_nothing(tmp_path):
    rep = ExperimentReport("Exp", "claim")
    assert rep.export_traces(str(tmp_path)) == []


# ---------------------------------------------------------------- helpers
def test_speedups_relative_to_first():
    assert speedups([10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]
    assert speedups([]) == []


def test_parallel_efficiency():
    # Perfect scaling 1 -> 4 nodes: efficiency 1.0.
    assert parallel_efficiency([1, 4], [8.0, 2.0]) == pytest.approx(1.0)
    # Half-efficient.
    assert parallel_efficiency([1, 4], [8.0, 4.0]) == pytest.approx(0.5)
    assert parallel_efficiency([2], [1.0]) == 1.0
