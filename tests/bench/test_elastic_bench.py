"""Tests for the elastic chaos bench and its regression gate.

The committed ``BENCH_elastic.json`` is replayed in CI by
``python -m repro.bench.regress``; these tests pin the machinery on a
reduced input so they stay cheap: each chaos point is deterministic and
byte-identical, the gate passes against a just-measured baseline, and
injected drift — both a host-cost slowdown and a doctored invariant —
trips it.
"""

import json
from dataclasses import replace

from repro.bench.elastic import (FAILOVER_TIMEOUT, double_point,
                                 elastic_point, failover_point, halve_point)
from repro.bench.regress import (ELASTIC_TOLERANCES, main,
                                 run_elastic_regress)
from repro.core.costs import DEFAULT_HOST_COSTS

KB_SMALL = 48


def strip_wall(point):
    return {k: v for k, v in point.items() if k != "wall_s"}


def write_baseline(tmp_path, points):
    path = tmp_path / "BENCH_elastic.json"
    path.write_text(json.dumps({"points": points}))
    return str(path)


def test_every_point_is_deterministic_and_invariant():
    for maker in (double_point, halve_point, failover_point):
        first = maker(kilobytes=KB_SMALL)
        second = maker(kilobytes=KB_SMALL)
        assert strip_wall(first) == strip_wall(second)
        assert first["identical_output"]
        assert first["leaked_buffer_slots"] == 0


def test_point_shapes_carry_their_invariants():
    double = double_point(kilobytes=KB_SMALL)
    assert double["joined"] == 4
    halve = halve_point(kilobytes=KB_SMALL)
    assert halve["departed"] == 4
    assert halve["repushed_runs"] > 0
    failover = failover_point(kilobytes=KB_SMALL)
    assert failover["failovers"] == 2
    assert abs(failover["overhead_s"] - 2 * FAILOVER_TIMEOUT) < 1e-12


def test_elastic_point_dispatcher_round_trips():
    point = elastic_point("elastic:halve", kilobytes=KB_SMALL)
    assert point["app"] == "elastic:halve"
    try:
        elastic_point("elastic:nope")
    except ValueError:
        pass
    else:
        raise AssertionError("unknown point label must raise")


def test_elastic_regress_passes_against_fresh_baseline(tmp_path):
    points = [double_point(kilobytes=KB_SMALL),
              halve_point(kilobytes=KB_SMALL),
              failover_point(kilobytes=KB_SMALL)]
    result = run_elastic_regress(write_baseline(tmp_path, points))
    assert result["ok"], result["failures"]
    assert result["points"] == 3
    # Every gated metric drifted exactly 0%.
    assert all(r["deviation"] == 0.0 for r in result["comparisons"])
    # double adds 2 extras, halve 4, failover 2, on the shared 5.
    assert len(result["comparisons"]) == 3 * len(ELASTIC_TOLERANCES) + 8


def test_elastic_regress_detects_injected_slowdown(tmp_path):
    baseline = write_baseline(tmp_path, [halve_point(kilobytes=KB_SMALL)])
    slow = replace(DEFAULT_HOST_COSTS,
                   push_overhead=DEFAULT_HOST_COSTS.push_overhead * 10)
    result = run_elastic_regress(baseline, costs=slow)
    assert not result["ok"]
    assert "elapsed_s" in {r["metric"] for r in result["failures"]}


def test_elastic_regress_detects_doctored_invariant(tmp_path):
    """A baseline claiming different bookkeeping (one more drain) must
    fail the zero-tolerance membership metrics, not slip through."""
    point = halve_point(kilobytes=KB_SMALL)
    point["departed"] += 1
    point["network_bytes"] += 1
    result = run_elastic_regress(write_baseline(tmp_path, [point]))
    assert not result["ok"]
    failed = {r["metric"] for r in result["failures"]}
    assert {"departed", "network_bytes"} <= failed


def test_elastic_regress_rejects_unknown_point(tmp_path):
    path = write_baseline(tmp_path, [{"app": "elastic:mystery",
                                      "nodes": 8, "kilobytes": 8}])
    try:
        run_elastic_regress(path)
    except ValueError as exc:
        assert "mystery" in str(exc)
    else:
        raise AssertionError("unknown baseline point must raise")


def test_cli_replays_elastic_baseline(tmp_path, capsys):
    baseline = write_baseline(tmp_path, [failover_point(kilobytes=KB_SMALL)])
    out = tmp_path / "regress.json"
    rc = main(["--skip-service", "--skip-dag",
               "--elastic-baseline", baseline, "--json", str(out)])
    assert rc == 0, capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["elastic"]["ok"]
    assert payload["elastic"]["points"] == 1
