"""Tests for the ``python -m repro.bench`` entry point (stubbed)."""

import pathlib

import pytest

from repro.bench import __main__ as bench_main
from repro.bench.harness import ExperimentReport, Table


def make_stub(passed=True):
    rep = ExperimentReport("Stub Exp", "stub claim")
    t = Table("stub", ["v"])
    t.add_row(v=1.5)
    rep.tables.append(t)
    rep.check("stub check", passed, "details")
    return rep


def test_all_names_dispatch(monkeypatch):
    """Every advertised experiment name resolves to report(s)."""
    for name in bench_main.ALL:
        # Patch every heavy entry point to stubs.
        pass  # dispatch is exercised via main() below with monkeypatching


def test_main_prints_and_succeeds(monkeypatch, capsys):
    monkeypatch.setattr(bench_main, "_reports",
                        lambda name, quick: [make_stub(True)])
    rc = bench_main.main(["table1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Stub Exp" in out
    assert "[PASS] stub check" in out


def test_main_reports_failures(monkeypatch, capsys):
    monkeypatch.setattr(bench_main, "_reports",
                        lambda name, quick: [make_stub(False)])
    rc = bench_main.main(["fig2"])
    assert rc == 1


def test_main_writes_output_dir(monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(bench_main, "_reports",
                        lambda name, quick: [make_stub(True)])
    rc = bench_main.main(["fig5", "--output", str(tmp_path / "reports")])
    assert rc == 0
    written = pathlib.Path(tmp_path / "reports" / "fig5.md")
    assert written.exists()
    text = written.read_text()
    assert "Stub Exp" in text


def test_main_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        bench_main.main(["fig99"])


def test_quick_flag_passes_through(monkeypatch):
    seen = {}

    def fake(name, quick):
        seen["quick"] = quick
        return [make_stub(True)]

    monkeypatch.setattr(bench_main, "_reports", fake)
    bench_main.main(["fig3", "--quick"])
    assert seen["quick"] is True


def test_reports_dispatch_names_are_importable():
    """The dispatch table's modules all import (no lazy breakage)."""
    import importlib
    for mod in ("table1", "fig2", "fig3", "table2", "table3", "fig4",
                "fig5", "vertical", "ablation"):
        importlib.import_module(f"repro.bench.{mod}")
