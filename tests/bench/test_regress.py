"""Tests for the bench regression gate (python -m repro.bench.regress)."""

import json
from dataclasses import replace

import pytest

from repro.bench.regress import (DEFAULT_TOLERANCES, compare_point, main,
                                 run_regress)
from repro.core.costs import DEFAULT_HOST_COSTS

BASELINE = "BENCH_scaling.json"
SMALL = (1, 4)      # replayed points stay cheap in CI


# ------------------------------------------------------------- unit level
def _point(elapsed=1.0, nbytes=1000, overlap=1.5, app="wordcount", nodes=4):
    return {"app": app, "nodes": nodes, "elapsed_s": elapsed,
            "network_bytes": nbytes,
            "map_pipeline": {"overlap_factor": overlap}}


def test_compare_point_within_tolerance():
    rows = compare_point(_point(), _point(elapsed=1.01),
                         DEFAULT_TOLERANCES)
    assert all(r["ok"] for r in rows)


def test_compare_point_flags_each_metric():
    rows = compare_point(
        _point(),
        _point(elapsed=1.5, nbytes=1001, overlap=1.6),
        DEFAULT_TOLERANCES)
    assert [r["metric"] for r in rows if not r["ok"]] == \
        ["elapsed_s", "network_bytes", "overlap_factor"]


def test_compare_point_zero_baseline():
    rows = compare_point(_point(nbytes=0), _point(nbytes=0),
                         DEFAULT_TOLERANCES)
    assert all(r["ok"] for r in rows)
    rows = compare_point(_point(nbytes=0), _point(nbytes=5),
                         DEFAULT_TOLERANCES)
    assert not [r for r in rows if r["metric"] == "network_bytes"][0]["ok"]


# ------------------------------------------------- against the committed baseline
def test_regress_passes_on_committed_baseline():
    result = run_regress(BASELINE, nodes=SMALL)
    assert result["ok"], result["failures"]
    assert result["points"] == 2 * len(SMALL)   # both apps


def test_regress_detects_injected_slowdown():
    slow = replace(DEFAULT_HOST_COSTS,
                   sort_item=DEFAULT_HOST_COSTS.sort_item * 10)
    result = run_regress(BASELINE, nodes=(1,), costs=slow)
    assert not result["ok"]
    assert result["failures"]


def test_regress_explains_drift_with_root_causes():
    """A drift failure carries one explain-diff per drifted point, and
    the injected slowdown's stage is the #1 cause."""
    slow = replace(DEFAULT_HOST_COSTS,
                   sort_item=DEFAULT_HOST_COSTS.sort_item * 10)
    result = run_regress(BASELINE, nodes=(4,), cases=("wordcount",),
                         costs=slow)
    assert not result["ok"]
    assert len(result["explanations"]) == 1
    entry = result["explanations"][0]
    assert (entry["app"], entry["nodes"]) == ("wordcount", 4)
    diff = entry["diff"]
    assert diff["schema"] == "glasswing-causal-diff/1"
    top = diff["causes"][0]
    assert top["stage"] == "map.partition_cpu"
    assert top["wait_class"] == "self"


def test_regress_passing_points_carry_no_explanations():
    result = run_regress(BASELINE, nodes=(1,), cases=("wordcount",))
    assert result["ok"]
    assert result["explanations"] == []


def test_regress_notes_baselines_without_causal(tmp_path):
    """Pre-causal baselines still fail cleanly, with a regenerate hint."""
    doctored = json.loads(open(BASELINE, encoding="utf-8").read())
    doctored["sweep"] = [p for p in doctored["sweep"]
                         if (p["app"], p["nodes"]) == ("wordcount", 1)]
    doctored["sweep"][0].pop("causal")
    doctored["sweep"][0]["elapsed_s"] *= 2.0
    path = tmp_path / "old-baseline.json"
    path.write_text(json.dumps(doctored))
    result = run_regress(str(path), nodes=(1,))
    assert not result["ok"]
    assert "regenerate" in result["explanations"][0]["note"]


def test_regress_rejects_empty_selection():
    with pytest.raises(ValueError, match="no baseline points"):
        run_regress(BASELINE, nodes=(3,))


# ------------------------------------------------------------- CLI level
def test_cli_passes_and_writes_json(tmp_path, capsys):
    out = tmp_path / "sub" / "regress.json"
    rc = main(["--nodes", "1", "--json", str(out), "--skip-service"])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert out.read_text() == json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n"


def test_cli_fails_on_doctored_baseline(tmp_path, capsys):
    doctored = json.loads(open(BASELINE, encoding="utf-8").read())
    for p in doctored["sweep"]:
        p["elapsed_s"] *= 2.0
        # drift the causal profile too, so the explainer has causes
        for stage in p["causal"]["stages"].values():
            stage["self_s"] *= 2.0
    path = tmp_path / "doctored.json"
    path.write_text(json.dumps(doctored))
    rc = main(["--baseline", str(path), "--nodes", "1", "--skip-service"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    # the gate explains itself: a root-cause table per drifted point
    assert "root cause" in out
    assert "wait class" in out


def test_cli_json_out_writes_machine_readable_result(tmp_path, capsys):
    out = tmp_path / "deep" / "nested" / "result.json"
    rc = main(["--nodes", "1", "--case", "wordcount",
               "--json-out", str(out),
               "--skip-service", "--skip-dag", "--skip-elastic"])
    assert rc == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    # sorted keys, trailing newline: diff- and artifact-stable
    assert out.read_text() == json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n"


def test_cli_json_and_json_out_agree(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    rc = main(["--nodes", "1", "--case", "wordcount",
               "--json", str(a), "--json-out", str(b),
               "--skip-service", "--skip-dag", "--skip-elastic"])
    assert rc == 0
    capsys.readouterr()
    assert a.read_text() == b.read_text()


def test_cli_missing_baseline_is_an_error(tmp_path, capsys):
    rc = main(["--baseline", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "regress:" in capsys.readouterr().err
