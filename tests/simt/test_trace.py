"""Unit tests for the Timeline/Span tracing machinery."""

import pytest

from repro.simt import Timeline


def test_record_and_duration():
    tl = Timeline()
    s = tl.record("map.kernel", "n0", 1.0, 4.0, chunk=7)
    assert s.duration == 3.0
    assert s.meta["chunk"] == 7
    assert len(tl) == 1


def test_record_rejects_negative_duration():
    tl = Timeline()
    with pytest.raises(ValueError):
        tl.record("x", "n0", 5.0, 4.0)


def test_busy_time_counts_parallel_work_multiply():
    tl = Timeline()
    tl.record("part", "t0", 0.0, 10.0)
    tl.record("part", "t1", 0.0, 10.0)
    assert tl.busy_time("part") == 20.0


def test_occupied_time_merges_overlap():
    tl = Timeline()
    tl.record("part", "t0", 0.0, 10.0)
    tl.record("part", "t1", 5.0, 12.0)
    tl.record("part", "t2", 20.0, 25.0)
    assert tl.occupied_time("part") == 17.0


def test_occupied_time_touching_intervals():
    tl = Timeline()
    tl.record("x", "a", 0.0, 5.0)
    tl.record("x", "a", 5.0, 10.0)
    assert tl.occupied_time("x") == 10.0


def test_span_extent():
    tl = Timeline()
    tl.record("io", "a", 2.0, 3.0)
    tl.record("io", "b", 10.0, 11.0)
    assert tl.span_extent("io") == 9.0
    assert tl.span_extent("missing") == 0.0


def test_filter_by_name():
    tl = Timeline()
    tl.record("k", "n0", 0.0, 1.0)
    tl.record("k", "n1", 0.0, 2.0)
    assert tl.busy_time("k", name="n1") == 2.0
    assert tl.busy_time("k") == 3.0


def test_first_start_last_end():
    tl = Timeline()
    tl.record("m", "a", 3.0, 4.0)
    tl.record("m", "a", 1.0, 2.0)
    assert tl.first_start("m") == 1.0
    assert tl.last_end("m") == 4.0
    assert tl.first_start("none") == float("inf")
    assert tl.last_end("none") == 0.0


def test_merge_timelines():
    a, b = Timeline(), Timeline()
    a.record("x", "1", 0.0, 1.0)
    b.record("y", "2", 1.0, 2.0)
    a.merge(b)
    assert a.categories() == ["x", "y"]


def test_breakdown_prefix_filter():
    tl = Timeline()
    tl.record("map.input", "n0", 0.0, 2.0)
    tl.record("map.kernel", "n0", 1.0, 5.0)
    tl.record("reduce.kernel", "n0", 6.0, 7.0)
    bd = tl.breakdown("map.")
    assert set(bd) == {"map.input", "map.kernel"}
    assert bd["map.kernel"] == 4.0


def test_span_overlap_predicate():
    tl = Timeline()
    a = tl.record("x", "a", 0.0, 5.0)
    b = tl.record("x", "b", 4.0, 6.0)
    c = tl.record("x", "c", 5.0, 7.0)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_zero_length_spans():
    """Markers (pass-through stages) are legal and cost no occupied time."""
    tl = Timeline()
    s = tl.record("map.stage", "n0", 2.0, 2.0, passthrough=True)
    assert s.duration == 0.0
    assert tl.occupied_time("map.stage") == 0.0
    assert tl.busy_time("map.stage") == 0.0
    # A marker inside a real span must not change the union either.
    tl.record("map.stage", "n0", 0.0, 4.0)
    assert tl.occupied_time("map.stage") == 4.0


def test_zero_length_span_extent():
    """Extent of nothing-but-markers is zero; markers still move edges."""
    tl = Timeline()
    tl.record("m", "a", 3.0, 3.0)
    assert tl.span_extent("m") == 0.0
    tl.record("m", "a", 1.0, 2.0)
    assert tl.span_extent("m") == 2.0   # marker at 3.0 extends the window


def test_occupied_time_name_none_merges_across_nodes():
    """With name=None the union covers *all* instances — two nodes busy
    in the same window count once, unlike busy_time."""
    tl = Timeline()
    tl.record("map.kernel", "node0", 0.0, 4.0)
    tl.record("map.kernel", "node1", 2.0, 6.0)
    tl.record("map.kernel", "node1", 8.0, 9.0)
    assert tl.busy_time("map.kernel") == 9.0
    assert tl.occupied_time("map.kernel") == 7.0
    assert tl.occupied_time("map.kernel", name="node0") == 4.0
    assert tl.occupied_time("map.kernel", name="node1") == 5.0
