"""Edge cases of the sync primitives: cancellation, close, invariants."""

from hypothesis import given, settings, strategies as st

from repro.simt import BufferPool, Resource, Simulator, Store
from repro.simt.resources import StoreClosed


# ---------------------------------------------------------- Resource.cancel
def test_cancel_of_queued_head_wakes_followers():
    """Cancelling a large head request must re-scan the FIFO: a smaller
    satisfiable waiter behind it would otherwise stay parked until the
    next release."""
    sim = Simulator()
    res = Resource(sim, capacity=4)
    held = res.acquire(3)
    assert held.triggered
    big = res.acquire(4)        # queued head (never satisfiable now)
    small = res.acquire(1)      # queued behind the head
    assert not big.triggered and not small.triggered
    res.cancel(big)
    assert small.triggered
    assert res.in_use == 4
    assert res.queue_length() == 0


def test_cancel_of_non_head_waiter_just_removes_it():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    res.acquire(2)
    first = res.acquire(2)
    second = res.acquire(1)
    res.cancel(second)
    assert res.queue_length() == 1
    assert not first.triggered
    res.release(2)
    assert first.triggered


def test_cancel_of_granted_request_releases_tokens():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    granted = res.acquire(2)
    waiter = res.acquire(1)
    assert granted.triggered and not waiter.triggered
    res.cancel(granted)
    assert waiter.triggered
    assert res.in_use == 1


def test_cancel_of_unknown_request_is_a_noop():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    res.acquire(1)
    from repro.simt.core import Event
    stray = Event(sim)          # never issued by this resource
    res.cancel(stray)
    assert res.in_use == 1


# ---------------------------------------------------------- Store.close
def test_store_close_with_items_still_queued():
    """close() is end-of-stream, not discard: buffered items drain first."""
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    store.close()
    assert store.probe() == {"depth": 2, "capacity": None, "getters": 0,
                             "putters": 0, "closed": True}
    g1, g2, g3 = store.get(), store.get(), store.get()
    assert (g1.value, g2.value) == ("a", "b")
    assert not g3.ok and isinstance(g3.value, StoreClosed)


def test_store_close_with_putters_queued():
    """A bounded store's queued putters complete as getters drain, even
    after close — their data was accepted before end-of-stream."""
    sim = Simulator()
    store = Store(sim, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")         # over capacity: parked
    assert p1.triggered and not p2.triggered
    store.close()
    assert store.probe()["putters"] == 1
    assert store.get().value == "a"
    assert p2.triggered         # admitted by the freed slot
    assert store.get().value == "b"
    assert not store.get().ok


def test_store_close_fails_waiting_getters():
    sim = Simulator()
    store = Store(sim)
    g = store.get()
    store.close()
    assert g.triggered and not g.ok


# ---------------------------------------------------------- BufferPool
def test_buffer_pool_probe_tracks_outstanding_and_waiters():
    sim = Simulator()
    pool = BufferPool(sim, slots=2)
    a = pool.acquire()
    b = pool.acquire()
    w = pool.acquire()
    assert pool.probe() == {"slots": 2, "in_use": 2, "waiters": 1}
    pool.release(a.value)
    assert w.triggered
    assert pool.probe() == {"slots": 2, "in_use": 2, "waiters": 0}
    pool.release(b.value)
    pool.release(w.value)
    assert pool.probe() == {"slots": 2, "in_use": 0, "waiters": 0}


# ---------------------------------------------------------- invariants
@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["acquire", "cancel", "release"]),
                          st.integers(min_value=1, max_value=4)),
                max_size=40))
def test_resource_token_conservation(ops):
    """Under any acquire/cancel/release interleaving: tokens in use equal
    the sum of live grants, occupancy never exceeds capacity, and
    ``probe()`` agrees with ``queue_length()``."""
    sim = Simulator()
    res = Resource(sim, capacity=4)
    issued = []                 # (event, n) not yet released/cancelled
    for op, n in ops:
        if op == "acquire":
            issued.append((res.acquire(n), n))
        elif op == "cancel":
            queued = [(ev, k) for ev, k in issued if not ev.triggered]
            if queued:
                res.cancel(queued[0][0])
                issued.remove(queued[0])
        else:
            granted = [(ev, k) for ev, k in issued if ev.triggered]
            if granted:
                ev, k = granted[0]
                res.release(k)
                issued.remove((ev, k))
        held = sum(k for ev, k in issued if ev.triggered)
        assert res.in_use == held
        assert 0 <= res.in_use <= res.capacity
        snap = res.probe()
        assert snap["waiters"] == res.queue_length() == \
            sum(1 for ev, _k in issued if not ev.triggered)
        assert snap["in_use"] == res.in_use
        assert snap["capacity"] == res.capacity


@settings(max_examples=80, deadline=None)
@given(st.lists(st.sampled_from(["put", "get"]), max_size=40),
       st.integers(min_value=1, max_value=3))
def test_store_probe_matches_model(ops, capacity):
    """A bounded store's probe() mirrors a plain deque model, and queued
    getters and putters are never simultaneously nonzero."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    model = []                  # accepted-but-unread items (FIFO)
    pending_puts = []
    pending_gets = []
    seq = 0
    for op in ops:
        if op == "put":
            ev = store.put(seq)
            if pending_gets:
                assert pending_gets.pop(0).value == seq
            elif len(model) < capacity:
                model.append(seq)
            else:
                pending_puts.append((ev, seq))
            seq += 1
        else:
            ev = store.get()
            if model:
                assert ev.value == model.pop(0)
                if pending_puts:
                    _pev, item = pending_puts.pop(0)
                    model.append(item)
            elif pending_puts:
                _pev, item = pending_puts.pop(0)
                assert ev.value == item
            else:
                pending_gets.append(ev)
        snap = store.probe()
        assert snap["depth"] == len(store) == len(model)
        assert snap["getters"] == len(pending_gets)
        assert snap["putters"] == len(pending_puts)
        assert not (snap["getters"] and snap["putters"])
