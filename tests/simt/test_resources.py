"""Unit tests for Resource, Store, Semaphore and BufferPool."""

import pytest

from repro.simt import BufferPool, Resource, Semaphore, Simulator, Store
from repro.simt.core import SimulationError
from repro.simt.resources import StoreClosed


# ---------------------------------------------------------------- Resource
def test_resource_immediate_grant():
    sim = Simulator()
    res = Resource(sim, capacity=4)
    granted = []

    def proc(sim):
        yield res.acquire(2)
        granted.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert granted == [0.0]
    assert res.in_use == 2
    assert res.available == 2


def test_resource_queueing_fifo():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(sim, name, hold):
        yield res.acquire()
        log.append(("start", name, sim.now))
        yield sim.timeout(hold)
        res.release()
        log.append(("end", name, sim.now))

    sim.process(worker(sim, "a", 2.0))
    sim.process(worker(sim, "b", 3.0))
    sim.run()
    assert log == [("start", "a", 0.0), ("end", "a", 2.0),
                   ("start", "b", 2.0), ("end", "b", 5.0)]


def test_resource_large_request_blocks_small():
    """FIFO ordering: a queued large request is not starved by small ones."""
    sim = Simulator()
    res = Resource(sim, capacity=4)
    log = []

    def holder(sim):
        yield res.acquire(3)
        yield sim.timeout(5.0)
        res.release(3)

    def big(sim):
        yield sim.timeout(1.0)
        yield res.acquire(4)
        log.append(("big", sim.now))
        res.release(4)

    def small(sim):
        yield sim.timeout(2.0)
        yield res.acquire(1)
        log.append(("small", sim.now))
        res.release(1)

    sim.process(holder(sim))
    sim.process(big(sim))
    sim.process(small(sim))
    sim.run()
    # big arrived first (t=1) and must go before small even though one
    # token was free the whole time.
    assert log == [("big", 5.0), ("small", 5.0)]


def test_resource_over_acquire_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(ValueError):
        res.acquire(3)
    with pytest.raises(ValueError):
        res.acquire(0)


def test_resource_over_release_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        res.release(1)


def test_resource_token_conservation():
    sim = Simulator()
    res = Resource(sim, capacity=8)

    def worker(sim, n, hold):
        yield res.acquire(n)
        assert 0 <= res.available <= res.capacity
        yield sim.timeout(hold)
        res.release(n)

    for i in range(20):
        sim.process(worker(sim, (i % 4) + 1, 1.0 + i * 0.1))
    sim.run()
    assert res.in_use == 0
    assert res.available == 8


# ------------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        yield store.put("x")

    def consumer(sim):
        item = yield store.get()
        got.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(3.0)
        yield store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [(3.0, "late")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim):
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer(sim):
        yield sim.timeout(5.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert ("put1", 0.0) in log
    assert ("put2", 5.0) in log  # second put blocked until the get


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        for i in range(5):
            yield store.put(i)

    def consumer(sim):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_close_ends_consumers():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        yield store.put("only")
        store.close()

    def consumer(sim):
        while True:
            try:
                item = yield store.get()
            except StoreClosed:
                got.append("eof")
                return
            got.append(item)

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == ["only", "eof"]


def test_store_close_drains_remaining_items_first():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        yield store.put(1)
        yield store.put(2)
        store.close()

    def consumer(sim):
        yield sim.timeout(1.0)
        while True:
            try:
                got.append((yield store.get()))
            except StoreClosed:
                return

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [1, 2]


def test_store_put_after_close_is_error():
    sim = Simulator()
    store = Store(sim)
    store.close()
    with pytest.raises(SimulationError):
        store.put("x")


# --------------------------------------------------------------- Semaphore
def test_semaphore_mutual_exclusion():
    sim = Simulator()
    sem = Semaphore(sim, 1)
    inside = []

    def critical(sim, name):
        yield sem.down()
        inside.append(name)
        assert len(inside) == 1
        yield sim.timeout(1.0)
        inside.remove(name)
        sem.up()

    for name in "abc":
        sim.process(critical(sim, name))
    sim.run()
    assert sim.now == 3.0
    assert sem.value == 1


# -------------------------------------------------------------- BufferPool
def test_buffer_pool_hands_out_distinct_slots():
    sim = Simulator()
    pool = BufferPool(sim, 3)
    slots = []

    def proc(sim):
        s = yield pool.acquire()
        slots.append(s)

    for _ in range(3):
        sim.process(proc(sim))
    sim.run()
    assert sorted(slots) == [0, 1, 2]
    assert pool.available == 0


def test_buffer_pool_blocks_when_exhausted():
    sim = Simulator()
    pool = BufferPool(sim, 1)
    log = []

    def first(sim):
        s = yield pool.acquire()
        yield sim.timeout(4.0)
        pool.release(s)

    def second(sim):
        s = yield pool.acquire()
        log.append((sim.now, s))
        pool.release(s)

    sim.process(first(sim))
    sim.process(second(sim))
    sim.run()
    assert log == [(4.0, 0)]


def test_buffer_pool_double_release_rejected():
    sim = Simulator()
    pool = BufferPool(sim, 2)

    def proc(sim):
        s = yield pool.acquire()
        pool.release(s)
        with pytest.raises(SimulationError):
            pool.release(s)

    sim.process(proc(sim))
    sim.run()


def test_buffer_pool_single_slot_serializes():
    """One buffer slot = the single-buffering interlock of the paper."""
    sim = Simulator()
    pool = BufferPool(sim, 1)
    intervals = []

    def stagework(sim, dur):
        s = yield pool.acquire()
        start = sim.now
        yield sim.timeout(dur)
        pool.release(s)
        intervals.append((start, sim.now))

    for _ in range(3):
        sim.process(stagework(sim, 2.0))
    sim.run()
    # No overlap between any pair of intervals.
    for (s1, e1) in intervals:
        for (s2, e2) in intervals:
            if (s1, e1) != (s2, e2):
                assert e1 <= s2 or e2 <= s1
