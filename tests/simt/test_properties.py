"""Property-based tests on the simulation primitives (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.hw.cpu import FluidCPU
from repro.simt import Resource, Simulator, Store


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=8),
                          st.floats(min_value=0.01, max_value=5.0),
                          st.floats(min_value=0.0, max_value=3.0)),
                min_size=1, max_size=12),
       st.integers(min_value=1, max_value=8))
def test_fluid_cpu_work_conservation(tasks, capacity):
    """Total work / makespan never exceeds capacity, and every task's
    elapsed time is at least its ideal (work / min(threads, capacity))."""
    sim = Simulator()
    cpu = FluidCPU(sim, capacity)
    finishes = {}

    def proc(sim, i, threads, work, delay):
        if delay:
            yield sim.timeout(delay)
        start = sim.now
        yield cpu.run(threads, work)
        finishes[i] = (start, sim.now)

    for i, (threads, work, delay) in enumerate(tasks):
        sim.process(proc(sim, i, threads, work, delay))
    sim.run()

    assert len(finishes) == len(tasks)
    total_work = sum(w for _, w, _ in tasks)
    makespan = max(end for _, end in finishes.values())
    busy_window = makespan - min(start for start, _ in finishes.values())
    assert total_work <= capacity * busy_window + 1e-6
    for i, (threads, work, _delay) in enumerate(tasks):
        start, end = finishes[i]
        ideal = work / min(threads, capacity)
        assert end - start >= ideal - 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=40),
       st.integers(min_value=1, max_value=5))
def test_store_preserves_order_and_items(items, capacity):
    """Everything put into a bounded store comes out once, in order."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    got = []

    def producer(sim):
        for item in items:
            yield store.put(item)
        store.close()

    def consumer(sim):
        from repro.simt.resources import StoreClosed
        while True:
            try:
                got.append((yield store.get()))
            except StoreClosed:
                return

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == items


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=4),
                          st.floats(min_value=0.01, max_value=1.0)),
                min_size=1, max_size=15),
       st.integers(min_value=4, max_value=8))
def test_resource_never_oversubscribed(requests, capacity):
    """At no point do granted tokens exceed the capacity."""
    sim = Simulator()
    res = Resource(sim, capacity)
    violations = []

    def worker(sim, n, hold):
        yield res.acquire(n)
        if res.in_use > res.capacity:
            violations.append(res.in_use)
        yield sim.timeout(hold)
        res.release(n)

    for n, hold in requests:
        sim.process(worker(sim, n, hold))
    sim.run()
    assert not violations
    assert res.in_use == 0
