"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.simt import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return "done"

    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.5
    assert p.value == "done"
    assert not p.is_alive


def test_zero_delay_timeout():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_value_passed_to_process():
    sim = Simulator()
    seen = []

    def proc(sim):
        v = yield sim.timeout(1.0, value="payload")
        seen.append(v)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["payload"]


def test_sequential_timeouts_accumulate():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.now == 6.0


def test_parallel_processes_overlap():
    sim = Simulator()
    log = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(proc(sim, "b", 2.0))
    sim.process(proc(sim, "a", 1.0))
    sim.run()
    assert log == [(1.0, "a"), (2.0, "b")]
    assert sim.now == 2.0


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(5.0)
        return 42

    def parent(sim):
        result = yield sim.process(child(sim))
        return result * 2

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == 84
    assert sim.now == 5.0


def test_event_manual_trigger():
    sim = Simulator()
    gate = sim.event()
    order = []

    def waiter(sim):
        v = yield gate
        order.append(("woke", v, sim.now))

    def opener(sim):
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert order == [("woke", "open", 3.0)]


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer(sim):
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    sim.process(waiter(sim))
    sim.process(failer(sim))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("oops")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="oops"):
        sim.run()


def test_handled_child_failure_does_not_crash():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("oops")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError:
            return "handled"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "handled"


def test_all_of_waits_for_every_event():
    sim = Simulator()
    results = []

    def proc(sim):
        vals = yield sim.all_of([sim.timeout(1.0, "a"),
                                 sim.timeout(3.0, "b"),
                                 sim.timeout(2.0, "c")])
        results.append((sim.now, vals))

    sim.process(proc(sim))
    sim.run()
    assert results == [(3.0, ["a", "b", "c"])]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        vals = yield sim.all_of([])
        done.append(vals)

    sim.process(proc(sim))
    sim.run()
    assert done == [[]]


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc(sim):
        idx, val = yield sim.any_of([sim.timeout(5.0, "slow"),
                                     sim.timeout(1.0, "fast")])
        results.append((sim.now, idx, val))

    sim.process(proc(sim))
    sim.run()
    assert results == [(1.0, 1, "fast")]


def test_run_until_stops_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100.0)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_deterministic_tie_breaking():
    """Events at the same time fire in creation order."""
    sim = Simulator()
    log = []

    def proc(sim, name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in ["a", "b", "c", "d"]:
        sim.process(proc(sim, name))
    sim.run()
    assert log == ["a", "b", "c", "d"]


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def interrupter(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="yielded"):
        sim.run()


def test_process_return_value_is_event_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return {"key": "value"}

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {"key": "value"}


def test_peek_and_step():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(4.0)

    sim.process(proc(sim))
    assert sim.peek() == 0.0  # process bootstrap event
    sim.step()
    assert sim.peek() == 4.0
    sim.step()  # the timeout fires, generator finishes
    assert sim.now == 4.0
    sim.step()  # the process completion event itself
    assert sim.peek() == float("inf")


def test_step_on_empty_queue_is_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_process_tree():
    sim = Simulator()

    def leaf(sim, d):
        yield sim.timeout(d)
        return d

    def branch(sim):
        total = 0
        for d in (1.0, 2.0):
            total += yield sim.process(leaf(sim, d))
        return total

    def root(sim):
        vals = yield sim.all_of([sim.process(branch(sim)),
                                 sim.process(branch(sim))])
        return sum(vals)

    p = sim.process(root(sim))
    sim.run()
    assert p.value == 6.0
    assert sim.now == 3.0  # two branches in parallel, each 3s sequential
