"""Coalesced (shared) timeouts: one Timeout event serving many waiters.

The batched pipeline issues many equal-delay waits at the same instant
(e.g. every transfer of an all-to-all shuffle burst).  ``shared_timeout``
lets them ride a single heap entry.  The contract under test:

* identical wake time as a private ``timeout`` of the same delay;
* FIFO among sharers — callbacks run in subscription order, so two
  pipeline stages completing batches at the same virtual time keep
  their relative order (the regression this file locks in);
* the cache is valid only at its creation instant, and never hands out
  an already-fired event.
"""

from repro.simt import Simulator


def test_shared_timeout_fires_at_delay():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.shared_timeout(1.5)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [1.5]


def test_same_delay_same_instant_shares_one_event():
    sim = Simulator()
    events = []

    def proc():
        ev = sim.shared_timeout(2.0)
        events.append(ev)
        yield ev

    for _ in range(5):
        sim.process(proc())
    sim.run()
    assert len(set(map(id, events))) == 1
    assert sim.now == 2.0


def test_different_delays_get_different_events():
    sim = Simulator()
    events = []

    def proc(d):
        ev = sim.shared_timeout(d)
        events.append(ev)
        yield ev

    sim.process(proc(1.0))
    sim.process(proc(2.0))
    sim.run()
    assert events[0] is not events[1]
    assert sim.now == 2.0


def test_cache_invalidated_when_clock_moves():
    sim = Simulator()
    events = []

    def proc():
        ev = sim.shared_timeout(1.0)
        events.append(ev)
        yield ev
        ev2 = sim.shared_timeout(1.0)
        events.append(ev2)
        yield ev2

    sim.process(proc())
    sim.run()
    assert events[0] is not events[1]
    assert sim.now == 2.0


def test_fired_event_never_reissued_same_instant():
    # A process that waits on a shared timeout and, in the same timestep
    # the event fires, asks for the same delay again must get a fresh
    # (untriggered) event, not the spent one.
    sim = Simulator()
    wakes = []

    def a():
        yield sim.shared_timeout(1.0)
        wakes.append(("a", sim.now))
        yield sim.shared_timeout(1.0)
        wakes.append(("a2", sim.now))

    sim.process(a())
    sim.run()
    assert wakes == [("a", 1.0), ("a2", 2.0)]


def test_fifo_order_among_sharers():
    """Two stages finishing batches at the same virtual time wake in the
    order they subscribed — the coalesced event must not reorder them."""
    sim = Simulator()
    order = []

    def stage(name):
        yield sim.shared_timeout(3.0)
        order.append(name)

    for name in ("stage0", "stage1", "stage2", "stage3"):
        sim.process(stage(name))
    sim.run()
    assert order == ["stage0", "stage1", "stage2", "stage3"]


def test_fifo_order_mixed_shared_and_private():
    """Sharers of a coalesced timeout and a private timeout of the same
    delay all fire at the same instant; processes scheduled earlier run
    earlier (heap order is (time, seq))."""
    sim = Simulator()
    order = []

    def shared(name):
        yield sim.shared_timeout(1.0)
        order.append(name)

    def private(name):
        yield sim.timeout(1.0)
        order.append(name)

    sim.process(shared("s0"))
    sim.process(private("p0"))
    sim.process(shared("s1"))
    sim.run()
    # The shared event was scheduled first (when s0 asked for it), so its
    # sharers — in subscription order — precede the private timeout.
    assert order == ["s0", "s1", "p0"]


def test_shared_timeout_interleaves_with_work():
    """A chain of shared waits across moving time matches plain timeouts."""
    sim = Simulator()
    log = []

    def worker(name, delays):
        for d in delays:
            yield sim.shared_timeout(d)
            log.append((name, sim.now))

    sim.process(worker("w1", [1.0, 1.0]))
    sim.process(worker("w2", [1.0, 2.0]))
    sim.run()
    assert log == [("w1", 1.0), ("w2", 1.0), ("w1", 2.0), ("w2", 3.0)]
