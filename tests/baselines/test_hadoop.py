"""Behavioural tests for the Hadoop-like baseline engine."""

import pytest

from repro.apps import WordCountApp
from repro.apps import datagen
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster

from tests.conftest import assert_outputs_match

CHUNK = 262_144


@pytest.fixture(scope="module")
def inputs():
    return {"wiki": datagen.wiki_text(2_000_000, seed=31)}


def test_config_validation():
    with pytest.raises(ValueError):
        HadoopConfig(slowstart=1.5)
    with pytest.raises(ValueError):
        HadoopConfig(jvm_factor=0.5)


def test_output_matches_reference(inputs):
    app = WordCountApp()
    res = run_hadoop(app, inputs, das4_cluster(nodes=2),
                     HadoopConfig(chunk_size=CHUNK, jvm_startup=0.01))
    assert_outputs_match(res.output_pairs(), run_reference(app, inputs))


def test_glasswing_outperforms_hadoop(inputs):
    """The paper's headline: Glasswing clearly ahead on CPU clusters.

    (This 2 MB fixture amplifies Hadoop's fixed per-task costs, so the
    upper bound is loose; the calibrated 24 MB benchmark sweeps sit in
    the paper's 1.6-2.5x band — see benchmarks/test_fig2.py.)"""
    app = WordCountApp()
    gw = run_glasswing(app, inputs, das4_cluster(nodes=2),
                       JobConfig(chunk_size=CHUNK))
    hd = run_hadoop(app, inputs, das4_cluster(nodes=2),
                    HadoopConfig(chunk_size=CHUNK))
    ratio = hd.job_time / gw.job_time
    assert 1.2 < ratio < 8.0


def test_jvm_startup_hurts(inputs):
    app = WordCountApp()
    cheap = run_hadoop(app, inputs, das4_cluster(nodes=2),
                       HadoopConfig(chunk_size=CHUNK, jvm_startup=0.001))
    costly = run_hadoop(app, inputs, das4_cluster(nodes=2),
                        HadoopConfig(chunk_size=CHUNK, jvm_startup=0.2))
    assert costly.job_time > cheap.job_time


def test_more_map_slots_help_when_tasks_outnumber_threads(inputs):
    app = WordCountApp()
    one_slot = run_hadoop(app, inputs, das4_cluster(nodes=2),
                          HadoopConfig(chunk_size=65_536, map_slots=1,
                                       jvm_startup=0.005))
    many = run_hadoop(app, inputs, das4_cluster(nodes=2),
                      HadoopConfig(chunk_size=65_536, map_slots=8,
                                   jvm_startup=0.005))
    assert many.job_time < one_slot.job_time


def test_map_tasks_equal_splits(inputs):
    app = WordCountApp()
    res = run_hadoop(app, inputs, das4_cluster(nodes=2),
                     HadoopConfig(chunk_size=CHUNK))
    expected = -(-len(inputs["wiki"]) // CHUNK)
    assert res.stats["map_tasks"] == expected


def test_pull_shuffle_counts_fetches(inputs):
    app = WordCountApp()
    cfg = HadoopConfig(chunk_size=CHUNK, reduce_slots=2)
    res = run_hadoop(app, inputs, das4_cluster(nodes=2), cfg)
    # Every (map task, reducer) pair with data produces one fetch.
    assert res.stats["fetches"] <= res.stats["map_tasks"] * 4
    assert res.stats["fetches"] > 0


def test_shuffle_wait_positive(inputs):
    """Reducers finish after the last map (pull model tail)."""
    app = WordCountApp()
    res = run_hadoop(app, inputs, das4_cluster(nodes=2),
                     HadoopConfig(chunk_size=CHUNK))
    assert res.shuffle_wait > 0
    assert res.map_phase_time > 0
    assert res.job_time == pytest.approx(res.map_phase_time
                                         + res.shuffle_wait)


def test_combiner_reduces_shuffle_volume(inputs):
    app = WordCountApp()
    with_c = run_hadoop(app, inputs, das4_cluster(nodes=2),
                        HadoopConfig(chunk_size=CHUNK, use_combiner=True))
    without = run_hadoop(app, inputs, das4_cluster(nodes=2),
                         HadoopConfig(chunk_size=CHUNK, use_combiner=False))
    assert without.stats["spilled_bytes"] > 2 * with_c.stats["spilled_bytes"]
