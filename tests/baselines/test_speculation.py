"""Tests for Hadoop's speculative execution (disabled in the paper)."""

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.baselines.reference import run_reference
from repro.hw.presets import das4_cluster

from tests.conftest import assert_outputs_match


def test_default_matches_paper_config():
    assert HadoopConfig().speculative is False


def test_disabled_speculation_runs_no_duplicates():
    inputs = {"wiki": wiki_text(300_000, seed=121)}
    res = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                     HadoopConfig(chunk_size=65_536))
    assert res.stats["speculative_attempts"] == 0
    assert res.stats["speculative_wasted"] == 0


def test_speculation_duplicates_stragglers_without_breaking_output():
    """Few splits + many idle slots: speculation fires; output unchanged."""
    inputs = {"wiki": wiki_text(600_000, seed=122)}
    ref = run_reference(WordCountApp(), inputs)
    res = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                     HadoopConfig(chunk_size=262_144, speculative=True))
    # 3 splits vs 32 slots: idle slots must have speculated.
    assert res.stats["speculative_attempts"] > 0
    assert_outputs_match(res.output_pairs(), ref)
    # Each original map task still completed exactly once.
    assert res.stats["map_tasks"] >= 3


def test_losing_attempts_are_discarded():
    inputs = {"wiki": wiki_text(600_000, seed=123)}
    res = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                     HadoopConfig(chunk_size=262_144, speculative=True))
    # Duplicates that lost the race are accounted as waste, and the
    # reducers saw each split's segments exactly once.
    keys = [k for k, _ in res.output_pairs()]
    assert len(keys) == len(set(keys))
    ref = run_reference(WordCountApp(), inputs)
    assert_outputs_match(res.output_pairs(), ref)
