"""Behavioural tests for the GPMR-like baseline engine."""

import pytest

from repro.apps import KMeansApp, MatMulApp
from repro.apps import datagen
from repro.baselines.gpmr import (GPMRConfig, IntermediateDataTooLarge,
                                  run_gpmr)
from repro.baselines.reference import run_reference
from repro.core import JobConfig, run_glasswing
from repro.hw.presets import das4_cluster
from repro.hw.specs import DeviceKind

from tests.conftest import assert_outputs_match


@pytest.fixture(scope="module")
def km_setup():
    pts = datagen.kmeans_points(120_000, 4, seed=41)
    centers = datagen.kmeans_centers(128, 4, seed=42)
    return {"pts": pts}, centers


def test_requires_gpu_nodes(km_setup):
    inputs, centers = km_setup
    with pytest.raises(ValueError, match="GPU"):
        run_gpmr(KMeansApp(centers), inputs, das4_cluster(nodes=2, gpu=False))


def test_output_matches_reference(km_setup):
    inputs, centers = km_setup
    app = KMeansApp(centers)
    res = run_gpmr(app, inputs, das4_cluster(nodes=2, gpu=True),
                   GPMRConfig(chunk_size=262_144))
    assert_outputs_match(res.output_pairs(), run_reference(app, inputs))


def test_total_time_is_io_plus_compute(km_setup):
    """The paper's Fig 3(e) decomposition: 'GPMR first reads all data,
    then starts its computation pipeline; its total time is the sum of
    computation and I/O'."""
    inputs, centers = km_setup
    res = run_gpmr(KMeansApp(centers), inputs,
                   das4_cluster(nodes=2, gpu=True),
                   GPMRConfig(chunk_size=262_144))
    assert res.io_time > 0
    assert res.compute_time > 0
    assert res.job_time == pytest.approx(res.io_time + res.compute_time)


def test_glasswing_overlap_beats_gpmr(km_setup):
    """Fig 3(e): Glasswing's total ~ max(io, compute); GPMR's = sum."""
    inputs, centers = km_setup
    app = KMeansApp(centers)
    cluster = das4_cluster(nodes=2, gpu=True)
    gp = run_gpmr(app, inputs, cluster, GPMRConfig(chunk_size=262_144))
    gw = run_glasswing(app, inputs, cluster,
                       JobConfig(chunk_size=262_144, storage="local",
                                 device=DeviceKind.GPU))
    assert gw.job_time < gp.job_time


def test_compute_factor_models_adapted_kmeans(km_setup):
    """Fig 3(c): the adapted large-center GPMR KM is inefficient."""
    inputs, centers = km_setup
    app = KMeansApp(centers)
    cluster = das4_cluster(nodes=2, gpu=True)
    normal = run_gpmr(app, inputs, cluster, GPMRConfig(chunk_size=262_144))
    adapted = run_gpmr(app, inputs, cluster,
                       GPMRConfig(chunk_size=262_144, compute_factor=8.0))
    assert adapted.job_time > 2 * normal.job_time


def test_intermediate_data_must_fit_in_host_memory():
    """'It is limited to processing data sets where intermediate data
    fits in host memory.'"""
    pts = datagen.kmeans_points(50_000, 4, seed=43)
    app = KMeansApp(datagen.kmeans_centers(16, 4, seed=44))
    cluster = das4_cluster(nodes=1, gpu=True)
    with pytest.raises(IntermediateDataTooLarge):
        run_gpmr(app, {"pts": pts}, cluster,
                 GPMRConfig(chunk_size=262_144,
                            host_memory_fraction=1e-7))


def test_skip_input_io_excludes_read_time():
    """GPMR's MM 'does not read its input matrices from files'."""
    blob, a, b = datagen.matmul_tasks(128, 32, seed=45)
    app = MatMulApp(32)
    cluster = das4_cluster(nodes=1, gpu=True)
    chunk = app.record_format.record_size * 4
    with_io = run_gpmr(app, {"mm": blob}, cluster,
                       GPMRConfig(chunk_size=chunk))
    without = run_gpmr(app, {"mm": blob}, cluster,
                       GPMRConfig(chunk_size=chunk, skip_input_io=True))
    assert without.io_time < with_io.io_time


def test_skip_reduce_leaves_partials_unaggregated():
    """GPMR's MM 'does not aggregate the partial submatrices'."""
    blob, a, b = datagen.matmul_tasks(64, 16, seed=46)
    app = MatMulApp(16)
    cluster = das4_cluster(nodes=1, gpu=True)
    chunk = app.record_format.record_size * 4
    res = run_gpmr(app, {"mm": blob}, cluster,
                   GPMRConfig(chunk_size=chunk, skip_reduce=True))
    pairs = list(res.output_pairs())
    # 4x4x4 partial products, none summed.
    assert len(pairs) == 64
