"""Tests for Hadoop engine internals: scheduling, slow-start, stealing."""

import pytest

from repro.apps import WordCountApp
from repro.apps.datagen import wiki_text
from repro.baselines.hadoop import HadoopConfig, run_hadoop
from repro.hw.presets import das4_cluster


@pytest.fixture(scope="module")
def inputs():
    return {"wiki": wiki_text(1_000_000, seed=81)}


def test_slowstart_zero_starts_fetching_early(inputs):
    """With slowstart=0 reducers begin pulling as soon as the first map
    finishes; with slowstart=1 they wait for all maps."""
    eager = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                       HadoopConfig(chunk_size=65_536, slowstart=0.0))
    lazy = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                      HadoopConfig(chunk_size=65_536, slowstart=1.0))
    # Earliest fetch relative to map-phase end: eager fetches overlap the
    # map phase, lazy ones cannot.
    eager_first = min(s.start for s in
                      eager.timeline.by_category("hadoop.fetch"))
    lazy_first = min(s.start for s in
                     lazy.timeline.by_category("hadoop.fetch"))
    assert eager_first < eager.map_phase_time
    assert lazy_first >= lazy.map_phase_time - 1e-9


def test_work_stealing_drains_all_splits(inputs):
    """Even with skewed locality, every split runs exactly once."""
    res = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=4),
                     HadoopConfig(chunk_size=32_768))
    spans = res.timeline.by_category("hadoop.map_task")
    split_ids = sorted(s.meta["split"] for s in spans)
    assert split_ids == list(range(len(split_ids)))  # each exactly once


def test_map_tasks_spread_over_nodes(inputs):
    res = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=4),
                     HadoopConfig(chunk_size=32_768))
    nodes = {s.name for s in res.timeline.by_category("hadoop.map_task")}
    assert len(nodes) == 4


def test_reducer_count_scales_with_cluster(inputs):
    small = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=1),
                       HadoopConfig(chunk_size=65_536, reduce_slots=2))
    big = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=4),
                     HadoopConfig(chunk_size=65_536, reduce_slots=2))
    assert len(small.output) == 2
    assert len(big.output) == 8


def test_parallel_copies_speed_up_shuffle(inputs):
    serial = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=4),
                        HadoopConfig(chunk_size=32_768, parallel_copies=1))
    parallel = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=4),
                          HadoopConfig(chunk_size=32_768, parallel_copies=8))
    assert parallel.job_time <= serial.job_time


def test_jvm_factor_slows_compute(inputs):
    fast = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                      HadoopConfig(chunk_size=65_536, jvm_factor=1.0))
    slow = run_hadoop(WordCountApp(), inputs, das4_cluster(nodes=2),
                      HadoopConfig(chunk_size=65_536, jvm_factor=4.0))
    assert slow.job_time > fast.job_time
